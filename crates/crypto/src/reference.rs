//! Scalar reference keystream kernels.
//!
//! These are the pre-batching implementations of the AES-CTR and ChaCha20
//! XOR paths, kept verbatim: one keystream block generated per iteration
//! (with a `u128` big-endian round-trip per counter derivation on the AES
//! side) and byte-indexed XOR combining. They exist for two consumers
//! only — the equivalence tests, which check the batched kernels in
//! [`crate::cipher`] and [`crate::chacha20`] bit-for-bit against them over
//! random `(offset, length, algorithm)` triples, and the
//! `crates/bench/src/bin/crypto.rs` perf-regression harness, whose
//! `bench-smoke` tier asserts the batched kernels stay ≥2× faster on 4 KiB
//! payloads. Nothing on a production path calls into this module.

use crate::aes::{Aes128, BLOCK_LEN as AES_BLOCK_LEN};
use crate::chacha20::{ChaCha20, BLOCK_LEN as CHACHA_BLOCK_LEN};

/// 128-bit big-endian add of `v` into counter block `base`.
fn counter_add(base: &[u8; 16], v: u64) -> [u8; 16] {
    let n = u128::from_be_bytes(*base).wrapping_add(u128::from(v));
    n.to_be_bytes()
}

/// One-block-at-a-time AES-CTR XOR: re-derives the counter block from
/// `base` for every 16-byte block and combines byte-by-byte.
// The byte-indexed loop *is* the reference semantics; the clippy
// `needless_range_loop` gate in scripts/verify.sh bans this shape from the
// production kernels, so it is allowed explicitly here.
#[allow(clippy::needless_range_loop)]
pub fn aes_ctr_xor(schedule: &Aes128, base: &[u8; 16], offset: u64, data: &mut [u8]) {
    let mut pos = 0usize;
    let mut abs = offset;
    let mut keystream = [0u8; AES_BLOCK_LEN];
    while pos < data.len() {
        let block_index = abs / 16;
        let in_block = (abs % 16) as usize;
        keystream = counter_add(base, block_index);
        schedule.encrypt_block(&mut keystream);
        let n = (AES_BLOCK_LEN - in_block).min(data.len() - pos);
        for i in 0..n {
            data[pos + i] ^= keystream[in_block + i];
        }
        pos += n;
        abs += n as u64;
    }
    // Scrub the last keystream block (the historical, partial scrub — the
    // batched kernels scrub their whole staging buffer instead).
    for b in &mut keystream {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

/// One-block-at-a-time ChaCha20 XOR with byte-indexed combining,
/// honouring the cipher's initial block counter.
#[allow(clippy::needless_range_loop)]
pub fn chacha20_xor(cipher: &ChaCha20, offset: u64, data: &mut [u8]) {
    let mut block = [0u8; CHACHA_BLOCK_LEN];
    let mut pos = 0usize;
    let mut abs = offset;
    while pos < data.len() {
        let counter = cipher
            .counter_base()
            .wrapping_add((abs / CHACHA_BLOCK_LEN as u64) as u32);
        let in_block = (abs % CHACHA_BLOCK_LEN as u64) as usize;
        cipher.keystream_block(counter, &mut block);
        let n = (CHACHA_BLOCK_LEN - in_block).min(data.len() - pos);
        for i in 0..n {
            data[pos + i] ^= block[in_block + i];
        }
        pos += n;
        abs += n as u64;
    }
    for b in &mut block {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn reference_aes_ctr_reproduces_nist_f51() {
        // The reference kernel must itself stay pinned to NIST SP 800-38A
        // F.5.1 — it is the baseline everything else is compared against.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let base: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51",
        );
        aes_ctr_xor(&Aes128::new(&key), &base, 0, &mut data);
        assert_eq!(
            data,
            hex(
                "874d6191b620e3261bef6864990db6ce\
                 9806f66b7970fdff8617187bb9fffdff"
            )
        );
    }

    #[test]
    fn reference_chacha20_roundtrips_at_offsets() {
        let cipher = ChaCha20::new_with_counter(&[7u8; 32], &[9u8; 12], 5);
        let original: Vec<u8> = (0..333).map(|i| (i * 11 % 256) as u8).collect();
        let mut enc = original.clone();
        chacha20_xor(&cipher, 17, &mut enc);
        assert_ne!(enc, original);
        chacha20_xor(&cipher, 17, &mut enc);
        assert_eq!(enc, original);
    }
}
