//! Word-wide XOR and keystream-buffer scrubbing shared by the batched
//! cipher kernels (see DESIGN.md § perf kernels).
//!
//! Both stream ciphers in this crate reduce to "generate keystream, XOR it
//! into the payload". The XOR half used to be a byte-indexed loop; these
//! helpers combine 8 bytes per operation through unaligned `u64`
//! loads/stores (byte order is irrelevant under XOR, so native endianness
//! is used), with a scalar tail for the last `len % 8` bytes.

/// XORs `src` into `dst` in place (`dst[i] ^= src[i]`), 8 bytes at a time.
///
/// Offsets into the payload are arbitrary, so no alignment is assumed:
/// `from_ne_bytes`/`to_ne_bytes` on 8-byte chunks compile to unaligned
/// word loads and stores on every supported target.
///
/// # Panics
/// Panics if `dst` and `src` differ in length.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let w = u64::from_ne_bytes(d[0..8].try_into().unwrap())
            ^ u64::from_ne_bytes(s[0..8].try_into().unwrap());
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for (d, s) in dst_words.into_remainder().iter_mut().zip(src_words.remainder()) {
        *d ^= *s;
    }
}

/// Zeroes `buf` with volatile writes the optimizer cannot elide.
///
/// Scrub contract: every keystream kernel routes its *entire* staging
/// buffer (not just the last block it happened to fill) through this
/// before returning, on every path that generated any keystream — so
/// expanded keystream bytes never outlive the XOR that consumed them.
/// Best-effort only: register copies and spill slots are out of scope, as
/// they are for the round-key scrub in [`crate::aes::Aes128`]'s `Drop`.
pub fn scrub(buf: &mut [u8]) {
    // Volatile so dead-store elimination cannot remove the zeroing;
    // word-wide over the aligned middle so scrubbing a staging buffer
    // costs ~len/8 stores instead of len (it sits on the per-call XOR
    // path, so its cost is measurable on small payloads).
    // SAFETY: `align_to_mut` only marks the middle as `u64` where it is
    // properly aligned, and all writes stay inside `buf`.
    let (head, words, tail) = unsafe { buf.align_to_mut::<u64>() };
    for b in head {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
    for w in words {
        unsafe { std::ptr::write_volatile(w, 0) };
    }
    for b in tail {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_matches_bytewise_at_every_length() {
        // Cover the empty, sub-word, word-boundary, and tail cases.
        for len in 0..=40usize {
            let mut dst: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let src: Vec<u8> = (0..len).map(|i| (i * 13 + 1) as u8).collect();
            let expected: Vec<u8> =
                dst.iter().zip(src.iter()).map(|(a, b)| a ^ b).collect();
            xor_in_place(&mut dst, &src);
            assert_eq!(dst, expected, "len {len}");
        }
    }

    #[test]
    fn xor_is_an_involution() {
        let original: Vec<u8> = (0..100).map(|i| (i * 31 % 251) as u8).collect();
        let pad: Vec<u8> = (0..100).map(|i| (i * 17 % 253) as u8).collect();
        let mut data = original.clone();
        xor_in_place(&mut data, &pad);
        assert_ne!(data, original);
        xor_in_place(&mut data, &pad);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_rejects_mismatched_lengths() {
        xor_in_place(&mut [0u8; 3], &[0u8; 4]);
    }

    #[test]
    fn scrub_zeroes_the_whole_buffer() {
        // The scrub contract: after a kernel returns, the full staging
        // buffer is zero — a regression here would leak keystream bytes on
        // the stack. (Whether the volatile writes survive optimization is
        // not observable from safe code; this pins the functional half.)
        let mut buf = [0xa5u8; 256];
        scrub(&mut buf);
        assert_eq!(buf, [0u8; 256]);
        // Partial-slice scrubs only touch the given range.
        let mut buf = [0xa5u8; 16];
        scrub(&mut buf[4..12]);
        assert_eq!(&buf[..4], &[0xa5; 4]);
        assert_eq!(&buf[4..12], &[0; 8]);
        assert_eq!(&buf[12..], &[0xa5; 4]);
    }
}
