//! CRC32C (Castagnoli polynomial, iSCSI/RocksDB flavour) for WAL record and
//! SST block checksums, including RocksDB's masked-CRC trick so a CRC stored
//! inside CRC-protected data does not degrade.

const POLY: u32 = 0x82f6_3b78; // reversed Castagnoli polynomial

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC32C of `data`.
#[must_use]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_extend(0, data)
}

/// Extends a previously computed CRC32C with more bytes.
#[must_use]
pub fn crc32c_extend(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Masks a CRC so it can be stored inside data that is itself CRC'd
/// (the RocksDB/LevelDB log-format convention).
#[must_use]
pub fn crc32c_masked(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverse of [`crc32c_masked`].
#[must_use]
pub fn crc32c_unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // Canonical CRC32C check value.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn zeros_and_ff() {
        // Vectors from RFC 3720 appendix B.4.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
    }

    #[test]
    fn extend_equals_oneshot() {
        let data = b"hello crc32c world";
        let c1 = crc32c(data);
        let c2 = crc32c_extend(crc32c(&data[..7]), &data[7..]);
        assert_eq!(c1, c2);
    }

    #[test]
    fn mask_roundtrip() {
        for crc in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(crc32c_unmask(crc32c_masked(crc)), crc);
            assert_ne!(crc32c_masked(crc), crc, "mask must change the value");
        }
    }
}
