//! Data Encryption Keys (DEKs) and their identifiers.
//!
//! A [`Dek`] is the unit of key management in SHIELD: every persistent file
//! (WAL, SST, Manifest) is encrypted under its own DEK, and only the
//! [`DekId`] is ever embedded in plaintext file metadata. The KDS resolves
//! DEK-IDs to key material for authorized servers (paper §5.4).

use std::fmt;

use crate::cipher::Algorithm;

/// A 128-bit globally unique identifier for a DEK.
///
/// DEK-IDs are public: they appear in plaintext in SST properties blocks and
/// WAL headers so that any authorized server can ask the KDS for the key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DekId(pub u128);

impl DekId {
    /// Generates a fresh random identifier.
    #[must_use]
    pub fn random() -> Self {
        let mut bytes = [0u8; 16];
        crate::secure_random(&mut bytes);
        DekId(u128::from_be_bytes(bytes))
    }

    /// Encodes the identifier as 16 big-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Decodes an identifier from 16 big-endian bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        DekId(u128::from_be_bytes(bytes))
    }
}

impl fmt::Display for DekId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for DekId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DekId({:032x})", self.0)
    }
}

/// A data encryption key: identifier, algorithm, and secret key material.
///
/// The `Debug` implementation never prints key bytes, and the key material
/// is scrubbed on drop (best effort).
#[derive(Clone, PartialEq, Eq)]
pub struct Dek {
    id: DekId,
    algorithm: Algorithm,
    key: Vec<u8>,
}

impl Dek {
    /// Generates a fresh DEK for `algorithm` with a random id and key.
    #[must_use]
    pub fn generate(algorithm: Algorithm) -> Self {
        let mut key = vec![0u8; algorithm.key_len()];
        crate::secure_random(&mut key);
        Dek { id: DekId::random(), algorithm, key }
    }

    /// Builds a DEK from its parts.
    ///
    /// # Panics
    /// Panics if `key` is not exactly `algorithm.key_len()` bytes.
    #[must_use]
    pub fn from_parts(id: DekId, algorithm: Algorithm, key: Vec<u8>) -> Self {
        assert_eq!(
            key.len(),
            algorithm.key_len(),
            "key length must match algorithm"
        );
        Dek { id, algorithm, key }
    }

    /// The public identifier.
    #[must_use]
    pub fn id(&self) -> DekId {
        self.id
    }

    /// The encryption algorithm this key is for.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The raw secret key bytes.
    #[must_use]
    pub fn key_bytes(&self) -> &[u8] {
        &self.key
    }
}

impl fmt::Debug for Dek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dek")
            .field("id", &self.id)
            .field("algorithm", &self.algorithm)
            .field("key", &"<redacted>")
            .finish()
    }
}

impl Drop for Dek {
    fn drop(&mut self) {
        for b in self.key.iter_mut() {
            unsafe { std::ptr::write_volatile(b, 0) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dek_id_roundtrip() {
        let id = DekId::random();
        assert_eq!(DekId::from_bytes(id.to_bytes()), id);
    }

    #[test]
    fn dek_generation_is_unique() {
        let a = Dek::generate(Algorithm::Aes128Ctr);
        let b = Dek::generate(Algorithm::Aes128Ctr);
        assert_ne!(a.id(), b.id());
        assert_ne!(a.key_bytes(), b.key_bytes());
        assert_eq!(a.key_bytes().len(), 16);
    }

    #[test]
    fn chacha_key_len() {
        let d = Dek::generate(Algorithm::ChaCha20);
        assert_eq!(d.key_bytes().len(), 32);
    }

    #[test]
    fn debug_redacts_key() {
        let d = Dek::generate(Algorithm::Aes128Ctr);
        let s = format!("{d:?}");
        assert!(s.contains("<redacted>"));
        for b in d.key_bytes() {
            // The hex of any key byte pair might coincidentally appear, but
            // the full key as a byte list must not be printed.
            let _ = b;
        }
        assert!(!s.contains("key: ["));
    }

    #[test]
    #[should_panic(expected = "key length")]
    fn from_parts_rejects_bad_length() {
        let _ = Dek::from_parts(DekId(1), Algorithm::Aes128Ctr, vec![0u8; 5]);
    }

    #[test]
    fn display_is_hex() {
        let id = DekId(0xdead_beef);
        assert_eq!(id.to_string(), format!("{:032x}", 0xdead_beefu128));
    }
}
