//! PBKDF2-HMAC-SHA-256 (RFC 8018) for deriving the secure-cache wrapping
//! key from the user-supplied server passkey. The passkey itself is never
//! persisted; only the salt is stored alongside the cache file.

use crate::hmac::hmac_sha256;

/// Derives `dk_len` bytes from `password` and `salt` with `iterations`
/// rounds of PBKDF2-HMAC-SHA-256.
///
/// # Panics
/// Panics if `iterations == 0` or `dk_len == 0`.
#[must_use]
pub fn pbkdf2_hmac_sha256(password: &[u8], salt: &[u8], iterations: u32, dk_len: usize) -> Vec<u8> {
    assert!(iterations > 0, "PBKDF2 requires at least one iteration");
    assert!(dk_len > 0, "derived key must be non-empty");
    let mut out = Vec::with_capacity(dk_len);
    let mut block_index = 1u32;
    while out.len() < dk_len {
        let mut msg = salt.to_vec();
        msg.extend_from_slice(&block_index.to_be_bytes());
        let mut u = hmac_sha256(password, &msg);
        let mut t = u;
        for _ in 1..iterations {
            u = hmac_sha256(password, &u);
            for (ti, ui) in t.iter_mut().zip(u.iter()) {
                *ti ^= ui;
            }
        }
        let take = (dk_len - out.len()).min(32);
        out.extend_from_slice(&t[..take]);
        block_index += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc7914_vector_c1() {
        // RFC 7914 §11: PBKDF2-HMAC-SHA-256 (P="passwd", S="salt", c=1, dkLen=64).
        let dk = pbkdf2_hmac_sha256(b"passwd", b"salt", 1, 64);
        assert_eq!(
            dk,
            hex("55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783")
        );
    }

    #[test]
    fn rfc7914_vector_c2() {
        // RFC 7914 §11: (P="Password", S="NaCl", c=80000, dkLen=64).
        let dk = pbkdf2_hmac_sha256(b"Password", b"NaCl", 80000, 64);
        assert_eq!(
            dk,
            hex("4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d")
        );
    }

    #[test]
    fn different_salts_differ() {
        let a = pbkdf2_hmac_sha256(b"pw", b"salt-a", 10, 32);
        let b = pbkdf2_hmac_sha256(b"pw", b"salt-b", 10, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn long_output_spans_blocks() {
        let dk = pbkdf2_hmac_sha256(b"pw", b"salt", 2, 80);
        assert_eq!(dk.len(), 80);
        // First 32 bytes must equal the dkLen=32 derivation (block prefix).
        let short = pbkdf2_hmac_sha256(b"pw", b"salt", 2, 32);
        assert_eq!(&dk[..32], &short[..]);
    }
}
