//! Cryptographic primitives for the SHIELD reproduction.
//!
//! Everything here is implemented from scratch (no crypto crates are on the
//! approved offline dependency list) and validated against published test
//! vectors: FIPS-197 (AES), NIST SP 800-38A (CTR), RFC 8439 (ChaCha20),
//! FIPS-180-4 (SHA-256), RFC 4231 (HMAC), RFC 7914 appendix (PBKDF2) and the
//! canonical CRC32C check value.
//!
//! The central abstraction is [`CipherContext`]: a streaming cipher instance
//! bound to a [`Dek`] and a per-file nonce. Constructing one performs the
//! full key-schedule expansion and state allocation, deliberately mirroring
//! an OpenSSL `EVP_EncryptInit` cycle — the per-call initialization cost
//! whose amortization is the subject of the paper's WAL-buffer design
//! (§3.2, §5.3). Callers that encrypt many small payloads with one context
//! amortize that cost; callers that build a fresh context per payload pay it
//! every time.
//!
//! The keystream XOR kernels behind [`CipherContext::xor_at`] are batched —
//! multi-block keystream generation plus word-wide combining (DESIGN.md
//! § perf kernels) — while the per-call init cost above is deliberately
//! untouched. The pre-batching scalar kernels live on in [`reference`] as
//! the bit-for-bit and performance baseline.

pub mod aes;
pub mod chacha20;
pub mod cipher;
pub mod crc32c;
pub mod dek;
pub mod hmac;
pub mod kdf;
pub mod reference;
pub mod sha256;
pub mod xor;

pub use cipher::{Algorithm, CipherContext, NONCE_LEN};
pub use crc32c::{crc32c, crc32c_extend, crc32c_masked, crc32c_unmask};
pub use dek::{Dek, DekId};
pub use hmac::hmac_sha256;
pub use kdf::pbkdf2_hmac_sha256;
pub use sha256::{sha256, Sha256};

/// Compares two byte slices in constant time (with respect to content).
///
/// Used wherever secrets or MACs are compared, so that unequal prefixes do
/// not leak through timing.
#[must_use]
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Fills `buf` with cryptographically secure random bytes from the OS.
pub fn secure_random(buf: &mut [u8]) {
    use rand::RngExt;
    rand::rng().fill(buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn secure_random_fills() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        secure_random(&mut a);
        secure_random(&mut b);
        // Overwhelmingly unlikely to collide.
        assert_ne!(a, b);
    }
}
