//! AES-128 block cipher (FIPS-197).
//!
//! A straightforward, portable software implementation: S-box substitution,
//! ShiftRows, MixColumns via `xtime`, and an expanded 11-round-key schedule.
//! Only the encryption direction is implemented because every mode used in
//! this workspace (CTR) needs only the forward permutation.

/// Number of bytes in an AES block.
pub const BLOCK_LEN: usize = 16;
/// Number of bytes in an AES-128 key.
pub const KEY_LEN: usize = 16;
const ROUNDS: usize = 10;

/// The AES S-box (FIPS-197 figure 7).
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

#[inline]
const fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// T-table for the combined SubBytes+ShiftRows+MixColumns round:
/// `T0[x] = [2·S(x), S(x), S(x), 3·S(x)]` packed big-endian, rotated right
/// by `rot` bits. The single-block path uses `T0` with `rotate_right` at
/// use sites; the batched path uses the materialized `T1..T3` rotations so
/// each table lookup is a plain load with no dependent rotate.
const fn build_t(rot: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        let w = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        t[i] = w.rotate_right(rot);
        i += 1;
    }
    t
}

static T0: [u32; 256] = build_t(0);
static T1: [u32; 256] = build_t(8);
static T2: [u32; 256] = build_t(16);
static T3: [u32; 256] = build_t(24);

/// Number of independent blocks processed per [`Aes128::encrypt_blocks8`]
/// call — the CTR keystream batch width.
pub const BATCH_BLOCKS: usize = 8;

/// Whether [`Aes128::encrypt_blocks8`] dispatches to a hardware batch
/// kernel on this machine.
///
/// Callers use this to decide if over-generating a full batch for a short
/// tail is profitable: with hardware rounds an 8-block batch costs less
/// than a single software block, without them it costs up to 8x one.
#[must_use]
pub fn batch_is_accelerated() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Final-round word: SubBytes+ShiftRows (no MixColumns) + AddRoundKey.
#[inline(always)]
fn sbox_word(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
    ((u32::from(SBOX[(a >> 24) as usize]) << 24)
        | (u32::from(SBOX[((b >> 16) & 0xff) as usize]) << 16)
        | (u32::from(SBOX[((c >> 8) & 0xff) as usize]) << 8)
        | u32::from(SBOX[(d & 0xff) as usize]))
        ^ k
}

/// An expanded AES-128 key schedule.
///
/// Construction (`new`) performs the full key expansion; this is the
/// per-initialization cost that [`crate::CipherContext`] deliberately pays
/// once per context. Encryption uses the standard T-table formulation
/// (one table plus rotations), giving software throughput comparable to a
/// classic OpenSSL no-AESNI build.
#[derive(Clone)]
pub struct Aes128 {
    /// Round keys as big-endian column words: `round_keys[r][c]`.
    round_keys: [[u32; 4]; ROUNDS + 1],
    /// The same round keys serialized in FIPS-197 byte order, kept so the
    /// hardware (AES-NI) batch path loads them straight into vector
    /// registers without re-serializing per batch.
    round_key_bytes: [[u8; BLOCK_LEN]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [0u32; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i] = u32::from_be_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp = temp.rotate_left(8);
                temp = (u32::from(SBOX[(temp >> 24) as usize]) << 24)
                    | (u32::from(SBOX[((temp >> 16) & 0xff) as usize]) << 16)
                    | (u32::from(SBOX[((temp >> 8) & 0xff) as usize]) << 8)
                    | u32::from(SBOX[(temp & 0xff) as usize]);
                temp ^= u32::from(RCON[i / 4 - 1]) << 24;
            }
            w[i] = w[i - 4] ^ temp;
        }
        let mut round_keys = [[0u32; 4]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            rk.copy_from_slice(&w[4 * r..4 * r + 4]);
        }
        let mut round_key_bytes = [[0u8; BLOCK_LEN]; ROUNDS + 1];
        for (bytes, rk) in round_key_bytes.iter_mut().zip(round_keys.iter()) {
            for (chunk, word) in bytes.chunks_exact_mut(4).zip(rk.iter()) {
                chunk.copy_from_slice(&word.to_be_bytes());
            }
        }
        Aes128 { round_keys, round_key_bytes }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let rk = &self.round_keys;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk[0][0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk[0][1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk[0][2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk[0][3];

        #[inline(always)]
        fn t_round(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            T0[(a >> 24) as usize]
                ^ T0[((b >> 16) & 0xff) as usize].rotate_right(8)
                ^ T0[((c >> 8) & 0xff) as usize].rotate_right(16)
                ^ T0[(d & 0xff) as usize].rotate_right(24)
                ^ k
        }

        #[allow(clippy::needless_range_loop)]
        for round in 1..ROUNDS {
            let t0 = t_round(s0, s1, s2, s3, rk[round][0]);
            let t1 = t_round(s1, s2, s3, s0, rk[round][1]);
            let t2 = t_round(s2, s3, s0, s1, rk[round][2]);
            let t3 = t_round(s3, s0, s1, s2, rk[round][3]);
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }

        #[inline(always)]
        fn last_round(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            ((u32::from(SBOX[(a >> 24) as usize]) << 24)
                | (u32::from(SBOX[((b >> 16) & 0xff) as usize]) << 16)
                | (u32::from(SBOX[((c >> 8) & 0xff) as usize]) << 8)
                | u32::from(SBOX[(d & 0xff) as usize]))
                ^ k
        }

        let o0 = last_round(s0, s1, s2, s3, rk[ROUNDS][0]);
        let o1 = last_round(s1, s2, s3, s0, rk[ROUNDS][1]);
        let o2 = last_round(s2, s3, s0, s1, rk[ROUNDS][2]);
        let o3 = last_round(s3, s0, s1, s2, rk[ROUNDS][3]);
        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Encrypts [`BATCH_BLOCKS`] independent 16-byte blocks in place.
    ///
    /// On x86-64 with AES-NI (runtime-detected, cached by `std`), the
    /// whole batch runs through hardware rounds with the round keys held
    /// in vector registers across all eight blocks. Elsewhere it falls
    /// back to the portable batched T-table kernel. Both produce
    /// bit-identical FIPS-197 output.
    pub fn encrypt_blocks8(&self, blocks: &mut [u8; BLOCK_LEN * BATCH_BLOCKS]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("aes") {
            // SAFETY: the `aes` target feature was just detected.
            unsafe { self.encrypt_blocks8_aesni(blocks) };
            return;
        }
        self.encrypt_blocks8_soft(blocks);
    }

    /// Hardware AES batch: one `aesenc` per round per block, round keys
    /// loaded into `__m128i` registers once for the whole batch.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_blocks8_aesni(&self, blocks: &mut [u8; BLOCK_LEN * BATCH_BLOCKS]) {
        use std::arch::x86_64::{
            __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128,
            _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
        };
        // SAFETY: `loadu`/`storeu` tolerate unaligned pointers, and every
        // pointer stays inside `blocks` / `round_key_bytes`.
        unsafe {
            let mut keys = [_mm_setzero_si128(); ROUNDS + 1];
            for (key, bytes) in keys.iter_mut().zip(self.round_key_bytes.iter()) {
                *key = _mm_loadu_si128(bytes.as_ptr().cast::<__m128i>());
            }
            let mut lanes = [_mm_setzero_si128(); BATCH_BLOCKS];
            for (lane, chunk) in lanes.iter_mut().zip(blocks.chunks_exact(BLOCK_LEN)) {
                *lane = _mm_xor_si128(_mm_loadu_si128(chunk.as_ptr().cast::<__m128i>()), keys[0]);
            }
            for key in &keys[1..ROUNDS] {
                for lane in &mut lanes {
                    *lane = _mm_aesenc_si128(*lane, *key);
                }
            }
            for (lane, chunk) in lanes.iter_mut().zip(blocks.chunks_exact_mut(BLOCK_LEN)) {
                *lane = _mm_aesenclast_si128(*lane, keys[ROUNDS]);
                _mm_storeu_si128(chunk.as_mut_ptr().cast::<__m128i>(), *lane);
            }
        }
    }

    /// Portable batched kernel: CTR counter blocks have no data dependency
    /// between them, so the round loop advances all eight states one round
    /// at a time — the table lookups of different blocks overlap in the
    /// out-of-order window instead of serializing on a single block's
    /// round-to-round dependency chain, and each round key is loaded once
    /// per round rather than once per block. States stay in word form for
    /// the whole batch — bytes are parsed once on entry and written once
    /// on exit.
    fn encrypt_blocks8_soft(&self, blocks: &mut [u8; BLOCK_LEN * BATCH_BLOCKS]) {
        let rk = &self.round_keys;
        let mut s = [[0u32; 4]; BATCH_BLOCKS];
        for (state, chunk) in s.iter_mut().zip(blocks.chunks_exact(BLOCK_LEN)) {
            *state = [
                u32::from_be_bytes(chunk[0..4].try_into().unwrap()) ^ rk[0][0],
                u32::from_be_bytes(chunk[4..8].try_into().unwrap()) ^ rk[0][1],
                u32::from_be_bytes(chunk[8..12].try_into().unwrap()) ^ rk[0][2],
                u32::from_be_bytes(chunk[12..16].try_into().unwrap()) ^ rk[0][3],
            ];
        }
        for round_key in rk.iter().take(ROUNDS).skip(1) {
            for state in &mut s {
                let [a, b, c, d] = *state;
                *state = [
                    T0[(a >> 24) as usize]
                        ^ T1[((b >> 16) & 0xff) as usize]
                        ^ T2[((c >> 8) & 0xff) as usize]
                        ^ T3[(d & 0xff) as usize]
                        ^ round_key[0],
                    T0[(b >> 24) as usize]
                        ^ T1[((c >> 16) & 0xff) as usize]
                        ^ T2[((d >> 8) & 0xff) as usize]
                        ^ T3[(a & 0xff) as usize]
                        ^ round_key[1],
                    T0[(c >> 24) as usize]
                        ^ T1[((d >> 16) & 0xff) as usize]
                        ^ T2[((a >> 8) & 0xff) as usize]
                        ^ T3[(b & 0xff) as usize]
                        ^ round_key[2],
                    T0[(d >> 24) as usize]
                        ^ T1[((a >> 16) & 0xff) as usize]
                        ^ T2[((b >> 8) & 0xff) as usize]
                        ^ T3[(c & 0xff) as usize]
                        ^ round_key[3],
                ];
            }
        }
        let last = &rk[ROUNDS];
        for (state, chunk) in s.iter().zip(blocks.chunks_exact_mut(BLOCK_LEN)) {
            let [a, b, c, d] = *state;
            chunk[0..4].copy_from_slice(&sbox_word(a, b, c, d, last[0]).to_be_bytes());
            chunk[4..8].copy_from_slice(&sbox_word(b, c, d, a, last[1]).to_be_bytes());
            chunk[8..12].copy_from_slice(&sbox_word(c, d, a, b, last[2]).to_be_bytes());
            chunk[12..16].copy_from_slice(&sbox_word(d, a, b, c, last[3]).to_be_bytes());
        }
    }
}

impl Drop for Aes128 {
    fn drop(&mut self) {
        // Best-effort scrubbing of key material, in both representations.
        for rk in &mut self.round_keys {
            for w in rk.iter_mut() {
                // Volatile write so the zeroing is not elided.
                unsafe { std::ptr::write_volatile(w, 0) };
            }
        }
        for rk in &mut self.round_key_bytes {
            crate::xor::scrub(rk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        // FIPS-197 Appendix B worked example.
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        // FIPS-197 Appendix C.1 AES-128 known-answer test.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn distinct_keys_distinct_ciphertexts() {
        let mut b1 = [7u8; 16];
        let mut b2 = [7u8; 16];
        Aes128::new(&[0u8; 16]).encrypt_block(&mut b1);
        Aes128::new(&[1u8; 16]).encrypt_block(&mut b2);
        assert_ne!(b1, b2);
    }

    #[test]
    fn encrypt_blocks8_matches_single_block() {
        // The batched kernel must be bit-for-bit the scalar permutation on
        // every lane, including non-counter (arbitrary) inputs.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let aes = Aes128::new(&key);
        let mut batch = [0u8; BLOCK_LEN * BATCH_BLOCKS];
        for (i, b) in batch.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(11);
        }
        let mut expected = batch;
        for chunk in expected.chunks_exact_mut(BLOCK_LEN) {
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().unwrap();
            aes.encrypt_block(block);
        }
        // The dispatching entry point (hardware path where available)…
        let mut dispatched = batch;
        aes.encrypt_blocks8(&mut dispatched);
        assert_eq!(dispatched, expected);
        // …and the portable fallback must both match the scalar kernel.
        aes.encrypt_blocks8_soft(&mut batch);
        assert_eq!(batch, expected);
    }

    #[test]
    fn encrypt_blocks8_fips_vector_lane() {
        // FIPS-197 Appendix C.1 known answer, replicated across all lanes.
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let pt = hex("00112233445566778899aabbccddeeff");
        let ct = hex("69c4e0d86a7b0430d8cdb78070b4c55a");
        let mut batch = [0u8; BLOCK_LEN * BATCH_BLOCKS];
        for chunk in batch.chunks_exact_mut(BLOCK_LEN) {
            chunk.copy_from_slice(&pt);
        }
        Aes128::new(&key).encrypt_blocks8(&mut batch);
        for chunk in batch.chunks_exact(BLOCK_LEN) {
            assert_eq!(chunk, &ct[..]);
        }
    }
}
