//! ChaCha20 stream cipher (RFC 8439).
//!
//! Included because the paper names ChaCha as the alternative to AES for
//! SHIELD's pluggable encryption algorithm. The block counter is 32 bits
//! with a 96-bit nonce, exactly as in RFC 8439; an optional initial-counter
//! base lets callers fold extra nonce material into the starting block
//! index (see [`ChaCha20::new_with_counter`]).
//!
//! The XOR path is batched: keystream is produced [`BATCH_BLOCKS`] blocks
//! (256 B) at a time with the 16-word input state built once per batch, and
//! combined into the payload 8 bytes per operation (DESIGN.md § perf
//! kernels). The pre-batching scalar kernel survives as
//! [`crate::reference::chacha20_xor`] for equivalence tests and the perf
//! harness.

use crate::xor;

/// Number of bytes in a ChaCha20 key.
pub const KEY_LEN: usize = 32;
/// Number of bytes of keystream produced per block.
pub const BLOCK_LEN: usize = 64;
/// Number of blocks generated per batched keystream pass.
pub const BATCH_BLOCKS: usize = 4;

/// A ChaCha20 keystream generator bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
    nonce_words: [u32; 3],
    /// Block index of stream offset 0; RFC 8439 pure-nonce usage is 0.
    counter_base: u32,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Runs the 20 ChaCha rounds over `state`, adds the input state back in,
/// and serializes the 64-byte block into `out`.
#[inline]
fn permute_into(state: &[u32; 16], out: &mut [u8; BLOCK_LEN]) {
    let mut working = *state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for ((w, s), chunk) in working.iter().zip(state.iter()).zip(out.chunks_exact_mut(4)) {
        chunk.copy_from_slice(&w.wrapping_add(*s).to_le_bytes());
    }
}

impl ChaCha20 {
    /// Creates a keystream generator for `key` and a 12-byte `nonce`, with
    /// stream offset 0 at block counter 0 (plain RFC 8439 usage).
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; 12]) -> Self {
        Self::new_with_counter(key, nonce, 0)
    }

    /// Like [`ChaCha20::new`], but stream offset 0 maps to block counter
    /// `counter_base`. [`crate::CipherContext`] uses this to fold the last
    /// 4 bytes of its 16-byte per-file nonce into the starting counter, so
    /// two files whose nonces share only a 12-byte prefix still get
    /// distinct keystreams.
    #[must_use]
    pub fn new_with_counter(key: &[u8; KEY_LEN], nonce: &[u8; 12], counter_base: u32) -> Self {
        let mut key_words = [0u32; 8];
        for (i, w) in key_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut nonce_words = [0u32; 3];
        for (i, w) in nonce_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha20 { key_words, nonce_words, counter_base }
    }

    /// Block index that stream offset 0 maps to.
    #[must_use]
    pub fn counter_base(&self) -> u32 {
        self.counter_base
    }

    /// The RFC 8439 input state for block index `counter` (an *absolute*
    /// counter value — [`ChaCha20::counter_base`] is not re-applied).
    #[inline]
    fn state_for(&self, counter: u32) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce_words);
        state
    }

    /// Produces the 64-byte keystream block for block index `counter`.
    pub fn keystream_block(&self, counter: u32, out: &mut [u8; BLOCK_LEN]) {
        permute_into(&self.state_for(counter), out);
    }

    /// Produces [`BATCH_BLOCKS`] consecutive keystream blocks starting at
    /// block index `counter`.
    ///
    /// On x86-64 this runs all four blocks through each quarter-round pass
    /// simultaneously (vertical SIMD: lane `b` of vector `i` holds word
    /// `i` of block `counter + b`; SSE2 is baseline on x86-64, so no
    /// runtime detection is needed). Elsewhere, the input state is built
    /// once and only its counter word bumps between scalar blocks.
    pub fn keystream_blocks4(&self, counter: u32, out: &mut [u8; BLOCK_LEN * BATCH_BLOCKS]) {
        #[cfg(target_arch = "x86_64")]
        {
            self.keystream_blocks4_simd(counter, out);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.keystream_blocks4_portable(counter, out);
        }
    }

    /// Scalar 4-block batch: one state build, counter bumps in place.
    /// The non-x86-64 implementation of [`ChaCha20::keystream_blocks4`],
    /// and the baseline its SIMD twin is tested against.
    #[cfg_attr(all(target_arch = "x86_64", not(test)), allow(dead_code))]
    fn keystream_blocks4_portable(&self, counter: u32, out: &mut [u8; BLOCK_LEN * BATCH_BLOCKS]) {
        let mut state = self.state_for(counter);
        for chunk in out.chunks_exact_mut(BLOCK_LEN) {
            permute_into(&state, chunk.try_into().unwrap());
            state[12] = state[12].wrapping_add(1);
        }
    }

    /// Vertically vectorized 4-block kernel: each `__m128i` carries one
    /// state word across the four blocks, so every quarter-round pass
    /// advances 256 B of keystream at once; a 4×4 word transpose at the
    /// end restores per-block byte order.
    #[cfg(target_arch = "x86_64")]
    fn keystream_blocks4_simd(&self, counter: u32, out: &mut [u8; BLOCK_LEN * BATCH_BLOCKS]) {
        use std::arch::x86_64::{
            __m128i, _mm_add_epi32, _mm_or_si128, _mm_set1_epi32, _mm_set_epi32,
            _mm_slli_epi32, _mm_srli_epi32, _mm_storeu_si128, _mm_unpackhi_epi32,
            _mm_unpackhi_epi64, _mm_unpacklo_epi32, _mm_unpacklo_epi64, _mm_xor_si128,
        };

        /// 32-bit lane rotate-left by `L` (`R` must be `32 - L`).
        #[inline(always)]
        fn rotl<const L: i32, const R: i32>(x: __m128i) -> __m128i {
            // SAFETY: SSE2 is unconditionally available on x86-64.
            unsafe { _mm_or_si128(_mm_slli_epi32::<L>(x), _mm_srli_epi32::<R>(x)) }
        }

        macro_rules! qr {
            ($v:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {{
                $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
                $v[$d] = rotl::<16, 16>(_mm_xor_si128($v[$d], $v[$a]));
                $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
                $v[$b] = rotl::<12, 20>(_mm_xor_si128($v[$b], $v[$c]));
                $v[$a] = _mm_add_epi32($v[$a], $v[$b]);
                $v[$d] = rotl::<8, 24>(_mm_xor_si128($v[$d], $v[$a]));
                $v[$c] = _mm_add_epi32($v[$c], $v[$d]);
                $v[$b] = rotl::<7, 25>(_mm_xor_si128($v[$b], $v[$c]));
            }};
        }

        let state = self.state_for(counter);
        // SAFETY: SSE2 intrinsics on x86-64; `storeu` tolerates unaligned
        // destinations and every store stays inside `out`.
        unsafe {
            let mut v = [_mm_set1_epi32(0); 16];
            for (vec, word) in v.iter_mut().zip(state.iter()) {
                *vec = _mm_set1_epi32(*word as i32);
            }
            // Lane b gets block counter + b (wrapping, like the scalar path).
            v[12] = _mm_add_epi32(v[12], _mm_set_epi32(3, 2, 1, 0));
            let init = v;
            for _ in 0..10 {
                qr!(v, 0, 4, 8, 12);
                qr!(v, 1, 5, 9, 13);
                qr!(v, 2, 6, 10, 14);
                qr!(v, 3, 7, 11, 15);
                qr!(v, 0, 5, 10, 15);
                qr!(v, 1, 6, 11, 12);
                qr!(v, 2, 7, 8, 13);
                qr!(v, 3, 4, 9, 14);
            }
            for (vec, start) in v.iter_mut().zip(init.iter()) {
                *vec = _mm_add_epi32(*vec, *start);
            }
            // Transpose word-major lanes back to block-major bytes, four
            // state words (one 16-byte row per block) at a time.
            for g in 0..4 {
                let t0 = _mm_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
                let t1 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
                let t2 = _mm_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
                let t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
                let rows = [
                    _mm_unpacklo_epi64(t0, t1),
                    _mm_unpackhi_epi64(t0, t1),
                    _mm_unpacklo_epi64(t2, t3),
                    _mm_unpackhi_epi64(t2, t3),
                ];
                for (block, row) in rows.iter().enumerate() {
                    let dst = out[block * BLOCK_LEN + 16 * g..].as_mut_ptr();
                    _mm_storeu_si128(dst.cast::<__m128i>(), *row);
                }
            }
        }
    }

    /// XORs keystream into `data`, where `data` begins at absolute stream
    /// byte `offset`. Random access is supported, as required for reading
    /// SST blocks at arbitrary file offsets.
    ///
    /// Keystream is staged [`BATCH_BLOCKS`] blocks at a time and combined
    /// word-wide; the staging buffer is scrubbed before returning.
    pub fn xor_at(&self, offset: u64, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let mut counter =
            self.counter_base.wrapping_add((offset / BLOCK_LEN as u64) as u32);
        let mut pos = 0usize;
        let mut batch = [0u8; BLOCK_LEN * BATCH_BLOCKS];

        // Head: a partial first block when `offset` is mid-block.
        let in_block = (offset % BLOCK_LEN as u64) as usize;
        if in_block != 0 {
            let block: &mut [u8; BLOCK_LEN] = (&mut batch[..BLOCK_LEN]).try_into().unwrap();
            self.keystream_block(counter, block);
            counter = counter.wrapping_add(1);
            let n = (BLOCK_LEN - in_block).min(data.len());
            xor::xor_in_place(&mut data[..n], &block[in_block..in_block + n]);
            pos = n;
        }

        // Body: full 256-byte batches.
        while data.len() - pos >= batch.len() {
            self.keystream_blocks4(counter, &mut batch);
            counter = counter.wrapping_add(BATCH_BLOCKS as u32);
            xor::xor_in_place(&mut data[pos..pos + batch.len()], &batch);
            pos += batch.len();
        }

        // Tail: remaining whole/partial blocks, one at a time.
        while pos < data.len() {
            let block: &mut [u8; BLOCK_LEN] = (&mut batch[..BLOCK_LEN]).try_into().unwrap();
            self.keystream_block(counter, block);
            counter = counter.wrapping_add(1);
            let n = (data.len() - pos).min(BLOCK_LEN);
            xor::xor_in_place(&mut data[pos..pos + n], &block[..n]);
            pos += n;
        }

        // Scrub contract (see crate::xor::scrub): the whole staging buffer,
        // on the only path that generated keystream.
        xor::scrub(&mut batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_block_test() {
        // RFC 8439 §2.3.2 block function test vector.
        let key: [u8; 32] =
            hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let mut out = [0u8; 64];
        ChaCha20::new(&key, &nonce).keystream_block(1, &mut out);
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e \
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(out.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_test() {
        // RFC 8439 §2.4.2 (keystream starts at counter 1 in the RFC; we
        // reproduce that by XORing at offset BLOCK_LEN).
        let key: [u8; 32] =
            hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        ChaCha20::new(&key, &nonce).xor_at(BLOCK_LEN as u64, &mut data);
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b \
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8 \
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736 \
             5af90bbf74a35be6b40b8eedf2785e42 874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_roundtrip_random_offsets() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let c = ChaCha20::new(&key, &nonce);
        let original: Vec<u8> = (0..300).map(|i| (i * 7 % 251) as u8).collect();
        let mut whole = original.clone();
        c.xor_at(0, &mut whole);
        // Decrypt a slice in the middle using its absolute offset.
        let mut middle = whole[100..217].to_vec();
        c.xor_at(100, &mut middle);
        assert_eq!(&middle[..], &original[100..217]);
    }

    #[test]
    fn keystream_blocks4_matches_single_blocks() {
        let key = [0x5au8; 32];
        let nonce = [0xc3u8; 12];
        let c = ChaCha20::new(&key, &nonce);
        let mut batch = [0u8; BLOCK_LEN * BATCH_BLOCKS];
        c.keystream_blocks4(7, &mut batch);
        for (i, chunk) in batch.chunks_exact(BLOCK_LEN).enumerate() {
            let mut single = [0u8; BLOCK_LEN];
            c.keystream_block(7u32.wrapping_add(i as u32), &mut single);
            assert_eq!(chunk, &single[..], "block {i}");
        }
    }

    #[test]
    fn keystream_blocks4_portable_matches_dispatch() {
        // The SIMD and scalar 4-block kernels must agree bit-for-bit,
        // including when the 32-bit lane counters wrap.
        let c = ChaCha20::new_with_counter(&[0x21u8; 32], &[0x43u8; 12], 9);
        for counter in [0u32, 7, u32::MAX - 2, u32::MAX] {
            let mut a = [0u8; BLOCK_LEN * BATCH_BLOCKS];
            let mut b = [0u8; BLOCK_LEN * BATCH_BLOCKS];
            c.keystream_blocks4(counter, &mut a);
            c.keystream_blocks4_portable(counter, &mut b);
            assert_eq!(a, b, "counter {counter}");
        }
    }

    #[test]
    fn counter_base_shifts_the_stream_by_whole_blocks() {
        // new_with_counter(k) at offset 0 must equal new() at offset 64·k:
        // the counter base is exactly a block-granular stream shift.
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let base0 = ChaCha20::new(&key, &nonce);
        let based = ChaCha20::new_with_counter(&key, &nonce, 3);
        assert_eq!(based.counter_base(), 3);
        let original: Vec<u8> = (0..200).map(|i| (i % 256) as u8).collect();
        let mut via_base = original.clone();
        based.xor_at(5, &mut via_base);
        let mut via_offset = original.clone();
        base0.xor_at(3 * BLOCK_LEN as u64 + 5, &mut via_offset);
        assert_eq!(via_base, via_offset);
    }

    #[test]
    fn distinct_counter_bases_distinct_streams() {
        let key = [4u8; 32];
        let nonce = [5u8; 12];
        let mut a = vec![0u8; 128];
        let mut b = vec![0u8; 128];
        ChaCha20::new_with_counter(&key, &nonce, 0).xor_at(0, &mut a);
        ChaCha20::new_with_counter(&key, &nonce, 1).xor_at(0, &mut b);
        assert_ne!(a, b);
        // But base 1 at offset 0 is base 0 at offset 64 — shifted, not new.
        assert_eq!(&b[..64], &a[64..128]);
    }
}
