//! ChaCha20 stream cipher (RFC 8439).
//!
//! Included because the paper names ChaCha as the alternative to AES for
//! SHIELD's pluggable encryption algorithm. The block counter is 32 bits
//! with a 96-bit nonce, exactly as in RFC 8439.

/// Number of bytes in a ChaCha20 key.
pub const KEY_LEN: usize = 32;
/// Number of bytes of keystream produced per block.
pub const BLOCK_LEN: usize = 64;

/// A ChaCha20 keystream generator bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
    nonce_words: [u32; 3],
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20 {
    /// Creates a keystream generator for `key` and a 12-byte `nonce`.
    #[must_use]
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; 12]) -> Self {
        let mut key_words = [0u32; 8];
        for (i, w) in key_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
        }
        let mut nonce_words = [0u32; 3];
        for (i, w) in nonce_words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha20 { key_words, nonce_words }
    }

    /// Produces the 64-byte keystream block for block index `counter`.
    pub fn keystream_block(&self, counter: u32, out: &mut [u8; BLOCK_LEN]) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce_words);

        let mut working = state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    /// XORs keystream into `data`, where `data` begins at absolute stream
    /// byte `offset`. Random access is supported, as required for reading
    /// SST blocks at arbitrary file offsets.
    pub fn xor_at(&self, offset: u64, data: &mut [u8]) {
        let mut block = [0u8; BLOCK_LEN];
        let mut pos = 0usize;
        let mut abs = offset;
        while pos < data.len() {
            let counter = (abs / BLOCK_LEN as u64) as u32;
            let in_block = (abs % BLOCK_LEN as u64) as usize;
            self.keystream_block(counter, &mut block);
            let n = (BLOCK_LEN - in_block).min(data.len() - pos);
            for i in 0..n {
                data[pos + i] ^= block[in_block + i];
            }
            pos += n;
            abs += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_block_test() {
        // RFC 8439 §2.3.2 block function test vector.
        let key: [u8; 32] =
            hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let mut out = [0u8; 64];
        ChaCha20::new(&key, &nonce).keystream_block(1, &mut out);
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4 c7d1f4c733c068030422aa9ac3d46c4e \
             d2826446079faa0914c2d705d98b02a2 b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(out.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_test() {
        // RFC 8439 §2.4.2 (keystream starts at counter 1 in the RFC; we
        // reproduce that by XORing at offset BLOCK_LEN).
        let key: [u8; 32] =
            hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        ChaCha20::new(&key, &nonce).xor_at(BLOCK_LEN as u64, &mut data);
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b \
             f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8 \
             07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736 \
             5af90bbf74a35be6b40b8eedf2785e42 874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_roundtrip_random_offsets() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let c = ChaCha20::new(&key, &nonce);
        let original: Vec<u8> = (0..300).map(|i| (i * 7 % 251) as u8).collect();
        let mut whole = original.clone();
        c.xor_at(0, &mut whole);
        // Decrypt a slice in the middle using its absolute offset.
        let mut middle = whole[100..217].to_vec();
        c.xor_at(100, &mut middle);
        assert_eq!(&middle[..], &original[100..217]);
    }
}
