//! The streaming cipher abstraction used by every encrypted file in the
//! workspace.
//!
//! [`CipherContext::new`] performs key-schedule expansion and state
//! allocation — the analogue of an OpenSSL `EVP_EncryptInit` cycle. This is
//! deliberate: the paper's WAL analysis (§3.2) hinges on the fact that this
//! initialization cost is *fixed per encryption call* while the XOR cost
//! scales with payload size. The SHIELD WAL buffer (§5.3) amortizes context
//! creation over many small writes; the unbuffered path creates a context
//! per write.
//!
//! Both supported algorithms are counter-based stream ciphers, so
//! encryption and decryption are the same XOR and random access at any byte
//! offset is cheap — a hard requirement for reading 4 KiB SST blocks at
//! arbitrary file offsets without decrypting the whole file.

use std::fmt;

use crate::aes::Aes128;
use crate::chacha20::ChaCha20;
use crate::dek::Dek;

/// Length of the per-file nonce stored in plaintext file headers.
///
/// AES-CTR uses all 16 bytes as the initial counter block; ChaCha20 uses the
/// first 12 bytes as its RFC 8439 nonce.
pub const NONCE_LEN: usize = 16;

/// Symmetric encryption algorithms supported by the SHIELD reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Algorithm {
    /// AES-128 in counter mode — the paper's default (§6.1).
    #[default]
    Aes128Ctr,
    /// ChaCha20 (RFC 8439) — the paper's cited software alternative.
    ChaCha20,
}

impl Algorithm {
    /// Secret key length in bytes.
    #[must_use]
    pub fn key_len(self) -> usize {
        match self {
            Algorithm::Aes128Ctr => 16,
            Algorithm::ChaCha20 => 32,
        }
    }

    /// Stable numeric tag used in on-disk formats.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Algorithm::Aes128Ctr => 1,
            Algorithm::ChaCha20 => 2,
        }
    }

    /// Inverse of [`Algorithm::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(Algorithm::Aes128Ctr),
            2 => Some(Algorithm::ChaCha20),
            _ => None,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Aes128Ctr => write!(f, "AES-128-CTR"),
            Algorithm::ChaCha20 => write!(f, "ChaCha20"),
        }
    }
}

enum Inner {
    Aes { schedule: Box<Aes128>, base: [u8; 16] },
    ChaCha(Box<ChaCha20>),
}

/// A cipher instance bound to one DEK and one per-file nonce.
///
/// Creation is the "encryption initialization" the paper measures; reuse a
/// context across many payloads to amortize it (buffered WAL), or create one
/// per payload to model the unbuffered path.
pub struct CipherContext {
    inner: Inner,
}

impl CipherContext {
    /// Expands the key schedule for `dek` with the given per-file `nonce`.
    ///
    /// # Panics
    /// Panics if the DEK's key length does not match its algorithm (which
    /// [`Dek`] construction already guarantees).
    #[must_use]
    pub fn new(dek: &Dek, nonce: &[u8; NONCE_LEN]) -> Self {
        let inner = match dek.algorithm() {
            Algorithm::Aes128Ctr => {
                let key: [u8; 16] = dek.key_bytes().try_into().expect("AES-128 key length");
                Inner::Aes { schedule: Box::new(Aes128::new(&key)), base: *nonce }
            }
            Algorithm::ChaCha20 => {
                let key: [u8; 32] = dek.key_bytes().try_into().expect("ChaCha20 key length");
                let n12: [u8; 12] = nonce[..12].try_into().unwrap();
                Inner::ChaCha(Box::new(ChaCha20::new(&key, &n12)))
            }
        };
        CipherContext { inner }
    }

    /// XORs the keystream into `data`, treating `data` as beginning at
    /// absolute stream byte `offset`. Since both algorithms are stream
    /// ciphers this is both `encrypt` and `decrypt`.
    pub fn xor_at(&self, offset: u64, data: &mut [u8]) {
        match &self.inner {
            Inner::Aes { schedule, base } => aes_ctr_xor(schedule, base, offset, data),
            Inner::ChaCha(c) => c.xor_at(offset, data),
        }
    }

    /// Convenience alias for encrypting a buffer that starts at `offset`.
    pub fn encrypt_at(&self, offset: u64, data: &mut [u8]) {
        self.xor_at(offset, data);
    }

    /// Convenience alias for decrypting a buffer that starts at `offset`.
    pub fn decrypt_at(&self, offset: u64, data: &mut [u8]) {
        self.xor_at(offset, data);
    }
}

/// 128-bit big-endian add of `v` into counter block `ctr`.
fn counter_add(base: &[u8; 16], v: u64) -> [u8; 16] {
    let n = u128::from_be_bytes(*base).wrapping_add(v as u128);
    n.to_be_bytes()
}

fn aes_ctr_xor(schedule: &Aes128, base: &[u8; 16], offset: u64, data: &mut [u8]) {
    let mut pos = 0usize;
    let mut abs = offset;
    let mut keystream = [0u8; 16];
    while pos < data.len() {
        let block_index = abs / 16;
        let in_block = (abs % 16) as usize;
        keystream = counter_add(base, block_index);
        schedule.encrypt_block(&mut keystream);
        let n = (16 - in_block).min(data.len() - pos);
        for i in 0..n {
            data[pos + i] ^= keystream[in_block + i];
        }
        pos += n;
        abs += n as u64;
    }
    // Scrub the last keystream block.
    for b in &mut keystream {
        unsafe { std::ptr::write_volatile(b, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dek::DekId;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_sp800_38a_f51_ctr_aes128() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, all four blocks.
        let dek = Dek::from_parts(
            DekId(1),
            Algorithm::Aes128Ctr,
            hex("2b7e151628aed2a6abf7158809cf4f3c"),
        );
        let nonce: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        CipherContext::new(&dek, &nonce).encrypt_at(0, &mut data);
        assert_eq!(
            data,
            hex(
                "874d6191b620e3261bef6864990db6ce\
                 9806f66b7970fdff8617187bb9fffdff\
                 5ae4df3edbd5d35e5b4f09020db03eab\
                 1e031dda2fbe03d1792170a0f3009cee"
            )
        );
    }

    #[test]
    fn random_offset_decrypt_matches() {
        for algo in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
            let dek = Dek::generate(algo);
            let nonce = [0x42u8; NONCE_LEN];
            let ctx = CipherContext::new(&dek, &nonce);
            let original: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
            let mut enc = original.clone();
            ctx.encrypt_at(0, &mut enc);
            assert_ne!(enc, original);
            // Decrypt an arbitrary middle slice via its absolute offset.
            let mut slice = enc[333..777].to_vec();
            ctx.decrypt_at(333, &mut slice);
            assert_eq!(&slice[..], &original[333..777], "algo {algo}");
        }
    }

    #[test]
    fn chunked_encrypt_equals_whole() {
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let nonce = [7u8; NONCE_LEN];
        let ctx = CipherContext::new(&dek, &nonce);
        let original: Vec<u8> = (0..517u32).map(|i| (i * 13 % 256) as u8).collect();
        let mut whole = original.clone();
        ctx.encrypt_at(0, &mut whole);
        let mut pieces = original.clone();
        let mut off = 0usize;
        for chunk in [100usize, 1, 15, 16, 17, 200, 188] {
            let end = (off + chunk).min(pieces.len());
            let (done, _) = (off, end);
            ctx.encrypt_at(done as u64, &mut pieces[off..end]);
            off = end;
        }
        assert_eq!(pieces, whole);
    }

    #[test]
    fn counter_wraps_cleanly() {
        // base near u128::MAX must wrap rather than panic.
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let nonce = [0xffu8; 16];
        let ctx = CipherContext::new(&dek, &nonce);
        let mut data = vec![0u8; 64];
        ctx.encrypt_at(0, &mut data);
        assert_ne!(data, vec![0u8; 64]);
    }

    #[test]
    fn algorithm_tag_roundtrip() {
        for a in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
            assert_eq!(Algorithm::from_tag(a.tag()), Some(a));
        }
        assert_eq!(Algorithm::from_tag(0), None);
        assert_eq!(Algorithm::from_tag(99), None);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        CipherContext::new(&dek, &[1u8; 16]).encrypt_at(0, &mut a);
        CipherContext::new(&dek, &[2u8; 16]).encrypt_at(0, &mut b);
        assert_ne!(a, b);
    }
}
