//! The streaming cipher abstraction used by every encrypted file in the
//! workspace.
//!
//! [`CipherContext::new`] performs key-schedule expansion and state
//! allocation — the analogue of an OpenSSL `EVP_EncryptInit` cycle. This is
//! deliberate: the paper's WAL analysis (§3.2) hinges on the fact that this
//! initialization cost is *fixed per encryption call* while the XOR cost
//! scales with payload size. The SHIELD WAL buffer (§5.3) amortizes context
//! creation over many small writes; the unbuffered path creates a context
//! per write.
//!
//! Both supported algorithms are counter-based stream ciphers, so
//! encryption and decryption are the same XOR and random access at any byte
//! offset is cheap — a hard requirement for reading 4 KiB SST blocks at
//! arbitrary file offsets without decrypting the whole file.

use std::fmt;

use crate::aes::{self, Aes128};
use crate::chacha20::ChaCha20;
use crate::dek::Dek;
use crate::xor;

/// Length of the per-file nonce stored in plaintext file headers.
///
/// AES-CTR uses all 16 bytes as the initial counter block; ChaCha20 uses the
/// first 12 bytes as its RFC 8439 nonce and folds bytes 12..16
/// (little-endian) into the initial block counter, so the full 16 bytes
/// contribute to the keystream for both algorithms.
pub const NONCE_LEN: usize = 16;

/// Symmetric encryption algorithms supported by the SHIELD reproduction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Algorithm {
    /// AES-128 in counter mode — the paper's default (§6.1).
    #[default]
    Aes128Ctr,
    /// ChaCha20 (RFC 8439) — the paper's cited software alternative.
    ChaCha20,
}

impl Algorithm {
    /// Secret key length in bytes.
    #[must_use]
    pub fn key_len(self) -> usize {
        match self {
            Algorithm::Aes128Ctr => 16,
            Algorithm::ChaCha20 => 32,
        }
    }

    /// Stable numeric tag used in on-disk formats.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Algorithm::Aes128Ctr => 1,
            Algorithm::ChaCha20 => 2,
        }
    }

    /// Inverse of [`Algorithm::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(Algorithm::Aes128Ctr),
            2 => Some(Algorithm::ChaCha20),
            _ => None,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Aes128Ctr => write!(f, "AES-128-CTR"),
            Algorithm::ChaCha20 => write!(f, "ChaCha20"),
        }
    }
}

enum Inner {
    /// `base` is the initial counter block parsed to a native `u128` once
    /// at init time; the kernel increments it directly instead of paying a
    /// big-endian round-trip per block.
    Aes { schedule: Box<Aes128>, base: u128 },
    ChaCha(Box<ChaCha20>),
}

/// A cipher instance bound to one DEK and one per-file nonce.
///
/// Creation is the "encryption initialization" the paper measures; reuse a
/// context across many payloads to amortize it (buffered WAL), or create one
/// per payload to model the unbuffered path.
pub struct CipherContext {
    inner: Inner,
}

impl CipherContext {
    /// Expands the key schedule for `dek` with the given per-file `nonce`.
    ///
    /// # Panics
    /// Panics if the DEK's key length does not match its algorithm (which
    /// [`Dek`] construction already guarantees).
    #[must_use]
    pub fn new(dek: &Dek, nonce: &[u8; NONCE_LEN]) -> Self {
        let inner = match dek.algorithm() {
            Algorithm::Aes128Ctr => {
                let key: [u8; 16] = dek.key_bytes().try_into().expect("AES-128 key length");
                Inner::Aes {
                    schedule: Box::new(Aes128::new(&key)),
                    base: u128::from_be_bytes(*nonce),
                }
            }
            Algorithm::ChaCha20 => {
                let key: [u8; 32] = dek.key_bytes().try_into().expect("ChaCha20 key length");
                let n12: [u8; 12] = nonce[..12].try_into().unwrap();
                // Fold nonce bytes 12..16 into the initial block counter so
                // the whole 16-byte nonce selects the stream: two files
                // whose nonces share only a 12-byte prefix must not reuse a
                // keystream under the same DEK.
                let counter = u32::from_le_bytes(nonce[12..].try_into().unwrap());
                Inner::ChaCha(Box::new(ChaCha20::new_with_counter(&key, &n12, counter)))
            }
        };
        CipherContext { inner }
    }

    /// XORs the keystream into `data`, treating `data` as beginning at
    /// absolute stream byte `offset`. Since both algorithms are stream
    /// ciphers this is both `encrypt` and `decrypt`.
    pub fn xor_at(&self, offset: u64, data: &mut [u8]) {
        match &self.inner {
            Inner::Aes { schedule, base } => aes_ctr_xor(schedule, *base, offset, data),
            Inner::ChaCha(c) => c.xor_at(offset, data),
        }
    }

    /// Convenience alias for encrypting a buffer that starts at `offset`.
    pub fn encrypt_at(&self, offset: u64, data: &mut [u8]) {
        self.xor_at(offset, data);
    }

    /// Convenience alias for decrypting a buffer that starts at `offset`.
    pub fn decrypt_at(&self, offset: u64, data: &mut [u8]) {
        self.xor_at(offset, data);
    }
}

/// Batched AES-CTR keystream XOR (DESIGN.md § perf kernels).
///
/// Keystream is generated [`aes::BATCH_BLOCKS`] counter blocks (128 B) at a
/// time into a stack staging buffer through [`Aes128::encrypt_blocks8`],
/// driven by a native `u128` counter that is incremented across the whole
/// call — no per-block `from_be_bytes` round-trip — and combined into the
/// payload 8 bytes per operation. Unaligned offsets get a scalar head
/// (partial first block) and sub-batch lengths a per-block tail. The
/// pre-batching kernel survives as [`crate::reference::aes_ctr_xor`], which
/// the equivalence tests and the `bench-smoke` perf gate run against this
/// one.
fn aes_ctr_xor(schedule: &Aes128, base: u128, offset: u64, data: &mut [u8]) {
    if data.is_empty() {
        return;
    }
    const BATCH_LEN: usize = aes::BLOCK_LEN * aes::BATCH_BLOCKS;
    let mut ctr = base.wrapping_add(u128::from(offset / aes::BLOCK_LEN as u64));
    let mut pos = 0usize;
    let mut batch = [0u8; BATCH_LEN];
    let mut single = [0u8; aes::BLOCK_LEN];

    // Head: a partial first block when `offset` is mid-block.
    let in_block = (offset % aes::BLOCK_LEN as u64) as usize;
    if in_block != 0 {
        single = ctr.to_be_bytes();
        ctr = ctr.wrapping_add(1);
        schedule.encrypt_block(&mut single);
        let n = (aes::BLOCK_LEN - in_block).min(data.len());
        xor::xor_in_place(&mut data[..n], &single[in_block..in_block + n]);
        pos = n;
    }

    // Body: full 8-block batches.
    while data.len() - pos >= BATCH_LEN {
        for block in batch.chunks_exact_mut(aes::BLOCK_LEN) {
            block.copy_from_slice(&ctr.to_be_bytes());
            ctr = ctr.wrapping_add(1);
        }
        schedule.encrypt_blocks8(&mut batch);
        xor::xor_in_place(&mut data[pos..pos + BATCH_LEN], &batch);
        pos += BATCH_LEN;
    }

    // Tail: remaining whole/partial blocks. With a hardware batch kernel,
    // one full 8-block batch costs less than even a single software block,
    // so over-generate and XOR only what is needed (WAL-record-sized
    // writes live entirely in this path). Without hardware the
    // over-generation would cost up to 8x a per-block tail, so stay
    // block-at-a-time there.
    let rem = data.len() - pos;
    if rem > 0 && aes::batch_is_accelerated() {
        for block in batch.chunks_exact_mut(aes::BLOCK_LEN) {
            block.copy_from_slice(&ctr.to_be_bytes());
            ctr = ctr.wrapping_add(1);
        }
        schedule.encrypt_blocks8(&mut batch);
        xor::xor_in_place(&mut data[pos..], &batch[..rem]);
    } else {
        while pos < data.len() {
            single = ctr.to_be_bytes();
            ctr = ctr.wrapping_add(1);
            schedule.encrypt_block(&mut single);
            let n = (data.len() - pos).min(aes::BLOCK_LEN);
            xor::xor_in_place(&mut data[pos..pos + n], &single[..n]);
            pos += n;
        }
    }

    // Scrub contract (see crate::xor::scrub): both staging buffers in
    // full, on the only path that generated keystream — the early return
    // above produced none.
    xor::scrub(&mut batch);
    xor::scrub(&mut single);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dek::DekId;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn nist_sp800_38a_f51_ctr_aes128() {
        // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, all four blocks.
        let dek = Dek::from_parts(
            DekId(1),
            Algorithm::Aes128Ctr,
            hex("2b7e151628aed2a6abf7158809cf4f3c"),
        );
        let nonce: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        CipherContext::new(&dek, &nonce).encrypt_at(0, &mut data);
        assert_eq!(
            data,
            hex(
                "874d6191b620e3261bef6864990db6ce\
                 9806f66b7970fdff8617187bb9fffdff\
                 5ae4df3edbd5d35e5b4f09020db03eab\
                 1e031dda2fbe03d1792170a0f3009cee"
            )
        );
    }

    #[test]
    fn random_offset_decrypt_matches() {
        for algo in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
            let dek = Dek::generate(algo);
            let nonce = [0x42u8; NONCE_LEN];
            let ctx = CipherContext::new(&dek, &nonce);
            let original: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
            let mut enc = original.clone();
            ctx.encrypt_at(0, &mut enc);
            assert_ne!(enc, original);
            // Decrypt an arbitrary middle slice via its absolute offset.
            let mut slice = enc[333..777].to_vec();
            ctx.decrypt_at(333, &mut slice);
            assert_eq!(&slice[..], &original[333..777], "algo {algo}");
        }
    }

    #[test]
    fn chunked_encrypt_equals_whole() {
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let nonce = [7u8; NONCE_LEN];
        let ctx = CipherContext::new(&dek, &nonce);
        let original: Vec<u8> = (0..517u32).map(|i| (i * 13 % 256) as u8).collect();
        let mut whole = original.clone();
        ctx.encrypt_at(0, &mut whole);
        let mut pieces = original.clone();
        let mut off = 0usize;
        for chunk in [100usize, 1, 15, 16, 17, 200, 188] {
            let end = (off + chunk).min(pieces.len());
            let (done, _) = (off, end);
            ctx.encrypt_at(done as u64, &mut pieces[off..end]);
            off = end;
        }
        assert_eq!(pieces, whole);
    }

    #[test]
    fn counter_wraps_cleanly() {
        // base near u128::MAX must wrap rather than panic.
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let nonce = [0xffu8; 16];
        let ctx = CipherContext::new(&dek, &nonce);
        let mut data = vec![0u8; 64];
        ctx.encrypt_at(0, &mut data);
        assert_ne!(data, vec![0u8; 64]);
    }

    #[test]
    fn algorithm_tag_roundtrip() {
        for a in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
            assert_eq!(Algorithm::from_tag(a.tag()), Some(a));
        }
        assert_eq!(Algorithm::from_tag(0), None);
        assert_eq!(Algorithm::from_tag(99), None);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        CipherContext::new(&dek, &[1u8; 16]).encrypt_at(0, &mut a);
        CipherContext::new(&dek, &[2u8; 16]).encrypt_at(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn chacha_nonce_tail_selects_distinct_streams() {
        // Regression: bytes 12..16 of the 16-byte nonce used to be
        // silently dropped for ChaCha20, so two files whose nonces shared
        // a 12-byte prefix reused a keystream under the same DEK. The tail
        // now feeds the initial block counter.
        let dek = Dek::generate(Algorithm::ChaCha20);
        let mut n1 = [0x11u8; NONCE_LEN];
        let mut n2 = n1;
        n1[12..].copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        n2[12..].copy_from_slice(&[0xde, 0xad, 0xbe, 0xee]); // last byte differs
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        CipherContext::new(&dek, &n1).encrypt_at(0, &mut a);
        CipherContext::new(&dek, &n2).encrypt_at(0, &mut b);
        assert_ne!(a, b, "nonce tails 12..16 must yield distinct keystreams");
    }

    #[test]
    fn chacha_nonce_tail_is_a_block_shift() {
        // The fold is defined as: tail (LE u32) = initial block counter.
        // So a tail of k encrypting at offset 0 equals a zero tail
        // encrypting at offset 64·k — pinning the exact semantics.
        let dek = Dek::generate(Algorithm::ChaCha20);
        let mut tail2 = [7u8; NONCE_LEN];
        tail2[12..].copy_from_slice(&2u32.to_le_bytes());
        let mut tail0 = [7u8; NONCE_LEN];
        tail0[12..].copy_from_slice(&[0u8; 4]);
        let original: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        let mut a = original.clone();
        CipherContext::new(&dek, &tail2).encrypt_at(0, &mut a);
        let mut b = original.clone();
        CipherContext::new(&dek, &tail0).encrypt_at(128, &mut b);
        assert_eq!(a, b);
    }
}
