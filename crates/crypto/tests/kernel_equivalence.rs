//! Batched-vs-scalar keystream kernel equivalence.
//!
//! The batched kernels behind `CipherContext::xor_at` (8-block AES-CTR
//! with hardware dispatch, 4-lane SIMD ChaCha20, word-wide XOR) must be
//! bit-for-bit the scalar reference implementations in
//! `shield_crypto::reference` over arbitrary `(offset, length, algorithm)`
//! triples, and must still reproduce the published NIST SP 800-38A and
//! RFC 8439 vectors when entered at odd mid-stream offsets.

use proptest::prelude::*;
use shield_crypto::aes::Aes128;
use shield_crypto::chacha20::ChaCha20;
use shield_crypto::{reference, Algorithm, CipherContext, Dek, DekId, NONCE_LEN};

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

/// Deterministic payload bytes from a seed (SplitMix64 stream).
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

/// Runs `data` through the scalar reference kernel for `algo`, matching
/// the exact key/nonce interpretation of `CipherContext::new`.
fn scalar_xor(dek: &Dek, nonce: &[u8; NONCE_LEN], offset: u64, data: &mut [u8]) {
    match dek.algorithm() {
        Algorithm::Aes128Ctr => {
            let key: [u8; 16] = dek.key_bytes().try_into().unwrap();
            reference::aes_ctr_xor(&Aes128::new(&key), nonce, offset, data);
        }
        Algorithm::ChaCha20 => {
            let key: [u8; 32] = dek.key_bytes().try_into().unwrap();
            let n12: [u8; 12] = nonce[..12].try_into().unwrap();
            let ctr = u32::from_le_bytes(nonce[12..].try_into().unwrap());
            reference::chacha20_xor(&ChaCha20::new_with_counter(&key, &n12, ctr), offset, data);
        }
    }
}

fn dek_for(algo: Algorithm, seed: u64) -> Dek {
    let key: Vec<u8> = payload(seed ^ 0xdead_beef, algo.key_len());
    Dek::from_parts(DekId(u128::from(seed)), algo, key)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random (offset, length, algorithm, key, nonce): batched == scalar.
    #[test]
    fn batched_matches_scalar_reference(
        algo_tag in 1u8..=2,
        offset in 0u64..5_000_000,
        len in 0usize..4500,
        seed in any::<u64>(),
    ) {
        let algo = Algorithm::from_tag(algo_tag).unwrap();
        let dek = dek_for(algo, seed);
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&payload(seed ^ 0x0f0f, NONCE_LEN));
        let ctx = CipherContext::new(&dek, &nonce);
        let original = payload(seed, len);
        let mut batched = original.clone();
        ctx.xor_at(offset, &mut batched);
        let mut scalar = original.clone();
        scalar_xor(&dek, &nonce, offset, &mut scalar);
        prop_assert_eq!(&batched, &scalar);
        // And the batched path round-trips.
        ctx.xor_at(offset, &mut batched);
        prop_assert_eq!(&batched, &original);
    }

    /// Splitting one stream into arbitrary chunks changes nothing: the
    /// head/batch/tail boundaries inside the kernel are invisible.
    #[test]
    fn chunked_equals_whole_at_random_splits(
        algo_tag in 1u8..=2,
        base_offset in 0u64..100_000,
        len in 1usize..3000,
        split_seed in any::<u64>(),
    ) {
        let algo = Algorithm::from_tag(algo_tag).unwrap();
        let dek = dek_for(algo, split_seed);
        let nonce = [0x5au8; NONCE_LEN];
        let ctx = CipherContext::new(&dek, &nonce);
        let original = payload(split_seed, len);
        let mut whole = original.clone();
        ctx.xor_at(base_offset, &mut whole);
        let mut pieces = original;
        let mut pos = 0usize;
        let mut s = split_seed;
        while pos < pieces.len() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let chunk = 1 + (s >> 33) as usize % 257;
            let end = (pos + chunk).min(pieces.len());
            ctx.xor_at(base_offset + pos as u64, &mut pieces[pos..end]);
            pos = end;
        }
        prop_assert_eq!(pieces, whole);
    }
}

/// NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, entered at every odd offset:
/// encrypting only `pt[k..]` at stream offset `k` must reproduce the
/// published ciphertext tail, exercising the kernel's unaligned head path
/// against a fixed vector rather than just self-consistency.
#[test]
fn nist_sp800_38a_f51_at_odd_midstream_offsets() {
    let dek = Dek::from_parts(
        DekId(1),
        Algorithm::Aes128Ctr,
        hex("2b7e151628aed2a6abf7158809cf4f3c"),
    );
    let nonce: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
    let pt = hex(
        "6bc1bee22e409f96e93d7e117393172a ae2d8a571e03ac9c9eb76fac45af8e51 \
         30c81c46a35ce411e5fbc1191a0a52ef f69f2445df4f9b17ad2b417be66c3710",
    );
    let ct = hex(
        "874d6191b620e3261bef6864990db6ce 9806f66b7970fdff8617187bb9fffdff \
         5ae4df3edbd5d35e5b4f09020db03eab 1e031dda2fbe03d1792170a0f3009cee",
    );
    let ctx = CipherContext::new(&dek, &nonce);
    for k in [1usize, 3, 7, 9, 15, 17, 23, 31, 33, 45, 47, 63] {
        let mut data = pt[k..].to_vec();
        ctx.encrypt_at(k as u64, &mut data);
        assert_eq!(&data[..], &ct[k..], "offset {k}");
    }
}

/// RFC 8439 §2.4.2, entered at every odd offset within the message (the
/// RFC stream starts at block counter 1 = offset 64). The 16-byte nonce
/// carries a zero tail, so the counter-base fold must be a no-op here.
#[test]
fn rfc8439_encryption_at_odd_midstream_offsets() {
    let dek = Dek::from_parts(
        DekId(2),
        Algorithm::ChaCha20,
        hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"),
    );
    let mut nonce = [0u8; NONCE_LEN];
    nonce[..12].copy_from_slice(&hex("000000000000004a00000000"));
    let pt = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
    let ct = hex(
        "6e2e359a2568f98041ba0728dd0d6981 e97e7aec1d4360c20a27afccfd9fae0b \
         f91b65c5524733ab8f593dabcd62b357 1639d624e65152ab8f530c359f0861d8 \
         07ca0dbf500d6a6156a38e088a22b65e 52bc514d16ccf806818ce91ab7793736 \
         5af90bbf74a35be6b40b8eedf2785e42 874d",
    );
    let ctx = CipherContext::new(&dek, &nonce);
    for k in [1usize, 5, 13, 27, 41, 63, 65, 77, 101, 113] {
        let mut data = pt[k..].to_vec();
        ctx.encrypt_at(64 + k as u64, &mut data);
        assert_eq!(&data[..], &ct[k..], "offset {k}");
    }
}

/// The fixed regression pair from the ISSUE: same DEK, nonces sharing a
/// 12-byte prefix, differing only in bytes 12..16 — streams must differ.
#[test]
fn chacha_nonces_sharing_12_byte_prefix_get_distinct_streams() {
    let dek = Dek::generate(Algorithm::ChaCha20);
    let mut n1 = [0x77u8; NONCE_LEN];
    let mut n2 = n1;
    n1[15] = 0x01;
    n2[15] = 0x02;
    let mut a = vec![0u8; 512];
    let mut b = vec![0u8; 512];
    CipherContext::new(&dek, &n1).encrypt_at(0, &mut a);
    CipherContext::new(&dek, &n2).encrypt_at(0, &mut b);
    assert_ne!(a, b);
}
