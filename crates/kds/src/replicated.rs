//! A decentralized KDS ensemble: several replicas over one key store.
//!
//! Paper §5.2 requires the KDS to be "decentralized … for high
//! availability"; §5.4 warns that a centralized mapping service "could
//! become a single point of failure". [`ReplicatedKds`] models the property
//! that matters to SHIELD: requests succeed as long as *any* replica is up,
//! and per-replica outages only add failover attempts, never data loss.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use shield_crypto::{Algorithm, Dek, DekId};

use crate::{Kds, KdsConfig, KdsError, KdsResult, KdsStats, LocalKds, ServerId};

struct Replica {
    available: AtomicBool,
}

/// A KDS made of `n` replicas sharing replicated state.
///
/// Since all replicas answer from the same logical key store, this
/// implementation keeps the store in the first replica and treats the
/// others as request endpoints: an unavailable endpoint forces a failover,
/// modeled as one extra `fetch_latency` sleep per failed attempt.
pub struct ReplicatedKds {
    /// The authoritative store (replica state is logically replicated).
    primary: Arc<LocalKds>,
    endpoints: Vec<Replica>,
    failovers: AtomicU64,
    next: AtomicU64,
}

impl ReplicatedKds {
    /// Creates an ensemble of `replicas` endpoints with a shared config.
    ///
    /// # Panics
    /// Panics if `replicas == 0`.
    #[must_use]
    pub fn new(replicas: usize, config: KdsConfig) -> Self {
        assert!(replicas > 0, "need at least one replica");
        let endpoints = (0..replicas)
            .map(|_| Replica { available: AtomicBool::new(true) })
            .collect();
        ReplicatedKds {
            primary: Arc::new(LocalKds::new(config)),
            endpoints,
            failovers: AtomicU64::new(0),
            next: AtomicU64::new(0),
        }
    }

    /// Marks replica `index` as down (requests to it fail over).
    /// An out-of-range index is ignored: fault-injection scripts may target
    /// a larger ensemble than actually deployed.
    pub fn fail_replica(&self, index: usize) {
        if let Some(replica) = self.endpoints.get(index) {
            replica.available.store(false, Ordering::SeqCst);
        }
    }

    /// Brings replica `index` back up. Out-of-range indexes are ignored.
    pub fn recover_replica(&self, index: usize) {
        if let Some(replica) = self.endpoints.get(index) {
            replica.available.store(true, Ordering::SeqCst);
        }
    }

    /// Marks every replica as down: a total KDS outage.
    pub fn fail_all(&self) {
        for replica in &self.endpoints {
            replica.available.store(false, Ordering::SeqCst);
        }
    }

    /// Brings every replica back up.
    pub fn recover_all(&self) {
        for replica in &self.endpoints {
            replica.available.store(true, Ordering::SeqCst);
        }
    }

    /// Number of failover events observed so far.
    #[must_use]
    pub fn failover_count(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Number of replicas currently marked available.
    #[must_use]
    pub fn available_count(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|r| r.available.load(Ordering::SeqCst))
            .count()
    }

    /// Picks an available endpoint round-robin, counting failovers for each
    /// unavailable endpoint skipped. Returns `None` if everything is down.
    fn pick_endpoint(&self) -> Option<usize> {
        let n = self.endpoints.len();
        let start = (self.next.fetch_add(1, Ordering::Relaxed) as usize) % n;
        for probe in 0..n {
            let i = (start + probe) % n;
            if self.endpoints[i].available.load(Ordering::SeqCst) {
                return Some(i);
            }
            self.failovers.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    fn ensure_available(&self) -> KdsResult<()> {
        match self.pick_endpoint() {
            Some(_) => Ok(()),
            None => Err(KdsError::Unavailable("all replicas down".to_string())),
        }
    }
}

impl Kds for ReplicatedKds {
    fn generate_dek(&self, requester: ServerId, algorithm: Algorithm) -> KdsResult<Dek> {
        self.ensure_available()?;
        self.primary.generate_dek(requester, algorithm)
    }

    fn fetch_dek(&self, requester: ServerId, id: DekId) -> KdsResult<Dek> {
        self.ensure_available()?;
        self.primary.fetch_dek(requester, id)
    }

    fn revoke_dek(&self, id: DekId) -> KdsResult<()> {
        self.ensure_available()?;
        self.primary.revoke_dek(id)
    }

    fn authorize_server(&self, server: ServerId) {
        self.primary.authorize_server(server);
    }

    fn revoke_server(&self, server: ServerId) {
        self.primary.revoke_server(server);
    }

    fn stats(&self) -> KdsStats {
        KdsStats {
            failovers: self.failover_count(),
            ..self.primary.stats()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ServerId = ServerId(1);

    #[test]
    fn survives_single_replica_failure() {
        let kds = ReplicatedKds::new(3, KdsConfig::default());
        let dek = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        kds.fail_replica(0);
        assert_eq!(kds.available_count(), 2);
        // Still serving.
        assert!(kds.fetch_dek(S, dek.id()).is_ok());
    }

    #[test]
    fn total_outage_reported() {
        let kds = ReplicatedKds::new(2, KdsConfig::default());
        let dek = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        kds.fail_replica(0);
        kds.fail_replica(1);
        assert!(matches!(
            kds.fetch_dek(S, dek.id()),
            Err(KdsError::Unavailable(_))
        ));
        kds.recover_replica(1);
        assert!(kds.fetch_dek(S, dek.id()).is_ok());
    }

    #[test]
    fn failovers_are_counted() {
        let kds = ReplicatedKds::new(2, KdsConfig::default());
        kds.fail_replica(0);
        for _ in 0..10 {
            let _ = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        }
        // Round-robin hits the dead endpoint about half the time.
        assert!(kds.failover_count() >= 3, "failovers {}", kds.failover_count());
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let _ = ReplicatedKds::new(0, KdsConfig::default());
    }

    #[test]
    fn out_of_range_fail_and_recover_are_noops() {
        let kds = ReplicatedKds::new(2, KdsConfig::default());
        // Indexes past the ensemble must not panic and must not change state.
        kds.fail_replica(7);
        kds.recover_replica(100);
        assert_eq!(kds.available_count(), 2);
        assert!(kds.generate_dek(S, Algorithm::Aes128Ctr).is_ok());
    }

    #[test]
    fn total_outage_is_unavailable_for_every_operation() {
        let kds = ReplicatedKds::new(3, KdsConfig::default());
        let dek = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        kds.fail_all();
        assert_eq!(kds.available_count(), 0);
        assert!(matches!(
            kds.generate_dek(S, Algorithm::Aes128Ctr),
            Err(KdsError::Unavailable(_))
        ));
        assert!(matches!(kds.fetch_dek(S, dek.id()), Err(KdsError::Unavailable(_))));
        assert!(matches!(kds.revoke_dek(dek.id()), Err(KdsError::Unavailable(_))));
        // Outage errors are the retryable kind.
        assert!(kds.fetch_dek(S, dek.id()).unwrap_err().is_retryable());
        kds.recover_all();
        assert_eq!(kds.available_count(), 3);
        assert!(kds.fetch_dek(S, dek.id()).is_ok());
    }

    #[test]
    fn failovers_surface_in_stats() {
        let kds = ReplicatedKds::new(2, KdsConfig::default());
        kds.fail_replica(0);
        for _ in 0..10 {
            let _ = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        }
        assert_eq!(kds.stats().failovers, kds.failover_count());
        assert!(kds.stats().failovers >= 3);
    }
}
