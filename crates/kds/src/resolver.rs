//! The cache-in-front-of-KDS composition the LSM engine uses.
//!
//! `new_dek` is called once per created file (unique DEK per file, §5.2);
//! `resolve` is called when opening a file whose plaintext metadata names a
//! DEK-ID (§5.4). Resolution order is secure cache → KDS, so restarts and
//! co-located instances avoid per-file network trips.
//!
//! The resolver is the engine's only line of defense against KDS outages,
//! so it is hardened the way the paper's availability argument (§5.2)
//! requires: transient [`KdsError::Unavailable`] failures are retried under
//! a [`RetryPolicy`] with capped exponential backoff and deterministic
//! jitter, each attempt is held to a deadline, and when the KDS is fully
//! down the resolver enters *degraded mode* — DEKs already in the secure
//! cache keep resolving (existing files stay readable) while only uncached
//! fetches fail.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shield_core::{perf, Event, EventListener, PerfMetric};
use shield_crypto::{Algorithm, Dek, DekId};

use crate::{CacheError, Kds, KdsError, SecureDekCache, ServerId};

/// Retry/timeout discipline for KDS round trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Cap on the per-retry backoff.
    pub max_backoff: Duration,
    /// Deadline for a single attempt. An attempt whose round trip exceeds
    /// this — even a nominally successful one — counts as a timeout and is
    /// retried, mirroring an RPC client that has already hung up. `None`
    /// disables the deadline.
    pub attempt_timeout: Option<Duration>,
    /// Seed for the deterministic jitter applied to each backoff, so a
    /// given test seed always produces the same retry schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            attempt_timeout: None,
            jitter_seed: 0x5133_1dde_c0de_d00d,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out — the behavior of
    /// the unhardened resolver, useful for tests asserting exact traffic.
    #[must_use]
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Backoff before retry number `retry` (0-based), jittered by `rng`:
    /// the exponential delay is scaled into `[50%, 100%]` so concurrent
    /// resolvers do not retry in lockstep.
    fn backoff(&self, retry: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        let nanos = exp.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + rng.next() % (nanos / 2 + 1))
    }
}

/// Small deterministic RNG for backoff jitter (same generator as the
/// fault-injection env, so seeded runs are reproducible end to end).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Errors from DEK resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverError {
    /// The KDS refused or failed the request.
    Kds(KdsError),
    /// The secure cache failed (I/O or corruption).
    Cache(CacheError),
}

impl fmt::Display for ResolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolverError::Kds(e) => write!(f, "kds: {e}"),
            ResolverError::Cache(e) => write!(f, "cache: {e}"),
        }
    }
}

impl std::error::Error for ResolverError {}

impl From<KdsError> for ResolverError {
    fn from(e: KdsError) -> Self {
        ResolverError::Kds(e)
    }
}

impl From<CacheError> for ResolverError {
    fn from(e: CacheError) -> Self {
        ResolverError::Cache(e)
    }
}

/// Counters describing resolver traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResolverStats {
    /// Resolutions served from the secure cache (network trips saved).
    pub cache_hits: u64,
    /// Resolutions that had to go to the KDS.
    pub cache_misses: u64,
    /// Fresh DEKs generated.
    pub generated: u64,
    /// KDS requests retried after a transient failure.
    pub retries: u64,
    /// Attempts abandoned because they exceeded the per-attempt deadline.
    pub timeouts: u64,
    /// Cache hits served while the KDS was unreachable (degraded mode).
    pub degraded_hits: u64,
    /// Replica failovers observed at the KDS (from [`crate::KdsStats`]).
    pub failovers: u64,
}

/// Resolves DEK-IDs to key material for one server identity.
pub struct DekResolver {
    kds: Arc<dyn Kds>,
    cache: Option<Arc<SecureDekCache>>,
    server: ServerId,
    algorithm: Algorithm,
    policy: RetryPolicy,
    jitter: Mutex<SplitMix64>,
    /// Set after a request exhausts its retries with the KDS unreachable;
    /// cleared by the next successful round trip.
    degraded: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    generated: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    degraded_hits: AtomicU64,
    /// Observability sink for retry/failover/degraded events; set once by
    /// the embedding DB after open.
    events: Mutex<Option<Arc<dyn EventListener>>>,
    /// Last KDS failover count seen, to emit one event per new failover.
    seen_failovers: AtomicU64,
}

impl DekResolver {
    /// Creates a resolver for `server`, generating keys for `algorithm`,
    /// with the default [`RetryPolicy`].
    #[must_use]
    pub fn new(
        kds: Arc<dyn Kds>,
        cache: Option<Arc<SecureDekCache>>,
        server: ServerId,
        algorithm: Algorithm,
    ) -> Self {
        Self::with_policy(kds, cache, server, algorithm, RetryPolicy::default())
    }

    /// Creates a resolver with an explicit retry/timeout policy.
    #[must_use]
    pub fn with_policy(
        kds: Arc<dyn Kds>,
        cache: Option<Arc<SecureDekCache>>,
        server: ServerId,
        algorithm: Algorithm,
        policy: RetryPolicy,
    ) -> Self {
        let jitter = Mutex::new(SplitMix64(policy.jitter_seed));
        DekResolver {
            kds,
            cache,
            server,
            algorithm,
            policy,
            jitter,
            degraded: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generated: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            degraded_hits: AtomicU64::new(0),
            events: Mutex::new(None),
            seen_failovers: AtomicU64::new(0),
        }
    }

    /// Registers the observability listener events are reported through
    /// (KDS retries, failovers, degraded-mode transitions).
    pub fn set_event_listener(&self, listener: Arc<dyn EventListener>) {
        *self.events.lock() = Some(listener);
    }

    fn emit(&self, event: Event) {
        let listener = self.events.lock().clone();
        if let Some(l) = listener {
            l.on_event(&event);
        }
    }

    /// Emits one [`Event::KdsFailover`] if the backing KDS reports more
    /// failovers than last observed.
    fn check_failovers(&self) {
        let now = self.kds.stats().failovers;
        let seen = self.seen_failovers.swap(now, Ordering::Relaxed);
        if now > seen {
            self.emit(Event::KdsFailover { failovers: now });
        }
    }

    /// True while the resolver believes the KDS is unreachable. Cached
    /// DEKs still resolve in this state; uncached fetches fail fast at the
    /// KDS and new-file creation is expected to stall.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// Runs one KDS request under the retry policy: transient failures and
    /// over-deadline attempts are retried with jittered exponential
    /// backoff; policy denials return immediately.
    fn with_retries<T>(&self, mut call: impl FnMut() -> Result<T, KdsError>) -> Result<T, KdsError> {
        let mut attempt = 0u32;
        loop {
            let start = Instant::now();
            let result = call();
            let timed_out = self
                .policy
                .attempt_timeout
                .is_some_and(|limit| start.elapsed() > limit);
            let outcome = match result {
                Ok(_) if timed_out => {
                    // The reply arrived after we would have hung up: a real
                    // RPC client has already abandoned this attempt.
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                    Err(KdsError::Unavailable("attempt deadline exceeded".to_string()))
                }
                other => other,
            };
            match outcome {
                Ok(value) => {
                    if self.degraded.swap(false, Ordering::SeqCst) {
                        self.emit(Event::KdsDegradedExit);
                    }
                    return Ok(value);
                }
                Err(e) if e.is_retryable() && attempt + 1 < self.policy.max_attempts => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.emit(Event::KdsRetry {
                        attempt: u64::from(attempt + 1),
                        message: e.to_string(),
                    });
                    self.check_failovers();
                    let delay = self.policy.backoff(attempt, &mut self.jitter.lock());
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => {
                    if e.is_retryable() {
                        if !self.degraded.swap(true, Ordering::SeqCst) {
                            self.emit(Event::KdsDegradedEnter { message: e.to_string() });
                        }
                        self.check_failovers();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// The server identity this resolver requests under.
    #[must_use]
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The algorithm for newly generated DEKs.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Requests a fresh DEK from the KDS (one per new file) and caches it.
    pub fn new_dek(&self) -> Result<Dek, ResolverError> {
        let t = perf::timer();
        let result = self.new_dek_inner();
        perf::add_elapsed(PerfMetric::DekResolve, t);
        result
    }

    fn new_dek_inner(&self) -> Result<Dek, ResolverError> {
        let dek = self.with_retries(|| self.kds.generate_dek(self.server, self.algorithm))?;
        self.generated.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.insert(dek.clone())?;
        }
        Ok(dek)
    }

    /// Resolves `id` to key material: secure cache first, then the KDS.
    ///
    /// In degraded mode (KDS unreachable) cached DEKs still resolve — this
    /// is the property that keeps existing files readable through a full
    /// KDS outage — and only uncached ids propagate
    /// [`KdsError::Unavailable`].
    pub fn resolve(&self, id: DekId) -> Result<Dek, ResolverError> {
        let t = perf::timer();
        let result = self.resolve_inner(id);
        perf::add_elapsed(PerfMetric::DekResolve, t);
        result
    }

    fn resolve_inner(&self, id: DekId) -> Result<Dek, ResolverError> {
        if let Some(cache) = &self.cache {
            if let Some(dek) = cache.get(id) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.is_degraded() {
                    self.degraded_hits.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(dek);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let dek = self.with_retries(|| self.kds.fetch_dek(self.server, id))?;
        if let Some(cache) = &self.cache {
            cache.insert(dek.clone())?;
        }
        Ok(dek)
    }

    /// Called when a file is deleted: prunes the cache entry and revokes
    /// the DEK at the KDS so it can never be provisioned again.
    pub fn on_file_deleted(&self, id: DekId) -> Result<(), ResolverError> {
        if let Some(cache) = &self.cache {
            cache.remove(id)?;
        }
        // The DEK may already be unknown (e.g. another instance revoked it);
        // that is not an error for the caller.
        match self.with_retries(|| self.kds.revoke_dek(id)) {
            Ok(()) | Err(KdsError::UnknownDek(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Traffic counters. `failovers` is read live from the backing KDS.
    #[must_use]
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            degraded_hits: self.degraded_hits.load(Ordering::Relaxed),
            failovers: self.kds.stats().failovers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KdsConfig, LocalKds};
    use shield_env::MemEnv;

    fn setup(with_cache: bool) -> (Arc<LocalKds>, DekResolver) {
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let cache = with_cache.then(|| {
            Arc::new(
                SecureDekCache::open_with_iterations(
                    Arc::new(MemEnv::new()),
                    "cache",
                    b"pk",
                    4,
                )
                .unwrap(),
            )
        });
        let resolver = DekResolver::new(kds.clone(), cache, ServerId(1), Algorithm::Aes128Ctr);
        (kds, resolver)
    }

    #[test]
    fn new_dek_is_cached() {
        let (_, resolver) = setup(true);
        let dek = resolver.new_dek().unwrap();
        let resolved = resolver.resolve(dek.id()).unwrap();
        assert_eq!(resolved.key_bytes(), dek.key_bytes());
        let s = resolver.stats();
        assert_eq!(s.generated, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 0);
    }

    #[test]
    fn cache_miss_goes_to_kds_then_caches() {
        let (kds, resolver) = setup(true);
        // DEK created by "another server".
        let dek = kds.generate_dek(ServerId(2), Algorithm::Aes128Ctr).unwrap();
        let got = resolver.resolve(dek.id()).unwrap();
        assert_eq!(got.key_bytes(), dek.key_bytes());
        assert_eq!(resolver.stats().cache_misses, 1);
        // Second resolve hits the cache — no new KDS fetch.
        let before = kds.stats().fetched;
        let _ = resolver.resolve(dek.id()).unwrap();
        assert_eq!(kds.stats().fetched, before);
    }

    #[test]
    fn cacheless_resolver_always_fetches() {
        let (kds, resolver) = setup(false);
        let dek = kds.generate_dek(ServerId(2), Algorithm::Aes128Ctr).unwrap();
        let _ = resolver.resolve(dek.id()).unwrap();
        let _ = resolver.resolve(dek.id()).unwrap();
        assert_eq!(kds.stats().fetched, 2);
        assert_eq!(resolver.stats().cache_misses, 2);
    }

    #[test]
    fn file_deletion_revokes_and_prunes() {
        let (kds, resolver) = setup(true);
        let dek = resolver.new_dek().unwrap();
        resolver.on_file_deleted(dek.id()).unwrap();
        assert!(!kds.has_dek(dek.id()));
        // Now unresolvable anywhere.
        assert!(matches!(
            resolver.resolve(dek.id()),
            Err(ResolverError::Kds(KdsError::UnknownDek(_)))
        ));
        // Deleting twice is fine.
        resolver.on_file_deleted(dek.id()).unwrap();
    }

    use crate::ReplicatedKds;
    use std::time::Duration;

    fn cache() -> Arc<SecureDekCache> {
        Arc::new(
            SecureDekCache::open_with_iterations(Arc::new(MemEnv::new()), "cache", b"pk", 4)
                .unwrap(),
        )
    }

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn transient_outage_is_retried_through_recovery() {
        // One replica down out of two: round-robin still reaches the live
        // one, so requests succeed; the dead endpoint only adds failovers.
        let kds = Arc::new(ReplicatedKds::new(2, KdsConfig::default()));
        kds.fail_replica(0);
        let resolver = DekResolver::with_policy(
            kds.clone(),
            Some(cache()),
            ServerId(1),
            Algorithm::Aes128Ctr,
            fast_policy(4),
        );
        for _ in 0..8 {
            resolver.new_dek().unwrap();
        }
        assert!(!resolver.is_degraded());
        assert!(resolver.stats().failovers >= 2, "stats: {:?}", resolver.stats());
    }

    #[test]
    fn exhausted_retries_enter_degraded_mode_and_cached_deks_survive() {
        let kds = Arc::new(ReplicatedKds::new(2, KdsConfig::default()));
        let resolver = DekResolver::with_policy(
            kds.clone(),
            Some(cache()),
            ServerId(1),
            Algorithm::Aes128Ctr,
            fast_policy(3),
        );
        let cached = resolver.new_dek().unwrap();
        let uncached = kds.generate_dek(ServerId(2), Algorithm::Aes128Ctr).unwrap();

        kds.fail_all();
        // Uncached fetch: retried max_attempts times, then Unavailable.
        assert!(matches!(
            resolver.resolve(uncached.id()),
            Err(ResolverError::Kds(KdsError::Unavailable(_)))
        ));
        assert!(resolver.is_degraded());
        assert_eq!(resolver.stats().retries, 2);

        // Cached DEK still resolves: existing files stay readable.
        let got = resolver.resolve(cached.id()).unwrap();
        assert_eq!(got.key_bytes(), cached.key_bytes());
        assert!(resolver.stats().degraded_hits >= 1);

        // Recovery clears degraded mode on the next successful round trip.
        kds.recover_all();
        assert!(resolver.resolve(uncached.id()).is_ok());
        assert!(!resolver.is_degraded());
    }

    #[test]
    fn policy_denials_are_not_retried() {
        let (kds, _) = setup(false);
        let resolver = DekResolver::with_policy(
            kds.clone(),
            None,
            ServerId(1),
            Algorithm::Aes128Ctr,
            fast_policy(5),
        );
        // Unknown DEK: a hard denial; exactly one fetch must reach the KDS.
        let before = kds.stats();
        assert!(matches!(
            resolver.resolve(shield_crypto::DekId(4242)),
            Err(ResolverError::Kds(KdsError::UnknownDek(_)))
        ));
        assert_eq!(kds.stats().denied, before.denied + 1);
        assert_eq!(resolver.stats().retries, 0);
        assert!(!resolver.is_degraded());
    }

    #[test]
    fn slow_kds_attempts_time_out_and_count() {
        let kds = Arc::new(LocalKds::new(KdsConfig {
            fetch_latency: Duration::from_millis(5),
            ..KdsConfig::default()
        }));
        let dek = kds.generate_dek(ServerId(2), Algorithm::Aes128Ctr).unwrap();
        let policy = RetryPolicy {
            attempt_timeout: Some(Duration::from_millis(1)),
            ..fast_policy(3)
        };
        let resolver =
            DekResolver::with_policy(kds.clone(), None, ServerId(1), Algorithm::Aes128Ctr, policy);
        // Every attempt exceeds its 1 ms deadline against a 5 ms KDS.
        assert!(matches!(
            resolver.resolve(dek.id()),
            Err(ResolverError::Kds(KdsError::Unavailable(_)))
        ));
        let s = resolver.stats();
        assert_eq!(s.timeouts, 3);
        assert_eq!(s.retries, 2);
        assert!(resolver.is_degraded());

        // Raising the deadline past the latency recovers.
        let relaxed = DekResolver::with_policy(
            kds,
            None,
            ServerId(1),
            Algorithm::Aes128Ctr,
            RetryPolicy {
                attempt_timeout: Some(Duration::from_secs(5)),
                ..fast_policy(3)
            },
        );
        assert!(relaxed.resolve(dek.id()).is_ok());
        assert_eq!(relaxed.stats().timeouts, 0);
    }

    #[test]
    fn jittered_backoff_is_deterministic_per_seed_and_capped() {
        let policy = RetryPolicy::default();
        let mut a = SplitMix64(policy.jitter_seed);
        let mut b = SplitMix64(policy.jitter_seed);
        for retry in 0..20 {
            let da = policy.backoff(retry, &mut a);
            let db = policy.backoff(retry, &mut b);
            assert_eq!(da, db, "same seed must give the same schedule");
            assert!(da <= policy.max_backoff);
            assert!(da >= policy.max_backoff / 2 || retry < 7);
        }
    }

    #[test]
    fn no_retries_policy_fails_fast() {
        let kds = Arc::new(ReplicatedKds::new(1, KdsConfig::default()));
        kds.fail_all();
        let resolver = DekResolver::with_policy(
            kds,
            None,
            ServerId(1),
            Algorithm::Aes128Ctr,
            RetryPolicy::no_retries(),
        );
        assert!(resolver.new_dek().is_err());
        assert_eq!(resolver.stats().retries, 0);
    }
}
