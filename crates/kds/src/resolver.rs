//! The cache-in-front-of-KDS composition the LSM engine uses.
//!
//! `new_dek` is called once per created file (unique DEK per file, §5.2);
//! `resolve` is called when opening a file whose plaintext metadata names a
//! DEK-ID (§5.4). Resolution order is secure cache → KDS, so restarts and
//! co-located instances avoid per-file network trips.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shield_crypto::{Algorithm, Dek, DekId};

use crate::{CacheError, Kds, KdsError, SecureDekCache, ServerId};

/// Errors from DEK resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolverError {
    /// The KDS refused or failed the request.
    Kds(KdsError),
    /// The secure cache failed (I/O or corruption).
    Cache(CacheError),
}

impl fmt::Display for ResolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolverError::Kds(e) => write!(f, "kds: {e}"),
            ResolverError::Cache(e) => write!(f, "cache: {e}"),
        }
    }
}

impl std::error::Error for ResolverError {}

impl From<KdsError> for ResolverError {
    fn from(e: KdsError) -> Self {
        ResolverError::Kds(e)
    }
}

impl From<CacheError> for ResolverError {
    fn from(e: CacheError) -> Self {
        ResolverError::Cache(e)
    }
}

/// Counters describing resolver traffic.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResolverStats {
    /// Resolutions served from the secure cache (network trips saved).
    pub cache_hits: u64,
    /// Resolutions that had to go to the KDS.
    pub cache_misses: u64,
    /// Fresh DEKs generated.
    pub generated: u64,
}

/// Resolves DEK-IDs to key material for one server identity.
pub struct DekResolver {
    kds: Arc<dyn Kds>,
    cache: Option<Arc<SecureDekCache>>,
    server: ServerId,
    algorithm: Algorithm,
    hits: AtomicU64,
    misses: AtomicU64,
    generated: AtomicU64,
}

impl DekResolver {
    /// Creates a resolver for `server`, generating keys for `algorithm`.
    #[must_use]
    pub fn new(
        kds: Arc<dyn Kds>,
        cache: Option<Arc<SecureDekCache>>,
        server: ServerId,
        algorithm: Algorithm,
    ) -> Self {
        DekResolver {
            kds,
            cache,
            server,
            algorithm,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generated: AtomicU64::new(0),
        }
    }

    /// The server identity this resolver requests under.
    #[must_use]
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The algorithm for newly generated DEKs.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Requests a fresh DEK from the KDS (one per new file) and caches it.
    pub fn new_dek(&self) -> Result<Dek, ResolverError> {
        let dek = self.kds.generate_dek(self.server, self.algorithm)?;
        self.generated.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.insert(dek.clone())?;
        }
        Ok(dek)
    }

    /// Resolves `id` to key material: secure cache first, then the KDS.
    pub fn resolve(&self, id: DekId) -> Result<Dek, ResolverError> {
        if let Some(cache) = &self.cache {
            if let Some(dek) = cache.get(id) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(dek);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let dek = self.kds.fetch_dek(self.server, id)?;
        if let Some(cache) = &self.cache {
            cache.insert(dek.clone())?;
        }
        Ok(dek)
    }

    /// Called when a file is deleted: prunes the cache entry and revokes
    /// the DEK at the KDS so it can never be provisioned again.
    pub fn on_file_deleted(&self, id: DekId) -> Result<(), ResolverError> {
        if let Some(cache) = &self.cache {
            cache.remove(id)?;
        }
        // The DEK may already be unknown (e.g. another instance revoked it);
        // that is not an error for the caller.
        match self.kds.revoke_dek(id) {
            Ok(()) | Err(KdsError::UnknownDek(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Traffic counters.
    #[must_use]
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            generated: self.generated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KdsConfig, LocalKds};
    use shield_env::MemEnv;

    fn setup(with_cache: bool) -> (Arc<LocalKds>, DekResolver) {
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let cache = with_cache.then(|| {
            Arc::new(
                SecureDekCache::open_with_iterations(
                    Arc::new(MemEnv::new()),
                    "cache",
                    b"pk",
                    4,
                )
                .unwrap(),
            )
        });
        let resolver = DekResolver::new(kds.clone(), cache, ServerId(1), Algorithm::Aes128Ctr);
        (kds, resolver)
    }

    #[test]
    fn new_dek_is_cached() {
        let (_, resolver) = setup(true);
        let dek = resolver.new_dek().unwrap();
        let resolved = resolver.resolve(dek.id()).unwrap();
        assert_eq!(resolved.key_bytes(), dek.key_bytes());
        let s = resolver.stats();
        assert_eq!(s.generated, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 0);
    }

    #[test]
    fn cache_miss_goes_to_kds_then_caches() {
        let (kds, resolver) = setup(true);
        // DEK created by "another server".
        let dek = kds.generate_dek(ServerId(2), Algorithm::Aes128Ctr).unwrap();
        let got = resolver.resolve(dek.id()).unwrap();
        assert_eq!(got.key_bytes(), dek.key_bytes());
        assert_eq!(resolver.stats().cache_misses, 1);
        // Second resolve hits the cache — no new KDS fetch.
        let before = kds.stats().fetched;
        let _ = resolver.resolve(dek.id()).unwrap();
        assert_eq!(kds.stats().fetched, before);
    }

    #[test]
    fn cacheless_resolver_always_fetches() {
        let (kds, resolver) = setup(false);
        let dek = kds.generate_dek(ServerId(2), Algorithm::Aes128Ctr).unwrap();
        let _ = resolver.resolve(dek.id()).unwrap();
        let _ = resolver.resolve(dek.id()).unwrap();
        assert_eq!(kds.stats().fetched, 2);
        assert_eq!(resolver.stats().cache_misses, 2);
    }

    #[test]
    fn file_deletion_revokes_and_prunes() {
        let (kds, resolver) = setup(true);
        let dek = resolver.new_dek().unwrap();
        resolver.on_file_deleted(dek.id()).unwrap();
        assert!(!kds.has_dek(dek.id()));
        // Now unresolvable anywhere.
        assert!(matches!(
            resolver.resolve(dek.id()),
            Err(ResolverError::Kds(KdsError::UnknownDek(_)))
        ));
        // Deleting twice is fine.
        resolver.on_file_deleted(dek.id()).unwrap();
    }
}
