//! A single-node KDS with configurable latency and provisioning policy.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use shield_crypto::{Algorithm, Dek, DekId};

use crate::{Kds, KdsError, KdsResult, KdsStats, ServerId};

/// How many times a DEK may be handed out (paper §5.4's second safeguard).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProvisioningPolicy {
    /// No limit — suitable for trusted monolithic deployments.
    #[default]
    Unlimited,
    /// Each server may fetch a given DEK at most once; the secure local
    /// cache makes re-fetches unnecessary for honest servers.
    OncePerServer,
    /// A DEK may be fetched at most once in total after generation. An
    /// attacker who learns a DEK-ID from plaintext metadata cannot replay
    /// the request once the legitimate consumer has it.
    OnceGlobal,
}

/// Configuration for [`LocalKds`].
#[derive(Clone, Debug)]
pub struct KdsConfig {
    /// Simulated time to generate and send a DEK. The paper measures
    /// SSToolkit at ~2750 µs per key (§6.3); tests default to zero.
    pub generation_latency: Duration,
    /// Simulated time to serve a fetch request.
    pub fetch_latency: Duration,
    /// Provisioning policy.
    pub provisioning: ProvisioningPolicy,
    /// When true, unknown servers are implicitly authorized (convenient
    /// default for monolithic tests); when false, only servers passed to
    /// [`Kds::authorize_server`] may issue requests.
    pub open_enrollment: bool,
}

impl Default for KdsConfig {
    fn default() -> Self {
        KdsConfig {
            generation_latency: Duration::ZERO,
            fetch_latency: Duration::ZERO,
            provisioning: ProvisioningPolicy::Unlimited,
            open_enrollment: true,
        }
    }
}

impl KdsConfig {
    /// The profile of the paper's SSToolkit deployment: ~2750 µs per
    /// generated key, ~500 µs (one intra-DC round trip) per fetch.
    #[must_use]
    pub fn sstoolkit_like() -> Self {
        KdsConfig {
            generation_latency: Duration::from_micros(2750),
            fetch_latency: Duration::from_micros(500),
            provisioning: ProvisioningPolicy::Unlimited,
            open_enrollment: true,
        }
    }
}

#[derive(Default)]
struct Store {
    keys: HashMap<DekId, Dek>,
    authorized: HashSet<ServerId>,
    revoked: HashSet<ServerId>,
    /// (dek, server) pairs already provisioned, for the one-time policies.
    provisioned: HashSet<(DekId, ServerId)>,
    /// DEKs fetched at least once, for `OnceGlobal`.
    fetched_once: HashSet<DekId>,
}

/// An in-process KDS standing in for the paper's SSToolkit deployment.
pub struct LocalKds {
    config: Mutex<KdsConfig>,
    store: Mutex<Store>,
    generated: AtomicU64,
    fetched: AtomicU64,
    denied: AtomicU64,
}

impl Default for LocalKds {
    fn default() -> Self {
        Self::new(KdsConfig::default())
    }
}

impl LocalKds {
    /// Creates a KDS with the given configuration.
    #[must_use]
    pub fn new(config: KdsConfig) -> Self {
        LocalKds {
            config: Mutex::new(config),
            store: Mutex::new(Store::default()),
            generated: AtomicU64::new(0),
            fetched: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Replaces the latency profile at runtime (used by the Fig. 16 sweep).
    pub fn set_latencies(&self, generation: Duration, fetch: Duration) {
        let mut cfg = self.config.lock();
        cfg.generation_latency = generation;
        cfg.fetch_latency = fetch;
    }

    /// Number of live (non-revoked) DEKs currently stored.
    #[must_use]
    pub fn live_dek_count(&self) -> usize {
        self.store.lock().keys.len()
    }

    /// True if the DEK with this id is still stored.
    #[must_use]
    pub fn has_dek(&self, id: DekId) -> bool {
        self.store.lock().keys.contains_key(&id)
    }

    fn check_authorized(&self, store: &Store, server: ServerId) -> KdsResult<()> {
        if store.revoked.contains(&server) {
            return Err(KdsError::Unauthorized(server));
        }
        let open = self.config.lock().open_enrollment;
        if open || store.authorized.contains(&server) {
            Ok(())
        } else {
            Err(KdsError::Unauthorized(server))
        }
    }
}

impl Kds for LocalKds {
    fn generate_dek(&self, requester: ServerId, algorithm: Algorithm) -> KdsResult<Dek> {
        let latency = self.config.lock().generation_latency;
        {
            let mut store = self.store.lock();
            self.check_authorized(&store, requester).inspect_err(|_| {
                self.denied.fetch_add(1, Ordering::Relaxed);
            })?;
            let dek = Dek::generate(algorithm);
            store.keys.insert(dek.id(), dek.clone());
            // Generation counts as the first provisioning to the requester.
            store.provisioned.insert((dek.id(), requester));
            self.generated.fetch_add(1, Ordering::Relaxed);
            drop(store);
            if !latency.is_zero() {
                std::thread::sleep(latency);
            }
            Ok(dek)
        }
    }

    fn fetch_dek(&self, requester: ServerId, id: DekId) -> KdsResult<Dek> {
        let (latency, policy) = {
            let cfg = self.config.lock();
            (cfg.fetch_latency, cfg.provisioning)
        };
        let dek = {
            let mut store = self.store.lock();
            self.check_authorized(&store, requester).inspect_err(|_| {
                self.denied.fetch_add(1, Ordering::Relaxed);
            })?;
            let Some(dek) = store.keys.get(&id).cloned() else {
                self.denied.fetch_add(1, Ordering::Relaxed);
                return Err(KdsError::UnknownDek(id));
            };
            match policy {
                ProvisioningPolicy::Unlimited => {}
                ProvisioningPolicy::OncePerServer => {
                    if !store.provisioned.insert((id, requester)) {
                        self.denied.fetch_add(1, Ordering::Relaxed);
                        return Err(KdsError::AlreadyProvisioned(id));
                    }
                }
                ProvisioningPolicy::OnceGlobal => {
                    if store.fetched_once.contains(&id) {
                        self.denied.fetch_add(1, Ordering::Relaxed);
                        return Err(KdsError::AlreadyProvisioned(id));
                    }
                    store.fetched_once.insert(id);
                }
            }
            self.fetched.fetch_add(1, Ordering::Relaxed);
            dek
        };
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
        Ok(dek)
    }

    fn revoke_dek(&self, id: DekId) -> KdsResult<()> {
        let mut store = self.store.lock();
        store
            .keys
            .remove(&id)
            .map(|_| ())
            .ok_or(KdsError::UnknownDek(id))
    }

    fn authorize_server(&self, server: ServerId) {
        let mut store = self.store.lock();
        store.revoked.remove(&server);
        store.authorized.insert(server);
    }

    fn revoke_server(&self, server: ServerId) {
        let mut store = self.store.lock();
        store.authorized.remove(&server);
        store.revoked.insert(server);
    }

    fn stats(&self) -> KdsStats {
        KdsStats {
            generated: self.generated.load(Ordering::Relaxed),
            fetched: self.fetched.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
            failovers: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S1: ServerId = ServerId(1);
    const S2: ServerId = ServerId(2);

    #[test]
    fn generate_and_fetch() {
        let kds = LocalKds::default();
        let dek = kds.generate_dek(S1, Algorithm::Aes128Ctr).unwrap();
        let fetched = kds.fetch_dek(S2, dek.id()).unwrap();
        assert_eq!(fetched.key_bytes(), dek.key_bytes());
        assert_eq!(kds.stats().generated, 1);
        assert_eq!(kds.stats().fetched, 1);
    }

    #[test]
    fn unknown_dek_denied() {
        let kds = LocalKds::default();
        assert_eq!(
            kds.fetch_dek(S1, DekId(42)),
            Err(KdsError::UnknownDek(DekId(42)))
        );
        assert_eq!(kds.stats().denied, 1);
    }

    #[test]
    fn closed_enrollment_requires_authorization() {
        let kds = LocalKds::new(KdsConfig { open_enrollment: false, ..KdsConfig::default() });
        assert!(matches!(
            kds.generate_dek(S1, Algorithm::Aes128Ctr),
            Err(KdsError::Unauthorized(_))
        ));
        kds.authorize_server(S1);
        assert!(kds.generate_dek(S1, Algorithm::Aes128Ctr).is_ok());
    }

    #[test]
    fn revoked_server_locked_out() {
        let kds = LocalKds::default();
        let dek = kds.generate_dek(S1, Algorithm::Aes128Ctr).unwrap();
        kds.revoke_server(S2);
        assert_eq!(kds.fetch_dek(S2, dek.id()), Err(KdsError::Unauthorized(S2)));
        // Re-authorizing restores access.
        kds.authorize_server(S2);
        assert!(kds.fetch_dek(S2, dek.id()).is_ok());
    }

    #[test]
    fn once_per_server_policy() {
        let kds = LocalKds::new(KdsConfig {
            provisioning: ProvisioningPolicy::OncePerServer,
            ..KdsConfig::default()
        });
        let dek = kds.generate_dek(S1, Algorithm::Aes128Ctr).unwrap();
        // Generator already got it once; a re-fetch is denied.
        assert_eq!(
            kds.fetch_dek(S1, dek.id()),
            Err(KdsError::AlreadyProvisioned(dek.id()))
        );
        // A different server gets exactly one shot.
        assert!(kds.fetch_dek(S2, dek.id()).is_ok());
        assert_eq!(
            kds.fetch_dek(S2, dek.id()),
            Err(KdsError::AlreadyProvisioned(dek.id()))
        );
    }

    #[test]
    fn once_global_policy() {
        let kds = LocalKds::new(KdsConfig {
            provisioning: ProvisioningPolicy::OnceGlobal,
            ..KdsConfig::default()
        });
        let dek = kds.generate_dek(S1, Algorithm::Aes128Ctr).unwrap();
        assert!(kds.fetch_dek(S2, dek.id()).is_ok());
        // Any further fetch, by anyone, is denied — the attacker-replay case.
        assert_eq!(
            kds.fetch_dek(ServerId(99), dek.id()),
            Err(KdsError::AlreadyProvisioned(dek.id()))
        );
    }

    #[test]
    fn revoke_dek_removes_it() {
        let kds = LocalKds::default();
        let dek = kds.generate_dek(S1, Algorithm::Aes128Ctr).unwrap();
        assert!(kds.has_dek(dek.id()));
        kds.revoke_dek(dek.id()).unwrap();
        assert!(!kds.has_dek(dek.id()));
        assert_eq!(kds.fetch_dek(S1, dek.id()), Err(KdsError::UnknownDek(dek.id())));
        assert_eq!(kds.revoke_dek(dek.id()), Err(KdsError::UnknownDek(dek.id())));
    }

    #[test]
    fn generation_latency_is_charged() {
        let kds = LocalKds::new(KdsConfig {
            generation_latency: Duration::from_millis(5),
            ..KdsConfig::default()
        });
        let start = std::time::Instant::now();
        kds.generate_dek(S1, Algorithm::Aes128Ctr).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
