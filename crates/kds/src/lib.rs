//! Key Distribution Service (KDS) and secure DEK caching for SHIELD.
//!
//! The paper integrates with SSToolkit, an external decentralized KDS that
//! issues each Data Encryption Key (DEK) under a unique identifier and
//! enforces server authorization (§5.2, §5.4, §6.1). This crate reproduces
//! that contract in-process:
//!
//! * [`Kds`] — the service trait: generate a fresh DEK, fetch an existing
//!   DEK by [`DekId`], authorize/revoke servers.
//! * [`LocalKds`] — a single-node KDS with configurable generation/fetch
//!   latency (the paper measures ~2750 µs per issued key) and a pluggable
//!   [`ProvisioningPolicy`] including the one-time provisioning safeguard.
//! * [`ReplicatedKds`] — a decentralized ensemble of replicas with failure
//!   injection, modeling the high-availability requirement of §5.2.
//! * [`DerivedKds`] — the "hierarchical derivation" policy of §5.4: DEKs
//!   derived from a master key via HKDF-style expansion, so replicas need
//!   almost no shared state.
//! * [`SecureDekCache`] — the on-disk DEK cache of §5.2: entries wrapped
//!   with a PBKDF2(passkey)-derived key and authenticated with HMAC-SHA-256.
//!   The passkey is never persisted; the cache is shared by instances on the
//!   same server and pruned when files (and thus their DEKs) die.
//! * [`DekResolver`] — cache-in-front-of-KDS composition used by the engine:
//!   `resolve` consults the cache first and only then pays the network trip.

pub mod cache;
pub mod derived;
pub mod local;
pub mod replicated;
pub mod resolver;

use std::fmt;

pub use cache::{CacheError, SecureDekCache};
pub use derived::DerivedKds;
pub use local::{KdsConfig, LocalKds, ProvisioningPolicy};
pub use replicated::ReplicatedKds;
pub use resolver::{DekResolver, ResolverError, ResolverStats, RetryPolicy};

use shield_crypto::{Algorithm, Dek, DekId};

/// Identity of a server (compute node, storage node, compaction worker…)
/// in the eyes of the KDS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// Errors returned by KDS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KdsError {
    /// The requesting server is not authorized.
    Unauthorized(ServerId),
    /// No DEK with this identifier exists (or it was revoked).
    UnknownDek(DekId),
    /// One-time provisioning: this DEK has already been handed out.
    AlreadyProvisioned(DekId),
    /// The service (or every replica) is unavailable.
    Unavailable(String),
}

impl fmt::Display for KdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KdsError::Unauthorized(s) => write!(f, "{s} is not authorized"),
            KdsError::UnknownDek(id) => write!(f, "unknown DEK {id}"),
            KdsError::AlreadyProvisioned(id) => {
                write!(f, "DEK {id} already provisioned (one-time policy)")
            }
            KdsError::Unavailable(m) => write!(f, "KDS unavailable: {m}"),
        }
    }
}

impl std::error::Error for KdsError {}

impl KdsError {
    /// Whether retrying the same request could succeed.
    ///
    /// Only [`KdsError::Unavailable`] is transient (a replica outage or a
    /// timed-out round trip); authorization and provisioning denials are
    /// policy decisions that retrying cannot change, and an unknown DEK-ID
    /// stays unknown.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, KdsError::Unavailable(_))
    }
}

/// Result alias for KDS operations.
pub type KdsResult<T> = Result<T, KdsError>;

/// Counters describing KDS traffic, used by the evaluation harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KdsStats {
    /// DEKs generated.
    pub generated: u64,
    /// DEK fetch requests served.
    pub fetched: u64,
    /// Requests denied (authorization or provisioning policy).
    pub denied: u64,
    /// Failover events (requests re-routed past a down replica). Always
    /// zero for single-node implementations.
    pub failovers: u64,
}

/// The Key Distribution Service contract (paper §5.2):
/// decentralized-capable, DEK-ID addressed, authorization-enforcing.
pub trait Kds: Send + Sync {
    /// Issues a fresh DEK for `algorithm` to `requester`.
    fn generate_dek(&self, requester: ServerId, algorithm: Algorithm) -> KdsResult<Dek>;
    /// Resolves a DEK-ID (read from file metadata) to key material.
    fn fetch_dek(&self, requester: ServerId, id: DekId) -> KdsResult<Dek>;
    /// Deletes a DEK, e.g. when the file it protected was compacted away.
    fn revoke_dek(&self, id: DekId) -> KdsResult<()>;
    /// Grants `server` the right to request DEKs.
    fn authorize_server(&self, server: ServerId);
    /// Revokes `server`'s access (the breached-server response of §5.4).
    fn revoke_server(&self, server: ServerId);
    /// Traffic counters.
    fn stats(&self) -> KdsStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_display() {
        assert_eq!(ServerId(7).to_string(), "server-7");
    }

    #[test]
    fn error_display() {
        let e = KdsError::Unauthorized(ServerId(3));
        assert!(e.to_string().contains("server-3"));
        let e = KdsError::AlreadyProvisioned(DekId(1));
        assert!(e.to_string().contains("one-time"));
    }
}
