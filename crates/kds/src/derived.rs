//! A hierarchical-derivation KDS (the "hierarchical derivation" policy of
//! paper §5.4): instead of storing every DEK, the service holds one master
//! key and *derives* each DEK from the DEK-ID with HKDF-style expansion.
//!
//! Properties relative to [`crate::LocalKds`]:
//!
//! * **stateless key material** — replicas need only the master key, so
//!   "decentralized" is trivial: every replica can answer every fetch;
//! * **no per-key storage** — revoking a single DEK requires a denylist
//!   (kept here), while rotating the *master* key invalidates everything;
//! * identical interface — SHIELD is agnostic to the policy as long as a
//!   DEK-ID resolves to a key (§5.4), which this demonstrates.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use shield_crypto::{hmac_sha256, Algorithm, Dek, DekId};

use crate::{Kds, KdsError, KdsResult, KdsStats, ServerId};

/// A KDS that derives DEKs from a master key: `DEK = HKDF(master, DEK-ID)`.
pub struct DerivedKds {
    master: [u8; 32],
    state: Mutex<State>,
    generated: AtomicU64,
    fetched: AtomicU64,
    denied: AtomicU64,
}

#[derive(Default)]
struct State {
    /// Ids issued by `generate_dek`, with the algorithm each was issued
    /// for (fetches of underived ids are denied, so an attacker cannot
    /// mint valid DEK-IDs). This tiny map is the only replicated state.
    issued: HashMap<DekId, Algorithm>,
    /// Individually revoked DEKs.
    revoked_deks: HashSet<DekId>,
    revoked_servers: HashSet<ServerId>,
}

impl DerivedKds {
    /// Creates a service deriving from `master`.
    #[must_use]
    pub fn new(master: [u8; 32]) -> Self {
        DerivedKds {
            master,
            state: Mutex::new(State::default()),
            generated: AtomicU64::new(0),
            fetched: AtomicU64::new(0),
            denied: AtomicU64::new(0),
        }
    }

    /// Creates a service with a random master key.
    #[must_use]
    pub fn random() -> Self {
        let mut master = [0u8; 32];
        shield_crypto::secure_random(&mut master);
        Self::new(master)
    }

    /// Derives the key material for `id` (deterministic in the master).
    fn derive(&self, id: DekId, algorithm: Algorithm) -> Dek {
        // HKDF-expand-like: one HMAC block is enough for ≤32-byte keys.
        let mut info = Vec::with_capacity(24);
        info.extend_from_slice(b"shield-dek");
        info.extend_from_slice(&id.to_bytes());
        info.push(algorithm.tag());
        let okm = hmac_sha256(&self.master, &info);
        Dek::from_parts(id, algorithm, okm[..algorithm.key_len()].to_vec())
    }

    fn check_server(&self, state: &State, server: ServerId) -> KdsResult<()> {
        if state.revoked_servers.contains(&server) {
            self.denied.fetch_add(1, Ordering::Relaxed);
            return Err(KdsError::Unauthorized(server));
        }
        Ok(())
    }
}

impl Kds for DerivedKds {
    fn generate_dek(&self, requester: ServerId, algorithm: Algorithm) -> KdsResult<Dek> {
        let mut state = self.state.lock();
        self.check_server(&state, requester)?;
        let id = DekId::random();
        state.issued.insert(id, algorithm);
        self.generated.fetch_add(1, Ordering::Relaxed);
        Ok(self.derive(id, algorithm))
    }

    fn fetch_dek(&self, requester: ServerId, id: DekId) -> KdsResult<Dek> {
        let state = self.state.lock();
        self.check_server(&state, requester)?;
        let Some(&algorithm) = state.issued.get(&id) else {
            self.denied.fetch_add(1, Ordering::Relaxed);
            return Err(KdsError::UnknownDek(id));
        };
        if state.revoked_deks.contains(&id) {
            self.denied.fetch_add(1, Ordering::Relaxed);
            return Err(KdsError::UnknownDek(id));
        }
        self.fetched.fetch_add(1, Ordering::Relaxed);
        Ok(self.derive(id, algorithm))
    }

    fn revoke_dek(&self, id: DekId) -> KdsResult<()> {
        let mut state = self.state.lock();
        if !state.issued.contains_key(&id) || !state.revoked_deks.insert(id) {
            return Err(KdsError::UnknownDek(id));
        }
        Ok(())
    }

    fn authorize_server(&self, server: ServerId) {
        self.state.lock().revoked_servers.remove(&server);
    }

    fn revoke_server(&self, server: ServerId) {
        self.state.lock().revoked_servers.insert(server);
    }

    fn stats(&self) -> KdsStats {
        KdsStats {
            generated: self.generated.load(Ordering::Relaxed),
            fetched: self.fetched.load(Ordering::Relaxed),
            denied: self.denied.load(Ordering::Relaxed),
            failovers: 0,
        }
    }
}

impl DerivedKds {
    /// Fetches a DEK for an explicit algorithm (useful when a replica has
    /// the id but not yet the issued-set metadata; SHIELD's file headers
    /// carry the algorithm tag).
    pub fn fetch_dek_for(
        &self,
        requester: ServerId,
        id: DekId,
        algorithm: Algorithm,
    ) -> KdsResult<Dek> {
        {
            let state = self.state.lock();
            self.check_server(&state, requester)?;
            if !state.issued.contains_key(&id) || state.revoked_deks.contains(&id) {
                self.denied.fetch_add(1, Ordering::Relaxed);
                return Err(KdsError::UnknownDek(id));
            }
        }
        self.fetched.fetch_add(1, Ordering::Relaxed);
        Ok(self.derive(id, algorithm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ServerId = ServerId(1);

    #[test]
    fn derivation_is_deterministic_and_unique() {
        let kds = DerivedKds::new([7u8; 32]);
        let a = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        let again = kds.fetch_dek(S, a.id()).unwrap();
        assert_eq!(a.key_bytes(), again.key_bytes());
        let b = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        assert_ne!(a.key_bytes(), b.key_bytes());
    }

    #[test]
    fn replicas_with_same_master_agree() {
        let master = [9u8; 32];
        let a = DerivedKds::new(master);
        let b = DerivedKds::new(master);
        let dek = a.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        // Replica b can serve the same id once it knows it was issued —
        // model replication of the (tiny) issued-set.
        b.state.lock().issued.insert(dek.id(), Algorithm::Aes128Ctr);
        let from_b = b.fetch_dek(S, dek.id()).unwrap();
        assert_eq!(dek.key_bytes(), from_b.key_bytes());
    }

    #[test]
    fn unissued_ids_are_rejected() {
        let kds = DerivedKds::random();
        // An attacker cannot mint a valid DEK-ID.
        assert!(matches!(
            kds.fetch_dek(S, DekId(12345)),
            Err(KdsError::UnknownDek(_))
        ));
        assert_eq!(kds.stats().denied, 1);
    }

    #[test]
    fn revocation_works_per_dek_and_per_server() {
        let kds = DerivedKds::random();
        let dek = kds.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        kds.revoke_dek(dek.id()).unwrap();
        assert!(kds.fetch_dek(S, dek.id()).is_err());
        assert!(kds.revoke_dek(dek.id()).is_err(), "double revoke");
        kds.revoke_server(S);
        assert!(matches!(
            kds.generate_dek(S, Algorithm::Aes128Ctr),
            Err(KdsError::Unauthorized(_))
        ));
        kds.authorize_server(S);
        assert!(kds.generate_dek(S, Algorithm::Aes128Ctr).is_ok());
    }

    #[test]
    fn different_masters_differ() {
        let a = DerivedKds::new([1u8; 32]);
        let b = DerivedKds::new([2u8; 32]);
        let dek = a.generate_dek(S, Algorithm::Aes128Ctr).unwrap();
        b.state.lock().issued.insert(dek.id(), Algorithm::Aes128Ctr);
        let other = b.fetch_dek(S, dek.id()).unwrap();
        assert_ne!(dek.key_bytes(), other.key_bytes());
    }

    #[test]
    fn chacha_keys_derive_with_full_length() {
        let kds = DerivedKds::random();
        let dek = kds.generate_dek(S, Algorithm::ChaCha20).unwrap();
        assert_eq!(dek.key_bytes().len(), 32);
        let fetched = kds.fetch_dek_for(S, dek.id(), Algorithm::ChaCha20).unwrap();
        assert_eq!(dek.key_bytes(), fetched.key_bytes());
    }

    /// End-to-end with the engine: SHIELD over a DerivedKds.
    #[test]
    fn works_as_shield_backend() {
        use crate::DekResolver;
        use std::sync::Arc;

        let kds = Arc::new(DerivedKds::random());
        let resolver = DekResolver::new(
            kds.clone() as Arc<dyn Kds>,
            None,
            S,
            Algorithm::Aes128Ctr,
        );
        let dek = resolver.new_dek().unwrap();
        let resolved = resolver.resolve(dek.id()).unwrap();
        assert_eq!(dek.key_bytes(), resolved.key_bytes());
    }
}
