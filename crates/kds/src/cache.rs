//! The secure local DEK cache (paper §5.2, "On-Demand Key Retrieval with
//! Secure Caching").
//!
//! DEKs retrieved from the KDS are persisted to a local file so that a
//! database restart does not need one network round trip per live file.
//! Each entry is wrapped with AES-128-CTR under a key derived from the
//! server passkey via PBKDF2, and authenticated with HMAC-SHA-256, so the
//! cache file is useless without the passkey and tampering is detected.
//! The passkey itself is never written to disk. Multiple LSM-KVS instances
//! on the same server may share one cache (ZippyDB-style co-location), and
//! entries are pruned when their file — and therefore their DEK — dies.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use shield_crypto::{
    constant_time_eq, hmac_sha256, pbkdf2_hmac_sha256, Algorithm, CipherContext, Dek, DekId,
    NONCE_LEN,
};
use shield_env::{Env, EnvError, FileKind};

const MAGIC: &[u8; 8] = b"SHLDDEKC";
const VERSION: u32 = 1;
/// Default PBKDF2 iteration count. Kept modest because the derivation runs
/// once per process start; production deployments would raise it.
pub const DEFAULT_PBKDF_ITERATIONS: u32 = 2048;
/// Upper bound accepted for the iteration count stored in a cache file.
/// The field is read before any authentication, so without a cap a
/// single flipped bit could demand billions of PBKDF2 rounds (or zero,
/// which the KDF rejects) from an honest opener.
pub const MAX_PBKDF_ITERATIONS: u32 = 1 << 20;

/// Errors from the secure cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The passkey does not match the one the cache was created with.
    BadPasskey,
    /// The cache file is structurally invalid or an entry failed its MAC.
    Corrupt(String),
    /// Underlying storage failure.
    Env(EnvError),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::BadPasskey => write!(f, "secure cache: wrong passkey"),
            CacheError::Corrupt(m) => write!(f, "secure cache corrupt: {m}"),
            CacheError::Env(e) => write!(f, "secure cache io: {e}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<EnvError> for CacheError {
    fn from(e: EnvError) -> Self {
        CacheError::Env(e)
    }
}

struct Inner {
    entries: HashMap<DekId, Dek>,
}

/// An on-disk DEK cache encrypted under a passkey-derived key.
pub struct SecureDekCache {
    env: Arc<dyn Env>,
    path: String,
    salt: [u8; 16],
    iterations: u32,
    enc_key: Vec<u8>,
    mac_key: Vec<u8>,
    inner: Mutex<Inner>,
}

impl fmt::Debug for SecureDekCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureDekCache")
            .field("path", &self.path)
            .field("entries", &self.len())
            .finish_non_exhaustive()
    }
}

impl SecureDekCache {
    /// Opens (or creates) the cache at `path`, unlocking it with `passkey`.
    ///
    /// Returns [`CacheError::BadPasskey`] if the file exists but was
    /// created under a different passkey, and [`CacheError::Corrupt`] if an
    /// entry fails authentication.
    pub fn open(
        env: Arc<dyn Env>,
        path: &str,
        passkey: &[u8],
    ) -> Result<Self, CacheError> {
        Self::open_with_iterations(env, path, passkey, DEFAULT_PBKDF_ITERATIONS)
    }

    /// [`SecureDekCache::open`] with an explicit PBKDF2 iteration count.
    pub fn open_with_iterations(
        env: Arc<dyn Env>,
        path: &str,
        passkey: &[u8],
        iterations: u32,
    ) -> Result<Self, CacheError> {
        if env.file_exists(path) {
            let data = shield_env::read_file_to_vec(env.as_ref(), path, FileKind::Other)?;
            Self::load(env, path, passkey, &data)
        } else {
            let mut salt = [0u8; 16];
            shield_crypto::secure_random(&mut salt);
            let (enc_key, mac_key) = derive_keys(passkey, &salt, iterations);
            let cache = SecureDekCache {
                env,
                path: path.to_string(),
                salt,
                iterations,
                enc_key,
                mac_key,
                inner: Mutex::new(Inner { entries: HashMap::new() }),
            };
            cache.persist()?;
            Ok(cache)
        }
    }

    fn load(
        env: Arc<dyn Env>,
        path: &str,
        passkey: &[u8],
        data: &[u8],
    ) -> Result<Self, CacheError> {
        let mut r = Reader { data, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(CacheError::Corrupt("bad magic".to_string()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CacheError::Corrupt(format!("unsupported version {version}")));
        }
        let iterations = r.u32()?;
        if iterations == 0 || iterations > MAX_PBKDF_ITERATIONS {
            return Err(CacheError::Corrupt(format!(
                "implausible PBKDF2 iteration count {iterations}"
            )));
        }
        let salt: [u8; 16] = r.take(16)?.try_into().unwrap();
        let (enc_key, mac_key) = derive_keys(passkey, &salt, iterations);
        // Passkey verifier: HMAC over a fixed label.
        let verifier = r.take(16)?;
        let expected = hmac_sha256(&mac_key, b"shield-cache-verifier");
        if !constant_time_eq(verifier, &expected[..16]) {
            return Err(CacheError::BadPasskey);
        }
        let count = r.u32()? as usize;
        // The count is read before the entries authenticate, so bound it by
        // what the remaining bytes could possibly encode (each entry is at
        // least id + tag + len + nonce + MAC) before allocating: a flipped
        // high bit must not request a multi-gigabyte table.
        let min_entry = 16 + 1 + 2 + NONCE_LEN + 32;
        if count > r.remaining() / min_entry {
            return Err(CacheError::Corrupt(format!("implausible entry count {count}")));
        }
        let mut entries = HashMap::with_capacity(count);
        for _ in 0..count {
            let id_bytes: [u8; 16] = r.take(16)?.try_into().unwrap();
            let id = DekId::from_bytes(id_bytes);
            let algo_tag = r.u8()?;
            let algorithm = Algorithm::from_tag(algo_tag)
                .ok_or_else(|| CacheError::Corrupt(format!("bad algorithm tag {algo_tag}")))?;
            let key_len = r.u16()? as usize;
            let nonce: [u8; NONCE_LEN] = r.take(NONCE_LEN)?.try_into().unwrap();
            let wrapped = r.take(key_len)?.to_vec();
            let mac = r.take(32)?;
            let computed = entry_mac(&mac_key, id, algo_tag, &nonce, &wrapped);
            if !constant_time_eq(mac, &computed) {
                return Err(CacheError::Corrupt(format!("entry {id} failed MAC")));
            }
            if key_len != algorithm.key_len() {
                return Err(CacheError::Corrupt(format!("entry {id} bad key length")));
            }
            let mut key = wrapped;
            unwrap_key(&enc_key, &nonce, &mut key);
            entries.insert(id, Dek::from_parts(id, algorithm, key));
        }
        Ok(SecureDekCache {
            env,
            path: path.to_string(),
            salt,
            iterations,
            enc_key,
            mac_key,
            inner: Mutex::new(Inner { entries }),
        })
    }

    /// Looks up a DEK by id.
    #[must_use]
    pub fn get(&self, id: DekId) -> Option<Dek> {
        self.inner.lock().entries.get(&id).cloned()
    }

    /// True if the cache holds `id`.
    #[must_use]
    pub fn contains(&self, id: DekId) -> bool {
        self.inner.lock().entries.contains_key(&id)
    }

    /// Inserts (or replaces) a DEK and persists the cache.
    pub fn insert(&self, dek: Dek) -> Result<(), CacheError> {
        self.inner.lock().entries.insert(dek.id(), dek);
        self.persist()
    }

    /// Removes a DEK (when its file dies) and persists the cache.
    /// Removing an absent id is a no-op.
    pub fn remove(&self, id: DekId) -> Result<(), CacheError> {
        let removed = self.inner.lock().entries.remove(&id).is_some();
        if removed {
            self.persist()?;
        }
        Ok(())
    }

    /// Number of cached DEKs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True if no DEKs are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All cached DEK ids (order unspecified).
    #[must_use]
    pub fn ids(&self) -> Vec<DekId> {
        self.inner.lock().entries.keys().copied().collect()
    }

    fn persist(&self) -> Result<(), CacheError> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(64 + inner.entries.len() * 96);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.iterations.to_le_bytes());
        out.extend_from_slice(&self.salt);
        let verifier = hmac_sha256(&self.mac_key, b"shield-cache-verifier");
        out.extend_from_slice(&verifier[..16]);
        out.extend_from_slice(&(inner.entries.len() as u32).to_le_bytes());
        // Deterministic order keeps the file stable for equal contents.
        let mut ids: Vec<_> = inner.entries.keys().copied().collect();
        ids.sort();
        for id in ids {
            let dek = &inner.entries[&id];
            let algo_tag = dek.algorithm().tag();
            let mut nonce = [0u8; NONCE_LEN];
            shield_crypto::secure_random(&mut nonce);
            let mut wrapped = dek.key_bytes().to_vec();
            unwrap_key(&self.enc_key, &nonce, &mut wrapped); // XOR: wrap == unwrap
            let mac = entry_mac(&self.mac_key, id, algo_tag, &nonce, &wrapped);
            out.extend_from_slice(&id.to_bytes());
            out.push(algo_tag);
            out.extend_from_slice(&(wrapped.len() as u16).to_le_bytes());
            out.extend_from_slice(&nonce);
            out.extend_from_slice(&wrapped);
            out.extend_from_slice(&mac);
        }
        // Hold the entry lock across the temp-file + rename so concurrent
        // persists (e.g. the commit leader and a background flush both
        // inserting fresh DEKs) cannot race on the shared temp name.
        shield_env::write_file_atomic(self.env.as_ref(), &self.path, FileKind::Other, &out)?;
        drop(inner);
        Ok(())
    }
}

/// Derives (enc_key, mac_key) from the passkey.
fn derive_keys(passkey: &[u8], salt: &[u8; 16], iterations: u32) -> (Vec<u8>, Vec<u8>) {
    let dk = pbkdf2_hmac_sha256(passkey, salt, iterations, 48);
    (dk[..16].to_vec(), dk[16..].to_vec())
}

/// Wraps/unwraps key material in place (AES-128-CTR keystream XOR).
fn unwrap_key(enc_key: &[u8], nonce: &[u8; NONCE_LEN], key: &mut [u8]) {
    let kek = Dek::from_parts(DekId(0), Algorithm::Aes128Ctr, enc_key.to_vec());
    CipherContext::new(&kek, nonce).xor_at(0, key);
}

fn entry_mac(
    mac_key: &[u8],
    id: DekId,
    algo_tag: u8,
    nonce: &[u8; NONCE_LEN],
    wrapped: &[u8],
) -> [u8; 32] {
    let mut msg = Vec::with_capacity(16 + 1 + NONCE_LEN + wrapped.len());
    msg.extend_from_slice(&id.to_bytes());
    msg.push(algo_tag);
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(wrapped);
    hmac_sha256(mac_key, &msg)
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheError> {
        if self.pos + n > self.data.len() {
            return Err(CacheError::Corrupt("truncated".to_string()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CacheError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CacheError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CacheError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_env::MemEnv;

    const ITERS: u32 = 4; // fast for tests

    fn open(env: &MemEnv, passkey: &[u8]) -> Result<SecureDekCache, CacheError> {
        SecureDekCache::open_with_iterations(Arc::new(env.clone()), "dek.cache", passkey, ITERS)
    }

    #[test]
    fn roundtrip_across_reopen() {
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let chacha = Dek::generate(Algorithm::ChaCha20);
        {
            let cache = open(&env, b"passkey").unwrap();
            cache.insert(dek.clone()).unwrap();
            cache.insert(chacha.clone()).unwrap();
        }
        let cache = open(&env, b"passkey").unwrap();
        assert_eq!(cache.len(), 2);
        let got = cache.get(dek.id()).unwrap();
        assert_eq!(got.key_bytes(), dek.key_bytes());
        assert_eq!(got.algorithm(), Algorithm::Aes128Ctr);
        assert_eq!(cache.get(chacha.id()).unwrap().key_bytes(), chacha.key_bytes());
    }

    #[test]
    fn wrong_passkey_rejected() {
        let env = MemEnv::new();
        {
            let cache = open(&env, b"right").unwrap();
            cache.insert(Dek::generate(Algorithm::Aes128Ctr)).unwrap();
        }
        assert_eq!(open(&env, b"wrong").unwrap_err(), CacheError::BadPasskey);
    }

    #[test]
    fn key_material_not_on_disk_in_plaintext() {
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let cache = open(&env, b"pk").unwrap();
        cache.insert(dek.clone()).unwrap();
        let raw = env.raw_content("dek.cache").unwrap();
        // The 16-byte key must not appear in the file.
        let key = dek.key_bytes();
        let found = raw.windows(key.len()).any(|w| w == key);
        assert!(!found, "plaintext key material leaked to the cache file");
        // But the public DEK-ID does appear (it is not secret).
        let id = dek.id().to_bytes();
        assert!(raw.windows(16).any(|w| w == id));
    }

    #[test]
    fn tampering_detected() {
        let env = MemEnv::new();
        {
            let cache = open(&env, b"pk").unwrap();
            cache.insert(Dek::generate(Algorithm::Aes128Ctr)).unwrap();
        }
        let mut raw = env.raw_content("dek.cache").unwrap();
        // Flip a bit in the wrapped key region (near the end, before MAC).
        let n = raw.len();
        raw[n - 40] ^= 0x01;
        {
            let mut f = env.new_writable_file("dek.cache", FileKind::Other).unwrap();
            f.append(&raw).unwrap();
            f.sync().unwrap();
        }
        assert!(matches!(open(&env, b"pk"), Err(CacheError::Corrupt(_))));
    }

    #[test]
    fn remove_prunes_entry() {
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let cache = open(&env, b"pk").unwrap();
        cache.insert(dek.clone()).unwrap();
        cache.remove(dek.id()).unwrap();
        assert!(cache.is_empty());
        // Removing again is a no-op.
        cache.remove(dek.id()).unwrap();
        // And the entry stays gone across reopen.
        drop(cache);
        let cache = open(&env, b"pk").unwrap();
        assert!(!cache.contains(dek.id()));
    }

    #[test]
    fn shared_cache_between_instances() {
        // Two cache handles on the same file (two LSM instances on one
        // server). Writes by one are visible to a later open by the other.
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let a = open(&env, b"shared").unwrap();
        a.insert(dek.clone()).unwrap();
        let b = open(&env, b"shared").unwrap();
        assert_eq!(b.get(dek.id()).unwrap().key_bytes(), dek.key_bytes());
    }

    #[test]
    fn single_bit_flip_sweep_never_panics_or_corrupts() {
        // Flip every bit of the cache file, one at a time. Each mutation
        // must yield a clean CacheError or — where the flipped byte is
        // genuinely redundant (e.g. the entry count shrinking hides intact
        // trailing entries) — an open whose surviving DEKs are bit-exact.
        // A panic or a silently corrupted key is a failure either way.
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        {
            let cache = open(&env, b"pk").unwrap();
            cache.insert(dek.clone()).unwrap();
        }
        let pristine = env.raw_content("dek.cache").unwrap();
        // Offset of the PBKDF2 iteration-count field (after magic+version).
        let iter_field = 12..16;
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut raw = pristine.clone();
                raw[byte] ^= 1 << bit;
                if iter_field.contains(&byte) {
                    let iters =
                        u32::from_le_bytes(raw[iter_field.clone()].try_into().unwrap());
                    // In-range-but-large counts make the opener honestly run
                    // that many PBKDF2 rounds before BadPasskey — correct
                    // but far too slow for a per-bit sweep. Their behavior
                    // is asserted directly in iteration_field_is_validated.
                    if iters > 8192 && iters <= MAX_PBKDF_ITERATIONS {
                        continue;
                    }
                }
                {
                    let mut f = env.new_writable_file("dek.cache", FileKind::Other).unwrap();
                    f.append(&raw).unwrap();
                    f.sync().unwrap();
                }
                match open(&env, b"pk") {
                    Err(CacheError::BadPasskey | CacheError::Corrupt(_)) => {}
                    Err(CacheError::Env(e)) => {
                        panic!("byte {byte} bit {bit}: unexpected env error {e}")
                    }
                    Ok(cache) => {
                        if let Some(got) = cache.get(dek.id()) {
                            assert_eq!(
                                got.key_bytes(),
                                dek.key_bytes(),
                                "byte {byte} bit {bit}: silently corrupted DEK"
                            );
                            assert_eq!(got.algorithm(), dek.algorithm());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn iteration_field_is_validated() {
        let env = MemEnv::new();
        {
            let cache = open(&env, b"pk").unwrap();
            cache.insert(Dek::generate(Algorithm::Aes128Ctr)).unwrap();
        }
        let pristine = env.raw_content("dek.cache").unwrap();
        let rewrite = |iters: u32| {
            let mut raw = pristine.clone();
            raw[12..16].copy_from_slice(&iters.to_le_bytes());
            let mut f = env.new_writable_file("dek.cache", FileKind::Other).unwrap();
            f.append(&raw).unwrap();
            f.sync().unwrap();
        };
        // Zero rounds would panic inside the KDF; reject before deriving.
        rewrite(0);
        assert!(matches!(open(&env, b"pk"), Err(CacheError::Corrupt(_))));
        // An absurd count is an unauthenticated CPU-DoS; reject likewise.
        rewrite(MAX_PBKDF_ITERATIONS + 1);
        assert!(matches!(open(&env, b"pk"), Err(CacheError::Corrupt(_))));
        rewrite(u32::MAX);
        assert!(matches!(open(&env, b"pk"), Err(CacheError::Corrupt(_))));
        // A plausible-but-wrong count derives different keys → BadPasskey.
        rewrite(ITERS * 2);
        assert!(matches!(open(&env, b"pk"), Err(CacheError::BadPasskey)));
    }

    #[test]
    fn truncation_sweep_is_always_a_clean_error() {
        // Every possible truncation point must produce CacheError, not a
        // panic (the torn-write outcome for a non-atomic cache update).
        let env = MemEnv::new();
        {
            let cache = open(&env, b"pk").unwrap();
            cache.insert(Dek::generate(Algorithm::Aes128Ctr)).unwrap();
        }
        let pristine = env.raw_content("dek.cache").unwrap();
        for cut in 0..pristine.len() {
            {
                let mut f = env.new_writable_file("dek.cache", FileKind::Other).unwrap();
                f.append(&pristine[..cut]).unwrap();
                f.sync().unwrap();
            }
            assert!(
                matches!(open(&env, b"pk"), Err(CacheError::Corrupt(_) | CacheError::BadPasskey)),
                "truncation at {cut} bytes not reported"
            );
        }
    }

    #[test]
    fn truncated_file_is_corrupt() {
        let env = MemEnv::new();
        {
            let cache = open(&env, b"pk").unwrap();
            cache.insert(Dek::generate(Algorithm::Aes128Ctr)).unwrap();
        }
        let raw = env.raw_content("dek.cache").unwrap();
        {
            let mut f = env.new_writable_file("dek.cache", FileKind::Other).unwrap();
            f.append(&raw[..raw.len() - 10]).unwrap();
            f.sync().unwrap();
        }
        assert!(matches!(open(&env, b"pk"), Err(CacheError::Corrupt(_))));
    }
}
