//! Instance-level encryption (paper §4): a transparent [`Env`] wrapper.
//!
//! All file I/O — WAL, SST, Manifest, CURRENT, everything — is intercepted
//! at the I/O-engine layer and encrypted under **one instance DEK**
//! supplied at startup and held only in memory. The LSM-KVS core is
//! completely unaware. This is the simple, effective design for
//! monolithic/controlled deployments, with the §4.2 trade-offs: no
//! per-file isolation, and a DEK compromise exposes the whole store until
//! everything is re-encrypted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shield_crypto::{Dek, NONCE_LEN};
use shield_env::{
    Env, EnvError, EnvResult, FileKind, IoStats, RandomAccessFile, SequentialFile, WritableFile,
};
use shield_lsm::encryption::{
    wrap_random_access, wrap_sequential, EncryptedWritableFile, FileHeader, FILE_HEADER_LEN,
};

/// An [`Env`] that encrypts every file under a single instance DEK.
pub struct EncryptedEnv {
    inner: Arc<dyn Env>,
    dek: Dek,
    /// Applies the §5.3 application buffer to WAL files (0 = per-append
    /// encryption, the plain EncFS design).
    wal_buffer_size: usize,
    inits: Arc<AtomicU64>,
}

impl EncryptedEnv {
    /// Wraps `inner`, encrypting under `dek`.
    #[must_use]
    pub fn new(inner: Arc<dyn Env>, dek: Dek, wal_buffer_size: usize) -> Self {
        EncryptedEnv { inner, dek, wal_buffer_size, inits: Arc::new(AtomicU64::new(0)) }
    }

    /// Cipher-context constructions performed so far (the per-call init
    /// cost of §3.2).
    #[must_use]
    pub fn cipher_inits(&self) -> u64 {
        self.inits.load(Ordering::Relaxed)
    }

    fn read_header(&self, path: &str, kind: FileKind) -> EnvResult<FileHeader> {
        let f = self.inner.new_random_access_file(path, kind)?;
        let head = f.read_at(0, FILE_HEADER_LEN)?;
        match FileHeader::decode(&head) {
            Ok(Some(h)) => {
                if h.dek_id != self.dek.id() {
                    return Err(EnvError::Corruption(format!(
                        "{path}: encrypted under a different DEK ({})",
                        h.dek_id
                    )));
                }
                Ok(h)
            }
            Ok(None) => Err(EnvError::Corruption(format!("{path}: missing encryption header"))),
            Err(e) => Err(EnvError::Corruption(e.to_string())),
        }
    }
}

impl Env for EncryptedEnv {
    fn new_writable_file(&self, path: &str, kind: FileKind) -> EnvResult<Box<dyn WritableFile>> {
        let mut nonce = [0u8; NONCE_LEN];
        shield_crypto::secure_random(&mut nonce);
        let header =
            FileHeader { algorithm: self.dek.algorithm(), dek_id: self.dek.id(), nonce };
        let mut inner = self.inner.new_writable_file(path, kind)?;
        inner.append(&header.encode())?;
        inner.flush()?;
        let buffer = if kind == FileKind::Wal { self.wal_buffer_size } else { 0 };
        Ok(Box::new(EncryptedWritableFile::wrap(
            inner,
            self.dek.clone(),
            nonce,
            buffer,
            usize::MAX,
            1,
            self.inits.clone(),
        )))
    }

    fn new_random_access_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Arc<dyn RandomAccessFile>> {
        let header = self.read_header(path, kind)?;
        self.inits.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.new_random_access_file(path, kind)?;
        Ok(wrap_random_access(inner, &self.dek, &header.nonce))
    }

    fn new_sequential_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Box<dyn SequentialFile>> {
        let header = self.read_header(path, kind)?;
        self.inits.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.new_sequential_file(path, kind)?;
        // Skip the plaintext header.
        let mut skip = [0u8; FILE_HEADER_LEN];
        let mut done = 0;
        while done < FILE_HEADER_LEN {
            let n = inner.read(&mut skip[done..])?;
            if n == 0 {
                break;
            }
            done += n;
        }
        Ok(wrap_sequential(inner, &self.dek, &header.nonce))
    }

    fn remove_file(&self, path: &str) -> EnvResult<()> {
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &str, to: &str) -> EnvResult<()> {
        self.inner.rename(from, to)
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> EnvResult<u64> {
        // Report the logical (body) size so callers see plaintext lengths.
        Ok(self
            .inner
            .file_size(path)?
            .saturating_sub(FILE_HEADER_LEN as u64))
    }

    fn list_dir(&self, dir: &str) -> EnvResult<Vec<String>> {
        self.inner.list_dir(dir)
    }

    fn create_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.inner.create_dir_all(dir)
    }

    fn remove_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.inner.remove_dir_all(dir)
    }

    fn io_stats(&self) -> Option<Arc<IoStats>> {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_crypto::Algorithm;
    use shield_env::MemEnv;

    fn setup() -> (MemEnv, EncryptedEnv) {
        let mem = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let env = EncryptedEnv::new(Arc::new(mem.clone()), dek, 0);
        (mem, env)
    }

    #[test]
    fn transparent_roundtrip() {
        let (mem, env) = setup();
        {
            let mut f = env.new_writable_file("f", FileKind::Sst).unwrap();
            f.append(b"hello ").unwrap();
            f.append(b"world").unwrap();
            f.sync().unwrap();
            assert_eq!(f.len(), 11);
        }
        // Ciphertext on the backing store.
        let raw = mem.raw_content("f").unwrap();
        assert_eq!(raw.len(), FILE_HEADER_LEN + 11);
        assert!(!raw.windows(5).any(|w| w == b"hello"));
        // Plaintext through the env.
        let r = env.new_random_access_file("f", FileKind::Sst).unwrap();
        assert_eq!(&r.read_at(0, 11).unwrap()[..], b"hello world");
        assert_eq!(r.len().unwrap(), 11);
        assert_eq!(env.file_size("f").unwrap(), 11);
        let mut s = env.new_sequential_file("f", FileKind::Sst).unwrap();
        let mut buf = [0u8; 6];
        s.read(&mut buf).unwrap();
        assert_eq!(&buf, b"hello ");
    }

    #[test]
    fn wrong_dek_detected() {
        let (mem, env) = setup();
        {
            let mut f = env.new_writable_file("f", FileKind::Sst).unwrap();
            f.append(b"data").unwrap();
            f.sync().unwrap();
        }
        let other = EncryptedEnv::new(
            Arc::new(mem),
            Dek::generate(Algorithm::Aes128Ctr),
            0,
        );
        assert!(matches!(
            other.new_random_access_file("f", FileKind::Sst),
            Err(EnvError::Corruption(_))
        ));
    }

    #[test]
    fn plaintext_file_rejected() {
        let (mem, env) = setup();
        {
            let mut f = mem.new_writable_file("plain", FileKind::Other).unwrap();
            f.append(&[0u8; 100]).unwrap();
            f.sync().unwrap();
        }
        assert!(env.new_sequential_file("plain", FileKind::Other).is_err());
    }

    #[test]
    fn per_file_nonces_differ() {
        let (mem, env) = setup();
        for name in ["a", "b"] {
            let mut f = env.new_writable_file(name, FileKind::Sst).unwrap();
            f.append(b"identical plaintext").unwrap();
            f.sync().unwrap();
        }
        // Same DEK + same plaintext, but different nonces ⇒ different
        // ciphertext.
        let a = mem.raw_content("a").unwrap();
        let b = mem.raw_content("b").unwrap();
        assert_ne!(a[FILE_HEADER_LEN..], b[FILE_HEADER_LEN..]);
    }

    #[test]
    fn cipher_inits_counted_per_append_when_unbuffered() {
        let (_, env) = setup();
        let before = env.cipher_inits();
        let mut f = env.new_writable_file("w", FileKind::Wal).unwrap();
        for _ in 0..10 {
            f.append(b"tiny").unwrap();
        }
        f.flush().unwrap();
        assert_eq!(env.cipher_inits() - before, 10);
    }

    #[test]
    fn wal_buffer_variant_amortizes() {
        let mem = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        let env = EncryptedEnv::new(Arc::new(mem), dek, 4096);
        let before = env.cipher_inits();
        let mut f = env.new_writable_file("w", FileKind::Wal).unwrap();
        for _ in 0..100 {
            f.append(&[7u8; 20]).unwrap();
        }
        f.sync().unwrap();
        assert!(env.cipher_inits() - before <= 2);
    }
}
