//! Disaggregated-storage deployments (paper §2.2, §5.4, §5.6, §6.4).
//!
//! The paper's DS setup has a compute server mounting HDFS on a storage
//! server over a 1 Gbps link, with two LSM-specific optimizations layered
//! on top: **offloaded compaction** (the storage server executes
//! compactions, reading DEKs via the DEK-IDs embedded in file metadata)
//! and **read-only instances** (extra compute nodes serving queries from
//! the shared files without write access). This module provides all three
//! pieces over the simulated network of [`shield_env::RemoteEnv`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shield_env::{Env, FileKind, NetworkModel, RemoteEnv};
use shield_lsm::compaction::{
    run_compaction, CompactionContext, CompactionExecutor, CompactionOutcome, CompactionRequest,
};
use shield_lsm::encryption::EncryptionConfig;
use shield_lsm::error::Result;
use shield_lsm::integrity::IntegrityOptions;
use shield_lsm::memtable::{LookupResult, MemTable};
use shield_lsm::types::SequenceNumber;
use shield_lsm::version::table_cache::TableCache;
use shield_lsm::version::version::{GetResult, Version};
use shield_lsm::version::{parse_file_name, wal_file_name, FileType, VersionSet};
use shield_lsm::wal::LogReader;
use shield_lsm::WriteBatch;

/// A disaggregated storage cluster: one backing store, two views.
///
/// * the **compute mount** pays network latency/bandwidth for every I/O
///   (what the primary LSM-KVS instance uses),
/// * the **storage-local view** is the same files with no network cost
///   (what offloaded compaction uses — its I/O is server-local).
pub struct DisaggregatedStorage {
    backing: Arc<dyn Env>,
    remote: Arc<RemoteEnv>,
}

impl DisaggregatedStorage {
    /// Wraps `backing` with `model` for the compute side.
    #[must_use]
    pub fn new(backing: Arc<dyn Env>, model: NetworkModel) -> Self {
        let remote = Arc::new(RemoteEnv::new(backing.clone(), model));
        DisaggregatedStorage { backing, remote }
    }

    /// The env the compute node mounts (network-modeled).
    #[must_use]
    pub fn compute_mount(&self) -> Arc<dyn Env> {
        self.remote.clone()
    }

    /// The storage server's local view (no network cost).
    #[must_use]
    pub fn storage_local(&self) -> Arc<dyn Env> {
        self.backing.clone()
    }

    /// The remote wrapper, for adjusting the network model mid-experiment
    /// or reading the storage node's I/O accounting.
    #[must_use]
    pub fn remote(&self) -> &Arc<RemoteEnv> {
        &self.remote
    }
}

/// Executes compactions on the storage server (paper §5.6).
///
/// The compactor has its **own** server identity, DEK resolver, and secure
/// cache: it never receives keys from the compute node. Input DEKs are
/// resolved from the DEK-IDs in the SST plaintext headers; output files get
/// fresh DEKs requested under the compactor's identity — so revoking the
/// compactor's authorization at the KDS immediately locks it out.
pub struct OffloadedCompactor {
    env: Arc<dyn Env>,
    db_path: String,
    encryption: Option<EncryptionConfig>,
    table_cache: Arc<TableCache>,
    jobs: AtomicU64,
}

impl OffloadedCompactor {
    /// Creates a compactor over the storage-local env.
    #[must_use]
    pub fn new(
        env: Arc<dyn Env>,
        db_path: &str,
        encryption: Option<EncryptionConfig>,
    ) -> Arc<Self> {
        let table_cache = TableCache::new(
            env.clone(),
            db_path.to_string(),
            encryption.clone(),
            None,
            128,
        );
        Arc::new(OffloadedCompactor {
            env,
            db_path: db_path.to_string(),
            encryption,
            table_cache,
            jobs: AtomicU64::new(0),
        })
    }

    /// Number of compaction jobs executed.
    #[must_use]
    pub fn jobs_executed(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }
}

impl CompactionExecutor for OffloadedCompactor {
    fn execute(
        &self,
        request: &CompactionRequest<'_>,
        alloc: &mut dyn FnMut() -> u64,
    ) -> Result<CompactionOutcome> {
        debug_assert_eq!(request.db_path, self.db_path, "compactor bound to one database");
        let mut ctx = CompactionContext {
            env: &self.env,
            db_path: &self.db_path,
            encryption: self.encryption.as_ref(),
            table_cache: &self.table_cache,
            version: request.version,
            smallest_snapshot: request.smallest_snapshot,
            table_options: request.table_options.clone(),
            target_file_size: request.target_file_size,
            readahead_blocks: self.table_cache.fetcher().readahead_blocks(),
            next_file_number: alloc,
        };
        let outcome = run_compaction(&mut ctx, request.task)?;
        // Evict inputs from the compactor-side cache; they are about to be
        // deleted by the primary.
        for (_, number) in &outcome.edit.deleted_files {
            self.table_cache.evict(*number);
        }
        self.jobs.fetch_add(1, Ordering::Relaxed);
        Ok(outcome)
    }
}

/// A read-only instance over a shared database directory (paper §2.2).
///
/// Loads the MANIFEST without mutating anything, replays live WAL
/// segments into a private memtable for freshness, and serves gets/scans.
/// With SHIELD enabled it resolves DEKs through its own resolver — the
/// metadata-enabled sharing path.
pub struct ReadOnlyInstance {
    env: Arc<dyn Env>,
    path: String,
    encryption: Option<EncryptionConfig>,
    integrity: IntegrityOptions,
    table_cache: Arc<TableCache>,
    version: Version,
    mem: Arc<MemTable>,
    seq: SequenceNumber,
}

impl ReadOnlyInstance {
    /// Opens the shared directory read-only.
    pub fn open(
        env: Arc<dyn Env>,
        path: &str,
        encryption: Option<EncryptionConfig>,
    ) -> Result<Self> {
        Self::open_with_integrity(env, path, encryption, IntegrityOptions::default())
    }

    /// [`ReadOnlyInstance::open`] with explicit integrity settings: the
    /// engine-wide MAC key verifies authenticated plaintext files (SHIELD
    /// files always verify with their own DEK's subkey).
    pub fn open_with_integrity(
        env: Arc<dyn Env>,
        path: &str,
        encryption: Option<EncryptionConfig>,
        integrity: IntegrityOptions,
    ) -> Result<Self> {
        let table_cache = TableCache::new_with_stats(
            env.clone(),
            path.to_string(),
            encryption.clone(),
            None,
            None,
            128,
            0,
            shield_lsm::sst::fetcher::DEFAULT_INFLIGHT_READS,
            integrity,
            None,
        );
        let mut instance = ReadOnlyInstance {
            env,
            path: path.to_string(),
            encryption,
            integrity,
            table_cache,
            version: Version::new(),
            mem: Arc::new(MemTable::new(0)),
            seq: 0,
        };
        instance.refresh()?;
        Ok(instance)
    }

    /// Re-reads the manifest and replays live WALs, catching up to the
    /// primary's latest durable state.
    pub fn refresh(&mut self) -> Result<()> {
        let (version, mut seq, log_number) = VersionSet::load_read_only(
            self.env.as_ref(),
            &self.path,
            self.encryption.as_ref(),
            self.integrity,
        )?;
        let mem = Arc::new(MemTable::new(0));
        let mut wals: Vec<u64> = self
            .env
            .list_dir(&self.path)?
            .iter()
            .filter_map(|n| match parse_file_name(n) {
                Some(FileType::Wal(num)) if num >= log_number => Some(num),
                _ => None,
            })
            .collect();
        wals.sort_unstable();
        for number in wals {
            let wal_path = shield_env::join_path(&self.path, &wal_file_name(number));
            let (file, dek_mac) = match &self.encryption {
                Some(cfg) => {
                    cfg.open_sequential_with_mac(self.env.as_ref(), &wal_path, FileKind::Wal)?
                }
                None => (self.env.new_sequential_file(&wal_path, FileKind::Wal)?, None),
            };
            let mut reader =
                LogReader::with_integrity(file, Some(dek_mac.unwrap_or(self.integrity.key)));
            // The primary may still be appending; tolerate a torn tail and
            // even a mid-read race by stopping at the first anomaly.
            while let Ok(Some(record)) = reader.read_record() {
                let Ok(batch) = WriteBatch::from_data(&record) else { break };
                batch.insert_into(&mem)?;
                seq = seq.max(batch.sequence() + u64::from(batch.count()) - 1);
            }
        }
        self.version = version;
        self.mem = mem;
        self.seq = seq;
        Ok(())
    }

    /// The sequence number this instance reads at.
    #[must_use]
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.mem.get(key, self.seq) {
            LookupResult::Found(v) => return Ok(Some(v)),
            LookupResult::Deleted => return Ok(None),
            LookupResult::NotFound => {}
        }
        match self.version.get(&self.table_cache, key, self.seq)? {
            GetResult::Found(v) => Ok(Some(v)),
            GetResult::Deleted | GetResult::NotFound => Ok(None),
        }
    }

    /// Range scan over persistent + replayed state.
    pub fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        use shield_lsm::iter::{InternalIterator, MergingIterator};
        use shield_lsm::types::{
            extract_seq_type, extract_user_key, make_lookup_key, ValueType,
        };
        let mut children: Vec<Box<dyn InternalIterator>> = vec![Box::new(self.mem.iter())];
        children.extend(self.version.iterators(&self.table_cache)?);
        let mut merged = MergingIterator::new(children);
        merged.seek(&make_lookup_key(start, self.seq));
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut skip: Option<Vec<u8>> = None;
        while merged.valid() && out.len() < limit {
            let ikey = merged.key();
            let user = extract_user_key(ikey).to_vec();
            let (entry_seq, vtype) = extract_seq_type(ikey);
            if entry_seq > self.seq || skip.as_deref() == Some(&user[..]) {
                merged.next();
                continue;
            }
            skip = Some(user.clone());
            if vtype == Some(ValueType::Value) {
                out.push((user, merged.value().to_vec()));
            }
            merged.next();
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{open_shield, ShieldOptions};
    use shield_crypto::Algorithm;
    use shield_env::MemEnv;
    use shield_kds::{DekResolver, Kds, KdsConfig, LocalKds, ServerId};
    use shield_lsm::{Options, ReadOptions, WriteOptions};

    const PRIMARY: ServerId = ServerId(1);
    const COMPACTOR: ServerId = ServerId(2);
    const READER: ServerId = ServerId(3);

    fn remote_cfg(
        kds: &Arc<LocalKds>,
        env: &Arc<dyn Env>,
        server: ServerId,
        cache_path: &str,
    ) -> EncryptionConfig {
        let cache = shield_kds::SecureDekCache::open(env.clone(), cache_path, b"worker-pass")
            .unwrap();
        let resolver = Arc::new(DekResolver::new(
            kds.clone() as Arc<dyn Kds>,
            Some(Arc::new(cache)),
            server,
            Algorithm::Aes128Ctr,
        ));
        EncryptionConfig::new(resolver)
    }

    /// Full offloaded-compaction round trip: the compute node writes
    /// through the network-modeled mount; the storage-side compactor
    /// resolves DEKs purely from file metadata.
    #[test]
    fn offloaded_compaction_end_to_end() {
        let backing = MemEnv::new();
        let ds = DisaggregatedStorage::new(
            Arc::new(backing.clone()),
            NetworkModel::unlimited(),
        );
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));

        let storage_env = ds.storage_local();
        let compactor_cfg = remote_cfg(&kds, &storage_env, COMPACTOR, "compactor.cache");
        let compactor = OffloadedCompactor::new(storage_env, "db", Some(compactor_cfg.clone()));

        let mut base = Options::new(ds.compute_mount());
        base.write_buffer_size = 8 << 10;
        base.compaction.l0_compaction_trigger = 2;
        base.compaction_executor = Some(compactor.clone());
        let sdb = open_shield(
            base,
            "db",
            ShieldOptions::new(kds.clone(), PRIMARY, b"primary-pass"),
        )
        .unwrap();

        for i in 0..3000u32 {
            sdb.put(&WriteOptions::default(), format!("key{i:06}").as_bytes(), &[b'v'; 32])
                .unwrap();
        }
        sdb.compact_all().unwrap();
        assert!(compactor.jobs_executed() >= 1, "compaction should have offloaded");
        // The compactor had to fetch input DEKs via metadata DEK-IDs.
        let stats = compactor_cfg.resolver.stats();
        assert!(stats.cache_misses + stats.cache_hits > 0);
        // Data is intact through the compute mount.
        for i in (0..3000u32).step_by(191) {
            assert!(
                sdb.get(&ReadOptions::new(), format!("key{i:06}").as_bytes())
                    .unwrap()
                    .is_some(),
                "key{i:06} lost"
            );
        }
    }

    /// Revoking the compactor's KDS authorization locks it out of new
    /// compactions (§5.4 breached-server response).
    #[test]
    fn revoked_compactor_is_locked_out() {
        let backing = MemEnv::new();
        let ds = DisaggregatedStorage::new(
            Arc::new(backing),
            NetworkModel::unlimited(),
        );
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let storage_env = ds.storage_local();
        let compactor_cfg = remote_cfg(&kds, &storage_env, COMPACTOR, "compactor.cache");
        let compactor = OffloadedCompactor::new(storage_env, "db", Some(compactor_cfg));

        let mut base = Options::new(ds.compute_mount());
        base.write_buffer_size = 8 << 10;
        base.compaction.l0_compaction_trigger = 2;
        base.compaction_executor = Some(compactor);
        let sdb = open_shield(
            base,
            "db",
            ShieldOptions::new(kds.clone(), PRIMARY, b"primary-pass"),
        )
        .unwrap();

        kds.revoke_server(COMPACTOR);
        // The offloaded compaction fails; the background error surfaces on
        // a later write or on compact_all, whichever comes first.
        let mut failed = false;
        for i in 0..3000u32 {
            if sdb
                .put(&WriteOptions::default(), format!("key{i:06}").as_bytes(), &[b'v'; 32])
                .is_err()
            {
                failed = true;
                break;
            }
        }
        failed |= sdb.compact_all().is_err();
        assert!(failed, "revoked compactor must not compact");
    }

    /// Read-only instance over shared files, with and without encryption.
    #[test]
    fn read_only_instance_serves_reads() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let sdb = open_shield(
            Options::new(env.clone()),
            "db",
            ShieldOptions::new(kds.clone(), PRIMARY, b"primary-pass"),
        )
        .unwrap();
        for i in 0..500u32 {
            sdb.put(&WriteOptions::default(), format!("k{i:04}").as_bytes(), b"flushed")
                .unwrap();
        }
        sdb.flush().unwrap();
        // WAL-only (unflushed) writes, visible via WAL replay. The write
        // must be synced: with SHIELD's WAL buffer, an unsynced record may
        // still sit (plaintext) in the application buffer — the §5.3
        // persistence trade-off.
        sdb.put(&WriteOptions { sync: true }, b"tail-key", b"wal-only").unwrap();

        let reader_cfg = remote_cfg(&kds, &env, READER, "reader.cache");
        let ro = ReadOnlyInstance::open(env.clone(), "db", Some(reader_cfg)).unwrap();
        assert_eq!(ro.get(b"k0123").unwrap(), Some(b"flushed".to_vec()));
        assert_eq!(ro.get(b"tail-key").unwrap(), Some(b"wal-only".to_vec()));
        assert_eq!(ro.get(b"absent").unwrap(), None);
        let scanned = ro.scan(b"k0100", 10).unwrap();
        assert_eq!(scanned.len(), 10);
        assert_eq!(scanned[0].0, b"k0100");
    }

    #[test]
    fn read_only_refresh_sees_new_writes() {
        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let db = crate::open_plain(Options::new(env.clone()), "db").unwrap();
        db.put(&WriteOptions::default(), b"a", b"1").unwrap();
        let mut ro = ReadOnlyInstance::open(env.clone(), "db", None).unwrap();
        assert_eq!(ro.get(b"a").unwrap(), Some(b"1".to_vec()));
        db.put(&WriteOptions::default(), b"b", b"2").unwrap();
        // Stale until refresh.
        assert_eq!(ro.get(b"b").unwrap(), None);
        ro.refresh().unwrap();
        assert_eq!(ro.get(b"b").unwrap(), Some(b"2".to_vec()));
    }
}
