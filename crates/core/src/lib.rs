//! High-level SHIELD API: the paper's two designs over one engine.
//!
//! * [`open_plain`] — unencrypted baseline (the paper's "unencrypted
//!   RocksDB").
//! * [`open_encfs`] — **instance-level encryption** (paper §4): a
//!   transparent [`EncryptedEnv`] that encrypts every file under a single
//!   instance DEK. The engine is unaware; suited to controlled monolithic
//!   deployments.
//! * [`open_shield`] — **SHIELD** (paper §5): per-file DEKs from a KDS,
//!   DEK-IDs in plaintext file metadata, a secure on-disk DEK cache
//!   unlocked by a passkey, the WAL encryption buffer, and chunked
//!   multi-threaded compaction encryption. DEK rotation falls out of
//!   compaction.
//! * [`deploy`] — disaggregated-storage composition: a network-modeled
//!   storage mount, an [`deploy::OffloadedCompactor`] that runs compactions
//!   on the storage server under its own identity, and
//!   [`deploy::ReadOnlyInstance`]s that serve reads from shared files.

pub mod deploy;
pub mod encfs;

use std::ops::Deref;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use shield_crypto::Algorithm;
use shield_kds::{DekResolver, Kds, RetryPolicy, SecureDekCache, ServerId};
use shield_lsm::encryption::EncryptionConfig;
use shield_lsm::{Db, Error, Options, Result};

pub use encfs::EncryptedEnv;
pub use shield_lsm::{
    CompactionStyle, DbIterator, Event, EventListener, LogConfig, LogLevel, MetricsReport,
    MetricsWindow, PerfContext, ReadOptions, SlowOp, Snapshot, SpanRecord, Statistics,
    StatsSnapshot, WriteBatch, WriteOptions,
};

/// Name of the secure DEK cache file inside a database directory.
pub const DEK_CACHE_FILE: &str = "DEK_CACHE";

/// Opens an unencrypted database (the evaluation baseline).
pub fn open_plain(opts: Options, path: &str) -> Result<Db> {
    Db::open(opts, path)
}

/// Opens a database whose *environment* encrypts everything under a single
/// instance DEK (paper §4). `base.env` is wrapped; the engine itself runs
/// unmodified, exactly the "transparent I/O interception" design.
///
/// `wal_buffer_size` optionally applies the §5.3 application buffer to WAL
/// files (the paper's "EncFS + WAL-Buf" variant); 0 encrypts every WAL
/// append individually.
pub fn open_encfs(
    mut base: Options,
    path: &str,
    dek: shield_crypto::Dek,
    wal_buffer_size: usize,
) -> Result<EncFsDb> {
    let env = Arc::new(EncryptedEnv::new(base.env.clone(), dek, wal_buffer_size));
    base.env = env.clone();
    debug_assert!(base.encryption.is_none(), "EncFS encrypts below the engine");
    let db = Db::open(base, path)?;
    Ok(EncFsDb { db, env })
}

/// An instance-level-encrypted database handle.
pub struct EncFsDb {
    /// The engine handle.
    pub db: Db,
    /// The encrypting environment (exposes the cipher-init counter).
    pub env: Arc<EncryptedEnv>,
}

impl Deref for EncFsDb {
    type Target = Db;
    fn deref(&self) -> &Db {
        &self.db
    }
}

/// Configuration for [`open_shield`].
#[derive(Clone)]
pub struct ShieldOptions {
    /// Key distribution service shared by all servers.
    pub kds: Arc<dyn Kds>,
    /// This instance's identity at the KDS.
    pub server: ServerId,
    /// Passkey unlocking the secure DEK cache; `None` disables the cache
    /// (every resolution goes to the KDS).
    pub passkey: Option<Vec<u8>>,
    /// Cipher for new DEKs (paper default: AES-128-CTR).
    pub algorithm: Algorithm,
    /// WAL application-buffer size (paper default 512 B; 0 = unbuffered).
    pub wal_buffer_size: usize,
    /// Compaction/flush encryption chunk size.
    pub chunk_size: usize,
    /// Threads for chunked encryption.
    pub encryption_threads: usize,
    /// When false, leaves the WAL plaintext (Table 2's "Encrypted SST"
    /// measurement configuration; insecure).
    pub encrypt_wal: bool,
    /// Retry/timeout discipline for KDS round trips (see
    /// [`shield_kds::RetryPolicy`]).
    pub retry_policy: RetryPolicy,
}

impl ShieldOptions {
    /// Paper defaults: 512-byte WAL buffer, 4 KiB chunks, one thread,
    /// secure cache enabled under `passkey`.
    #[must_use]
    pub fn new(kds: Arc<dyn Kds>, server: ServerId, passkey: &[u8]) -> Self {
        ShieldOptions {
            kds,
            server,
            passkey: Some(passkey.to_vec()),
            algorithm: Algorithm::Aes128Ctr,
            wal_buffer_size: 512,
            chunk_size: 4096,
            encryption_threads: 1,
            encrypt_wal: true,
            retry_policy: RetryPolicy::default(),
        }
    }
}

/// A SHIELD-encrypted database handle.
pub struct ShieldDb {
    /// The engine handle.
    pub db: Db,
    /// The encryption layer (cipher-init counters, chunk settings).
    pub encryption: EncryptionConfig,
    /// The DEK resolver (cache hit/miss statistics).
    pub resolver: Arc<DekResolver>,
}

impl Deref for ShieldDb {
    type Target = Db;
    fn deref(&self) -> &Db {
        &self.db
    }
}

impl ShieldDb {
    /// Engine counters with the resolver gauges (`resolver_retries`,
    /// `resolver_failovers`, `resolver_degraded_hits`) refreshed from the
    /// DEK resolver, so one snapshot covers both layers.
    #[must_use]
    pub fn statistics(&self) -> Arc<Statistics> {
        let stats = self.db.statistics();
        let r = self.resolver.stats();
        stats.resolver_retries.store(r.retries, Ordering::Relaxed);
        stats.resolver_failovers.store(r.failovers, Ordering::Relaxed);
        stats.resolver_degraded_hits.store(r.degraded_hits, Ordering::Relaxed);
        stats
    }
}

/// Opens a SHIELD database: unique DEK per file, metadata-embedded
/// DEK-IDs, secure local DEK cache, WAL buffering, chunked compaction
/// encryption (paper §5).
///
/// ```
/// use std::sync::Arc;
/// use shield::{open_shield, ShieldOptions, WriteOptions, ReadOptions};
/// use shield_env::MemEnv;
/// use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
/// use shield_lsm::Options;
///
/// let kds = Arc::new(LocalKds::new(KdsConfig::default()));
/// let db = open_shield(
///     Options::new(Arc::new(MemEnv::new())),
///     "db",
///     ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"passkey"),
/// ).unwrap();
/// db.put(&WriteOptions::default(), b"k", b"v").unwrap();
/// assert_eq!(db.get(&ReadOptions::new(), b"k").unwrap(), Some(b"v".to_vec()));
/// ```
pub fn open_shield(mut base: Options, path: &str, shield: ShieldOptions) -> Result<ShieldDb> {
    base.env.create_dir_all(path)?;
    let cache = match &shield.passkey {
        Some(pk) => {
            let cache_path = shield_env::join_path(path, DEK_CACHE_FILE);
            Some(Arc::new(
                SecureDekCache::open(base.env.clone(), &cache_path, pk)
                    .map_err(|e| Error::Encryption(e.to_string()))?,
            ))
        }
        None => None,
    };
    let resolver = Arc::new(DekResolver::with_policy(
        shield.kds.clone(),
        cache,
        shield.server,
        shield.algorithm,
        shield.retry_policy.clone(),
    ));
    let mut encryption = EncryptionConfig::new(resolver.clone())
        .with_wal_buffer(shield.wal_buffer_size)
        .with_chunks(shield.chunk_size, shield.encryption_threads);
    if !shield.encrypt_wal {
        encryption = encryption.with_plaintext_wal();
    }
    base.encryption = Some(encryption.clone());
    let db = Db::open(base, path)?;
    // KDS retries/failovers/degraded transitions land in the same event
    // stream (and LOG file) as the engine's own events.
    resolver.set_event_listener(db.events());
    Ok(ShieldDb { db, encryption, resolver })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_crypto::Dek;
    use shield_env::{Env as _, MemEnv};
    use shield_kds::{KdsConfig, LocalKds};

    fn mem_opts(env: &MemEnv) -> Options {
        Options::new(Arc::new(env.clone()))
    }

    #[test]
    fn plain_roundtrip() {
        let env = MemEnv::new();
        let db = open_plain(mem_opts(&env), "db").unwrap();
        db.put(&WriteOptions::default(), b"k", b"v").unwrap();
        assert_eq!(db.get(&ReadOptions::new(), b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn encfs_roundtrip_and_confidentiality() {
        let env = MemEnv::new();
        let dek = Dek::generate(Algorithm::Aes128Ctr);
        {
            let db = open_encfs(mem_opts(&env), "db", dek.clone(), 0).unwrap();
            db.put(&WriteOptions::default(), b"customer-record", b"super-secret-payload")
                .unwrap();
            db.flush().unwrap();
            assert_eq!(
                db.get(&ReadOptions::new(), b"customer-record").unwrap(),
                Some(b"super-secret-payload".to_vec())
            );
        }
        // No file on disk contains the plaintext.
        for file in env_files(&env) {
            let raw = env.raw_content(&file).unwrap();
            assert!(!raw.windows(12).any(|w| w == b"super-secret"), "{file} leaked plaintext");
        }
        // Reopen with the same DEK: data intact.
        let db = open_encfs(mem_opts(&env), "db", dek, 0).unwrap();
        assert_eq!(
            db.get(&ReadOptions::new(), b"customer-record").unwrap(),
            Some(b"super-secret-payload".to_vec())
        );
    }

    fn env_files(env: &MemEnv) -> Vec<String> {
        env.list_dir("db")
            .unwrap()
            .into_iter()
            .map(|n| format!("db/{n}"))
            .collect()
    }

    #[test]
    fn shield_roundtrip_with_restart() {
        let env = MemEnv::new();
        let kds: Arc<dyn Kds> = Arc::new(LocalKds::new(KdsConfig::default()));
        let shield_opts = ShieldOptions::new(kds.clone(), ServerId(1), b"passkey");
        {
            let sdb = open_shield(mem_opts(&env), "db", shield_opts.clone()).unwrap();
            for i in 0..200u32 {
                sdb.put(&WriteOptions::default(), format!("key-{i:04}").as_bytes(), b"value")
                    .unwrap();
            }
            sdb.flush().unwrap();
            // Unique DEKs were generated (≥ WAL + SST + manifest).
            assert!(sdb.resolver.stats().generated >= 3);
        }
        // Restart: DEKs come from the secure cache, not fresh KDS fetches.
        let before_fetches = kds.stats().fetched;
        let sdb = open_shield(mem_opts(&env), "db", shield_opts).unwrap();
        assert_eq!(
            sdb.get(&ReadOptions::new(), b"key-0123").unwrap(),
            Some(b"value".to_vec())
        );
        assert_eq!(kds.stats().fetched, before_fetches, "secure cache should serve restarts");
        assert!(sdb.resolver.stats().cache_hits > 0);
    }

    #[test]
    fn perf_context_breaks_down_shield_get() {
        let env = MemEnv::new();
        let kds: Arc<dyn Kds> = Arc::new(LocalKds::new(KdsConfig::default()));
        let shield_opts = ShieldOptions::new(kds.clone(), ServerId(1), b"passkey");
        {
            let sdb = open_shield(mem_opts(&env), "db", shield_opts.clone()).unwrap();
            for i in 0..500u32 {
                sdb.put(&WriteOptions::default(), format!("key-{i:04}").as_bytes(), &[7u8; 256])
                    .unwrap();
            }
            sdb.flush().unwrap();
        }
        // Reopen with the block cache disabled: the get must hit (encrypted)
        // storage, resolve the SST's DEK, and decrypt — all attributable.
        let mut opts = mem_opts(&env);
        opts.block_cache_bytes = 0;
        let sdb = open_shield(opts, "db", shield_opts).unwrap();

        let wall_start = std::time::Instant::now();
        let (value, perf) =
            sdb.with_perf_context(|db| db.get(&ReadOptions::new(), b"key-0123").unwrap());
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;
        assert_eq!(value, Some(vec![7u8; 256]));
        assert!(perf.block_read_nanos > 0, "must see storage reads: {perf:?}");
        assert!(perf.block_decrypt_nanos > 0, "must see decryption: {perf:?}");
        assert!(perf.dek_resolve_nanos > 0, "must see DEK resolution: {perf:?}");
        assert!(perf.blocks_read > 0);
        assert!(
            perf.timed_nanos() <= wall_nanos,
            "components ({}) must not exceed wall time ({wall_nanos}): {perf:?}",
            perf.timed_nanos()
        );
        // The guard restored the disabled context on exit, and a plain
        // (uninstrumented) get accumulates nothing.
        assert_eq!(
            sdb.get(&ReadOptions::new(), b"key-0001").unwrap(),
            Some(vec![7u8; 256])
        );
        assert!(shield_core::perf::current().is_zero(), "disabled path must stay all-zero");
    }

    #[test]
    fn shield_wrong_passkey_rejected() {
        let env = MemEnv::new();
        let kds: Arc<dyn Kds> = Arc::new(LocalKds::new(KdsConfig::default()));
        {
            let _ = open_shield(
                mem_opts(&env),
                "db",
                ShieldOptions::new(kds.clone(), ServerId(1), b"right"),
            )
            .unwrap();
        }
        match open_shield(mem_opts(&env), "db", ShieldOptions::new(kds, ServerId(1), b"wrong")) {
            Err(Error::Encryption(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("wrong passkey must be rejected"),
        }
    }
}
