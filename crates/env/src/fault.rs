//! Fault-injection environment, modelled on RocksDB's `FaultInjectionTestFS`.
//!
//! [`FaultInjectionEnv`] wraps any [`Env`] and injects programmable faults
//! at the storage boundary, keyed by ([`FileKind`], [`FaultOp`]):
//!
//! * **error-once / error-N-times** — the next N matching operations fail,
//! * **error-with-probability** — each matching operation fails with
//!   probability `p`, driven by a caller-seeded deterministic RNG so a
//!   failing schedule replays exactly,
//! * **torn writes** — an `append` persists only a prefix of its payload
//!   before failing, modelling a power cut mid-write,
//! * **delays** — the next N (or all) matching operations sleep for a
//!   configured duration and then proceed *normally*, modelling a slow
//!   or hung storage link (the trace/watchdog tier drives slow-op
//!   capture and stall detection with these),
//! * **crash()** — drops all data appended since the last successful
//!   `sync` on every file written through this env, modelling a system
//!   crash on top of envs that cannot simulate one natively.
//!
//! Every injected fault is counted in [`FaultStats`], surfaced through
//! [`Env::fault_stats`] so higher layers (the DB statistics mirror, the
//! torture harness) can observe exactly what was injected. The wrapper
//! composes: `RemoteEnv::new(Arc::new(FaultInjectionEnv::new(mem)), …)`
//! yields a faulty disaggregated store.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use shield_core::{Event, EventListener};

use crate::{
    read_file_to_vec, Env, EnvError, EnvResult, FileKind, IoStats, RandomAccessFile, ReadRequest,
    SequentialFile, WritableFile,
};

/// Storage operations that fault rules can target.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultOp {
    /// Opening a file, any mode (`new_writable_file`, `new_random_access_file`,
    /// `new_sequential_file`).
    Open,
    /// Reading (`read_at` on random-access files, `read` on sequential files).
    Read,
    /// Appending to a writable file.
    Append,
    /// Flushing a writable file's application buffer.
    Flush,
    /// Syncing a writable file to durable storage.
    Sync,
    /// Renaming a file.
    Rename,
    /// Removing a file.
    Remove,
    /// Listing a directory.
    List,
}

impl FaultOp {
    /// All variants, for iterating stats tables.
    pub const ALL: [FaultOp; 8] = [
        FaultOp::Open,
        FaultOp::Read,
        FaultOp::Append,
        FaultOp::Flush,
        FaultOp::Sync,
        FaultOp::Rename,
        FaultOp::Remove,
        FaultOp::List,
    ];

    /// Index into per-op stat arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FaultOp::Open => 0,
            FaultOp::Read => 1,
            FaultOp::Append => 2,
            FaultOp::Flush => 3,
            FaultOp::Sync => 4,
            FaultOp::Rename => 5,
            FaultOp::Remove => 6,
            FaultOp::List => 7,
        }
    }

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultOp::Open => "open",
            FaultOp::Read => "read",
            FaultOp::Append => "append",
            FaultOp::Flush => "flush",
            FaultOp::Sync => "sync",
            FaultOp::Rename => "rename",
            FaultOp::Remove => "remove",
            FaultOp::List => "list",
        }
    }
}

const N_OPS: usize = FaultOp::ALL.len();

/// Deterministic RNG for probabilistic rules (SplitMix64).
#[derive(Clone, Copy, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How an armed rule decides whether the next matching operation fails.
enum Mode {
    /// Fail the next `remaining` matching operations, then disarm.
    Times { remaining: u32 },
    /// Fail each matching operation with probability `p` (deterministic).
    Probability { p: f64, rng: SplitMix64 },
}

struct Rule {
    mode: Mode,
    /// Error template cloned into each injected failure.
    error: EnvError,
    /// For `Append` rules: persist a prefix of the payload before failing
    /// (a torn write) instead of failing cleanly.
    torn: bool,
}

impl Rule {
    /// Returns the error to inject for one matching operation, if any.
    /// Mutates the rule (decrements counters, advances the RNG).
    fn check(&mut self) -> Option<EnvError> {
        let fire = match &mut self.mode {
            Mode::Times { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    true
                } else {
                    false
                }
            }
            Mode::Probability { p, rng } => rng.unit_f64() < *p,
        };
        fire.then(|| self.error.clone())
    }

    fn exhausted(&self) -> bool {
        matches!(self.mode, Mode::Times { remaining: 0 })
    }
}

/// How long a delay rule keeps firing.
enum DelayBudget {
    /// Delay the next `remaining` matching operations, then disarm.
    Times { remaining: u32 },
    /// Delay every matching operation until explicitly cleared.
    Always,
}

struct DelayRule {
    delay: Duration,
    budget: DelayBudget,
}

impl DelayRule {
    /// Returns the sleep to apply for one matching operation, if any.
    fn check(&mut self) -> Option<Duration> {
        match &mut self.budget {
            DelayBudget::Times { remaining } => {
                if *remaining > 0 {
                    *remaining -= 1;
                    Some(self.delay)
                } else {
                    None
                }
            }
            DelayBudget::Always => Some(self.delay),
        }
    }

    fn exhausted(&self) -> bool {
        matches!(self.budget, DelayBudget::Times { remaining: 0 })
    }
}

/// Counters for every fault this env has injected.
#[derive(Default)]
pub struct FaultStats {
    injected: [AtomicU64; N_OPS],
    torn_writes: AtomicU64,
    crashes: AtomicU64,
    lost_bytes: AtomicU64,
    delays: AtomicU64,
}

impl FaultStats {
    /// Takes a point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> FaultStatsSnapshot {
        let mut injected = [0u64; N_OPS];
        for (slot, counter) in injected.iter_mut().zip(self.injected.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        FaultStatsSnapshot {
            injected,
            torn_writes: self.torn_writes.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            lost_bytes: self.lost_bytes.load(Ordering::Relaxed),
            delays: self.delays.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`FaultStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Injected error count per [`FaultOp`] (indexed by [`FaultOp::index`]).
    pub injected: [u64; N_OPS],
    /// Appends that persisted only a prefix before failing.
    pub torn_writes: u64,
    /// Simulated system crashes ([`FaultInjectionEnv::crash`] calls).
    pub crashes: u64,
    /// Bytes of unsynced data dropped by crashes.
    pub lost_bytes: u64,
    /// Operations slowed by an armed delay rule (they then succeeded
    /// normally — delays are not errors and do not count as injected).
    pub delays: u64,
}

impl FaultStatsSnapshot {
    /// Injected error count for one operation.
    #[must_use]
    pub fn injected_for(&self, op: FaultOp) -> u64 {
        self.injected[op.index()]
    }

    /// Total injected errors across all operations.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// Synced-watermark bookkeeping for one file written through this env.
struct Track {
    kind: FileKind,
    synced_len: u64,
}

struct FaultState {
    rules: Mutex<HashMap<(usize, usize), Rule>>,
    delays: Mutex<HashMap<(usize, usize), DelayRule>>,
    files: Mutex<HashMap<String, Track>>,
    stats: FaultStats,
    listener: Mutex<Option<Arc<dyn EventListener>>>,
}

thread_local! {
    /// Suppresses fault events fired *by* an event sink's own I/O (the
    /// `LOG` file is written through this very env), which would
    /// otherwise recurse emit → append → check → emit.
    static EMITTING_FAULT_EVENT: Cell<bool> = const { Cell::new(false) };
}

impl FaultState {
    /// Checks the rule slot for (kind, op); returns an error to inject.
    fn check(&self, kind: FileKind, op: FaultOp) -> Option<EnvError> {
        let fired = {
            let mut rules = self.rules.lock();
            let rule = rules.get_mut(&(kind.index(), op.index()))?;
            // Torn-write rules are handled by the writable wrapper, which
            // needs to persist a prefix first; plain `check` skips them.
            if rule.torn {
                return None;
            }
            let fired = rule.check();
            if rule.exhausted() {
                rules.remove(&(kind.index(), op.index()));
            }
            fired
        };
        if fired.is_some() {
            self.stats.injected[op.index()].fetch_add(1, Ordering::Relaxed);
            self.emit(op, kind, false);
        }
        fired
    }

    /// Checks for an armed torn-write rule on (kind, Append).
    fn check_torn(&self, kind: FileKind) -> Option<EnvError> {
        let key = (kind.index(), FaultOp::Append.index());
        let fired = {
            let mut rules = self.rules.lock();
            let rule = rules.get_mut(&key)?;
            if !rule.torn {
                return None;
            }
            let fired = rule.check();
            if rule.exhausted() {
                rules.remove(&key);
            }
            fired
        };
        if fired.is_some() {
            self.stats.injected[FaultOp::Append.index()].fetch_add(1, Ordering::Relaxed);
            self.stats.torn_writes.fetch_add(1, Ordering::Relaxed);
            self.emit(FaultOp::Append, kind, true);
        }
        fired
    }

    /// Sleeps if a delay rule is armed for (kind, op). The sleep happens
    /// outside the map lock so concurrent operations on other files are
    /// not serialised behind an injected stall.
    fn maybe_delay(&self, kind: FileKind, op: FaultOp) {
        let key = (kind.index(), op.index());
        let delay = {
            let mut delays = self.delays.lock();
            let Some(rule) = delays.get_mut(&key) else { return };
            let fired = rule.check();
            if rule.exhausted() {
                delays.remove(&key);
            }
            fired
        };
        if let Some(d) = delay {
            self.stats.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(d);
        }
    }

    /// Reports an injected fault to the registered listener, outside the
    /// rules lock and guarded against the sink's own I/O re-entering.
    fn emit(&self, op: FaultOp, kind: FileKind, torn: bool) {
        if EMITTING_FAULT_EVENT.with(Cell::get) {
            return;
        }
        let listener = self.listener.lock().clone();
        if let Some(l) = listener {
            EMITTING_FAULT_EVENT.with(|e| e.set(true));
            l.on_event(&Event::FaultInjected { op: op.label(), file_kind: kind.label(), torn });
            EMITTING_FAULT_EVENT.with(|e| e.set(false));
        }
    }
}

/// An [`Env`] wrapper that injects programmable faults. See module docs.
#[derive(Clone)]
pub struct FaultInjectionEnv {
    inner: Arc<dyn Env>,
    state: Arc<FaultState>,
}

fn injected_error(kind: FileKind, op: FaultOp) -> EnvError {
    EnvError::Io(format!("injected {} fault on {}", op.label(), kind.label()))
}

impl FaultInjectionEnv {
    /// Wraps `inner` with no faults armed.
    #[must_use]
    pub fn new(inner: Arc<dyn Env>) -> Self {
        FaultInjectionEnv {
            inner,
            state: Arc::new(FaultState {
                rules: Mutex::new(HashMap::new()),
                delays: Mutex::new(HashMap::new()),
                files: Mutex::new(HashMap::new()),
                stats: FaultStats::default(),
                listener: Mutex::new(None),
            }),
        }
    }

    /// The wrapped env.
    #[must_use]
    pub fn inner(&self) -> &Arc<dyn Env> {
        &self.inner
    }

    fn arm(&self, kind: FileKind, op: FaultOp, rule: Rule) {
        self.state.rules.lock().insert((kind.index(), op.index()), rule);
    }

    /// Fails the next matching operation with a generic injected I/O error.
    pub fn error_once(&self, kind: FileKind, op: FaultOp) {
        self.error_n_times(kind, op, 1);
    }

    /// Fails the next `n` matching operations.
    pub fn error_n_times(&self, kind: FileKind, op: FaultOp, n: u32) {
        self.arm(kind, op, Rule {
            mode: Mode::Times { remaining: n },
            error: injected_error(kind, op),
            torn: false,
        });
    }

    /// Fails the next matching operation with a specific error (e.g. a
    /// [`EnvError::Corruption`] to model an unrecoverable medium fault).
    pub fn error_once_with(&self, kind: FileKind, op: FaultOp, error: EnvError) {
        self.arm(kind, op, Rule { mode: Mode::Times { remaining: 1 }, error, torn: false });
    }

    /// Fails each matching operation with probability `p`, driven by a
    /// deterministic RNG seeded with `seed` (same seed ⇒ same schedule).
    pub fn error_with_probability(&self, kind: FileKind, op: FaultOp, p: f64, seed: u64) {
        self.arm(kind, op, Rule {
            mode: Mode::Probability { p, rng: SplitMix64::new(seed) },
            error: injected_error(kind, op),
            torn: false,
        });
    }

    /// The next `n` appends to `kind` files persist only the first half of
    /// their payload, then fail — a torn write.
    pub fn torn_write_n_times(&self, kind: FileKind, n: u32) {
        self.arm(kind, FaultOp::Append, Rule {
            mode: Mode::Times { remaining: n },
            error: EnvError::Io(format!("injected torn append on {}", kind.label())),
            torn: true,
        });
    }

    /// The next `n` matching operations sleep for `delay`, then proceed
    /// normally. Batched reads (`read_at_many`) count as one operation.
    pub fn delay_n_times(&self, kind: FileKind, op: FaultOp, delay: Duration, n: u32) {
        self.state.delays.lock().insert(
            (kind.index(), op.index()),
            DelayRule { delay, budget: DelayBudget::Times { remaining: n } },
        );
    }

    /// Every matching operation sleeps for `delay` until
    /// [`clear_delay`](Self::clear_delay) / [`disarm_all`](Self::disarm_all)
    /// — a persistently slow or hung link.
    pub fn delay_always(&self, kind: FileKind, op: FaultOp, delay: Duration) {
        self.state
            .delays
            .lock()
            .insert((kind.index(), op.index()), DelayRule { delay, budget: DelayBudget::Always });
    }

    /// Clears the delay rule for (kind, op), if any.
    pub fn clear_delay(&self, kind: FileKind, op: FaultOp) {
        self.state.delays.lock().remove(&(kind.index(), op.index()));
    }

    /// Clears the rule for (kind, op), if any.
    pub fn disarm(&self, kind: FileKind, op: FaultOp) {
        self.state.rules.lock().remove(&(kind.index(), op.index()));
    }

    /// Clears every armed rule, error and delay alike.
    pub fn disarm_all(&self) {
        self.state.rules.lock().clear();
        self.state.delays.lock().clear();
    }

    /// Fault counters so far.
    #[must_use]
    pub fn stats(&self) -> FaultStatsSnapshot {
        self.state.stats.snapshot()
    }

    /// Simulates a system crash: every file written through this env is
    /// truncated back to its last successfully synced length (0 if it was
    /// never synced). Writers still holding handles must be dropped first —
    /// appends after a crash would resurrect dropped bytes.
    ///
    /// Implemented generically (read back + rewrite through the inner env)
    /// so it works on any backing store, not just [`crate::MemEnv`].
    pub fn crash(&self) -> EnvResult<()> {
        self.state.stats.crashes.fetch_add(1, Ordering::Relaxed);
        let files: Vec<(String, FileKind, u64)> = {
            let files = self.state.files.lock();
            files
                .iter()
                .map(|(path, t)| (path.clone(), t.kind, t.synced_len))
                .collect()
        };
        for (path, kind, synced_len) in files {
            if !self.inner.file_exists(&path) {
                continue;
            }
            let content = read_file_to_vec(self.inner.as_ref(), &path, kind)?;
            if (content.len() as u64) <= synced_len {
                continue;
            }
            let keep = &content[..synced_len as usize];
            self.state
                .stats
                .lost_bytes
                .fetch_add(content.len() as u64 - synced_len, Ordering::Relaxed);
            let mut f = self.inner.new_writable_file(&path, kind)?;
            f.append(keep)?;
            f.flush()?;
            f.sync()?;
        }
        Ok(())
    }
}

struct FaultWritable {
    inner: Box<dyn WritableFile>,
    state: Arc<FaultState>,
    kind: FileKind,
    path: String,
}

impl WritableFile for FaultWritable {
    fn append(&mut self, data: &[u8]) -> EnvResult<()> {
        self.state.maybe_delay(self.kind, FaultOp::Append);
        if let Some(err) = self.state.check_torn(self.kind) {
            // Persist a prefix so recovery sees a half-written record.
            let torn = &data[..data.len() / 2];
            if !torn.is_empty() {
                self.inner.append(torn)?;
                let _ = self.inner.flush();
            }
            return Err(err);
        }
        if let Some(err) = self.state.check(self.kind, FaultOp::Append) {
            return Err(err);
        }
        self.inner.append(data)
    }

    fn flush(&mut self) -> EnvResult<()> {
        if let Some(err) = self.state.check(self.kind, FaultOp::Flush) {
            return Err(err);
        }
        self.inner.flush()
    }

    fn sync(&mut self) -> EnvResult<()> {
        self.state.maybe_delay(self.kind, FaultOp::Sync);
        if let Some(err) = self.state.check(self.kind, FaultOp::Sync) {
            return Err(err);
        }
        self.inner.sync()?;
        let mut files = self.state.files.lock();
        if let Some(track) = files.get_mut(&self.path) {
            track.synced_len = self.inner.len();
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultReadable {
    inner: Arc<dyn RandomAccessFile>,
    state: Arc<FaultState>,
    kind: FileKind,
}

impl RandomAccessFile for FaultReadable {
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
        self.state.maybe_delay(self.kind, FaultOp::Read);
        if let Some(err) = self.state.check(self.kind, FaultOp::Read) {
            return Err(err);
        }
        self.inner.read_at(offset, len)
    }

    fn len(&self) -> EnvResult<u64> {
        self.inner.len()
    }

    fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
        // Delays fire once per batch (one slow round-trip), while error
        // rules below stay per-request.
        self.state.maybe_delay(self.kind, FaultOp::Read);
        // Fault rules are consulted once per request, not once per batch,
        // so an armed `error_n_times(.., 1)` fails exactly one slot and
        // the survivors still ride the inner batch path.
        let mut out: Vec<EnvResult<Bytes>> = Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || Ok(Bytes::new()));
        let mut pass: Vec<usize> = Vec::with_capacity(requests.len());
        let mut pass_reqs: Vec<ReadRequest> = Vec::with_capacity(requests.len());
        for (i, r) in requests.iter().enumerate() {
            if let Some(err) = self.state.check(self.kind, FaultOp::Read) {
                out[i] = Err(err);
            } else {
                pass.push(i);
                pass_reqs.push(*r);
            }
        }
        for (slot, result) in pass.into_iter().zip(self.inner.read_at_many(&pass_reqs)) {
            out[slot] = result;
        }
        out
    }
}

struct FaultSequential {
    inner: Box<dyn SequentialFile>,
    state: Arc<FaultState>,
    kind: FileKind,
}

impl SequentialFile for FaultSequential {
    fn read(&mut self, buf: &mut [u8]) -> EnvResult<usize> {
        self.state.maybe_delay(self.kind, FaultOp::Read);
        if let Some(err) = self.state.check(self.kind, FaultOp::Read) {
            return Err(err);
        }
        self.inner.read(buf)
    }
}

impl Env for FaultInjectionEnv {
    fn new_writable_file(&self, path: &str, kind: FileKind) -> EnvResult<Box<dyn WritableFile>> {
        if let Some(err) = self.state.check(kind, FaultOp::Open) {
            return Err(err);
        }
        let inner = self.inner.new_writable_file(path, kind)?;
        // A writable open truncates, so any previous watermark resets.
        self.state
            .files
            .lock()
            .insert(path.to_string(), Track { kind, synced_len: 0 });
        Ok(Box::new(FaultWritable {
            inner,
            state: self.state.clone(),
            kind,
            path: path.to_string(),
        }))
    }

    fn new_random_access_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Arc<dyn RandomAccessFile>> {
        if let Some(err) = self.state.check(kind, FaultOp::Open) {
            return Err(err);
        }
        Ok(Arc::new(FaultReadable {
            inner: self.inner.new_random_access_file(path, kind)?,
            state: self.state.clone(),
            kind,
        }))
    }

    fn new_sequential_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Box<dyn SequentialFile>> {
        if let Some(err) = self.state.check(kind, FaultOp::Open) {
            return Err(err);
        }
        Ok(Box::new(FaultSequential {
            inner: self.inner.new_sequential_file(path, kind)?,
            state: self.state.clone(),
            kind,
        }))
    }

    fn remove_file(&self, path: &str) -> EnvResult<()> {
        // The kind is unknown here; Remove rules match on the kind the file
        // was tracked with, falling back to Other for untracked files.
        let kind = self
            .state
            .files
            .lock()
            .get(path)
            .map_or(FileKind::Other, |t| t.kind);
        if let Some(err) = self.state.check(kind, FaultOp::Remove) {
            return Err(err);
        }
        self.state.files.lock().remove(path);
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &str, to: &str) -> EnvResult<()> {
        let kind = self
            .state
            .files
            .lock()
            .get(from)
            .map_or(FileKind::Other, |t| t.kind);
        if let Some(err) = self.state.check(kind, FaultOp::Rename) {
            return Err(err);
        }
        self.inner.rename(from, to)?;
        let mut files = self.state.files.lock();
        if let Some(track) = files.remove(from) {
            files.insert(to.to_string(), track);
        }
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> EnvResult<u64> {
        self.inner.file_size(path)
    }

    fn list_dir(&self, dir: &str) -> EnvResult<Vec<String>> {
        if let Some(err) = self.state.check(FileKind::Other, FaultOp::List) {
            return Err(err);
        }
        self.inner.list_dir(dir)
    }

    fn create_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.inner.create_dir_all(dir)
    }

    fn remove_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.inner.remove_dir_all(dir)
    }

    fn io_stats(&self) -> Option<Arc<IoStats>> {
        self.inner.io_stats()
    }

    fn fault_stats(&self) -> Option<FaultStatsSnapshot> {
        Some(self.stats())
    }

    fn set_event_listener(&self, listener: Arc<dyn EventListener>) {
        *self.state.listener.lock() = Some(listener.clone());
        self.inner.set_event_listener(listener);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemEnv;

    fn faulty() -> (FaultInjectionEnv, MemEnv) {
        let mem = MemEnv::new();
        (FaultInjectionEnv::new(Arc::new(mem.clone())), mem)
    }

    #[test]
    fn error_once_fires_exactly_once() {
        let (env, _) = faulty();
        env.error_once(FileKind::Sst, FaultOp::Open);
        assert!(env.new_writable_file("a", FileKind::Sst).is_err());
        assert!(env.new_writable_file("a", FileKind::Sst).is_ok());
        // Other kinds unaffected: the armed Sst rule does not fire for Wal.
        env.error_once(FileKind::Sst, FaultOp::Open);
        assert!(env.new_writable_file("w", FileKind::Wal).is_ok());
        assert!(env.new_writable_file("b", FileKind::Sst).is_err());
        assert_eq!(env.stats().injected_for(FaultOp::Open), 2);
    }

    #[test]
    fn error_n_times_counts_down() {
        let (env, _) = faulty();
        env.error_n_times(FileKind::Wal, FaultOp::Append, 2);
        let mut f = env.new_writable_file("w", FileKind::Wal).unwrap();
        assert!(f.append(b"x").is_err());
        assert!(f.append(b"x").is_err());
        assert!(f.append(b"x").is_ok());
        assert_eq!(env.stats().injected_for(FaultOp::Append), 2);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let (env, _) = faulty();
            env.error_with_probability(FileKind::Sst, FaultOp::Read, 0.5, seed);
            let mut f = env.new_writable_file("s", FileKind::Sst).unwrap();
            f.append(b"0123456789").unwrap();
            f.sync().unwrap();
            drop(f);
            let r = env.new_random_access_file("s", FileKind::Sst).unwrap();
            (0..64).map(|_| r.read_at(0, 4).is_err()).collect()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must replay the same schedule");
        assert!(a.iter().any(|&e| e) && !a.iter().all(|&e| e), "p=0.5 should mix");
        assert_ne!(a, run(8), "different seeds should differ");
    }

    #[test]
    fn torn_write_persists_prefix() {
        let (env, mem) = faulty();
        env.torn_write_n_times(FileKind::Wal, 1);
        let mut f = env.new_writable_file("w", FileKind::Wal).unwrap();
        assert!(f.append(&[7u8; 100]).is_err());
        drop(f);
        assert_eq!(mem.raw_content("w").unwrap().len(), 50);
        let s = env.stats();
        assert_eq!(s.torn_writes, 1);
        // Next append is clean.
        let mut f = env.new_writable_file("w2", FileKind::Wal).unwrap();
        assert!(f.append(&[7u8; 100]).is_ok());
    }

    #[test]
    fn crash_drops_unsynced_data() {
        let (env, _) = faulty();
        let mut f = env.new_writable_file("w", FileKind::Wal).unwrap();
        f.append(b"durable!").unwrap();
        f.flush().unwrap();
        f.sync().unwrap();
        f.append(b"lost").unwrap();
        f.flush().unwrap();
        drop(f);
        env.crash().unwrap();
        let content = read_file_to_vec(&env, "w", FileKind::Wal).unwrap();
        assert_eq!(content, b"durable!");
        let s = env.stats();
        assert_eq!(s.crashes, 1);
        assert_eq!(s.lost_bytes, 4);
    }

    #[test]
    fn crash_truncates_never_synced_files_to_zero() {
        let (env, _) = faulty();
        let mut f = env.new_writable_file("x", FileKind::Sst).unwrap();
        f.append(b"all of this is lost").unwrap();
        f.flush().unwrap();
        drop(f);
        env.crash().unwrap();
        assert_eq!(read_file_to_vec(&env, "x", FileKind::Sst).unwrap(), b"");
    }

    #[test]
    fn rename_carries_watermark() {
        let (env, _) = faulty();
        let mut f = env.new_writable_file("tmp", FileKind::Manifest).unwrap();
        f.append(b"manifest").unwrap();
        f.flush().unwrap();
        f.sync().unwrap();
        drop(f);
        env.rename("tmp", "MANIFEST").unwrap();
        env.crash().unwrap();
        assert_eq!(
            read_file_to_vec(&env, "MANIFEST", FileKind::Manifest).unwrap(),
            b"manifest"
        );
    }

    #[test]
    fn disarm_clears_rules() {
        let (env, _) = faulty();
        env.error_n_times(FileKind::Sst, FaultOp::Open, 100);
        env.disarm(FileKind::Sst, FaultOp::Open);
        assert!(env.new_writable_file("a", FileKind::Sst).is_ok());
        env.error_n_times(FileKind::Sst, FaultOp::Open, 100);
        env.disarm_all();
        assert!(env.new_writable_file("b", FileKind::Sst).is_ok());
        assert_eq!(env.stats().injected_total(), 0);
    }

    #[test]
    fn custom_error_kind_is_preserved() {
        let (env, _) = faulty();
        env.error_once_with(
            FileKind::Sst,
            FaultOp::Read,
            EnvError::Corruption("injected bad checksum".into()),
        );
        let mut f = env.new_writable_file("s", FileKind::Sst).unwrap();
        f.append(b"abcd").unwrap();
        f.sync().unwrap();
        drop(f);
        let r = env.new_random_access_file("s", FileKind::Sst).unwrap();
        assert!(matches!(r.read_at(0, 4), Err(EnvError::Corruption(_))));
    }

    #[test]
    fn delay_n_times_slows_then_stops() {
        let (env, _) = faulty();
        let mut f = env.new_writable_file("s", FileKind::Sst).unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        drop(f);
        env.delay_n_times(FileKind::Sst, FaultOp::Read, Duration::from_millis(20), 2);
        let r = env.new_random_access_file("s", FileKind::Sst).unwrap();
        let t = std::time::Instant::now();
        assert!(r.read_at(0, 4).is_ok(), "delays are not errors");
        assert!(r.read_at(0, 4).is_ok());
        assert!(t.elapsed() >= Duration::from_millis(40), "two delayed reads");
        let t = std::time::Instant::now();
        assert!(r.read_at(0, 4).is_ok());
        assert!(t.elapsed() < Duration::from_millis(20), "rule exhausted");
        let s = env.stats();
        assert_eq!(s.delays, 2);
        assert_eq!(s.injected_total(), 0, "delays never count as injected errors");
    }

    #[test]
    fn delay_always_until_cleared_and_batches_count_once() {
        let (env, _) = faulty();
        let mut f = env.new_writable_file("s", FileKind::Sst).unwrap();
        f.append(b"0123456789").unwrap();
        f.sync().unwrap();
        drop(f);
        env.delay_always(FileKind::Sst, FaultOp::Read, Duration::from_millis(15));
        let r = env.new_random_access_file("s", FileKind::Sst).unwrap();
        let reqs = [
            ReadRequest { offset: 0, len: 4 },
            ReadRequest { offset: 4, len: 4 },
        ];
        let t = std::time::Instant::now();
        assert!(r.read_at_many(&reqs).into_iter().all(|r| r.is_ok()));
        assert!(t.elapsed() >= Duration::from_millis(15));
        assert_eq!(env.stats().delays, 1, "one delay per batch, not per request");
        env.clear_delay(FileKind::Sst, FaultOp::Read);
        let t = std::time::Instant::now();
        assert!(r.read_at(0, 4).is_ok());
        assert!(t.elapsed() < Duration::from_millis(15));
        // disarm_all also clears delays.
        env.delay_always(FileKind::Sst, FaultOp::Read, Duration::from_millis(15));
        env.disarm_all();
        let t = std::time::Instant::now();
        assert!(r.read_at(0, 4).is_ok());
        assert!(t.elapsed() < Duration::from_millis(15));
    }

    #[test]
    fn composes_under_remote_env() {
        let (env, _) = faulty();
        let remote = crate::RemoteEnv::new(
            Arc::new(env.clone()),
            crate::NetworkModel::unlimited(),
        );
        env.error_once(FileKind::Sst, FaultOp::Open);
        assert!(remote.new_writable_file("s", FileKind::Sst).is_err());
        assert!(remote.new_writable_file("s", FileKind::Sst).is_ok());
        // Fault counters are visible through the remote wrapper.
        assert_eq!(remote.fault_stats().unwrap().injected_for(FaultOp::Open), 1);
    }
}
