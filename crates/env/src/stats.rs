//! I/O accounting, feeding the paper's Table 3 (read/write GiB per server,
//! operation, and file type).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::FileKind;

/// Thread-safe read/write byte counters, broken down by [`FileKind`].
///
/// One `IoStats` instance represents one "node" (e.g. the compute server's
/// view of local storage, or the storage server's view of HDFS). Multiple
/// envs may share an instance.
#[derive(Default)]
pub struct IoStats {
    read_bytes: [AtomicU64; 4],
    written_bytes: [AtomicU64; 4],
    read_ops: [AtomicU64; 4],
    write_ops: [AtomicU64; 4],
}

impl IoStats {
    /// Creates a zeroed counter set.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Records `n` bytes read from a file of `kind`.
    pub fn record_read(&self, kind: FileKind, n: u64) {
        self.read_bytes[kind.index()].fetch_add(n, Ordering::Relaxed);
        self.read_ops[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` bytes written to a file of `kind`.
    pub fn record_write(&self, kind: FileKind, n: u64) {
        self.written_bytes[kind.index()].fetch_add(n, Ordering::Relaxed);
        self.write_ops[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    #[must_use]
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let mut s = IoStatsSnapshot::default();
        for k in FileKind::ALL {
            let i = k.index();
            s.read_bytes[i] = self.read_bytes[i].load(Ordering::Relaxed);
            s.written_bytes[i] = self.written_bytes[i].load(Ordering::Relaxed);
            s.read_ops[i] = self.read_ops[i].load(Ordering::Relaxed);
            s.write_ops[i] = self.write_ops[i].load(Ordering::Relaxed);
        }
        s
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        for i in 0..4 {
            self.read_bytes[i].store(0, Ordering::Relaxed);
            self.written_bytes[i].store(0, Ordering::Relaxed);
            self.read_ops[i].store(0, Ordering::Relaxed);
            self.write_ops[i].store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of an [`IoStats`].
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Bytes read, indexed by [`FileKind::index`].
    pub read_bytes: [u64; 4],
    /// Bytes written, indexed by [`FileKind::index`].
    pub written_bytes: [u64; 4],
    /// Read operations, indexed by [`FileKind::index`].
    pub read_ops: [u64; 4],
    /// Write operations, indexed by [`FileKind::index`].
    pub write_ops: [u64; 4],
}

impl IoStatsSnapshot {
    /// Total bytes read across all file kinds.
    #[must_use]
    pub fn total_read(&self) -> u64 {
        self.read_bytes.iter().sum()
    }

    /// Total bytes written across all file kinds.
    #[must_use]
    pub fn total_written(&self) -> u64 {
        self.written_bytes.iter().sum()
    }

    /// Bytes read for one kind.
    #[must_use]
    pub fn read_for(&self, kind: FileKind) -> u64 {
        self.read_bytes[kind.index()]
    }

    /// Bytes written for one kind.
    #[must_use]
    pub fn written_for(&self, kind: FileKind) -> u64 {
        self.written_bytes[kind.index()]
    }

    /// Difference `self - earlier`, saturating at zero.
    #[must_use]
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        let mut out = IoStatsSnapshot::default();
        for i in 0..4 {
            out.read_bytes[i] = self.read_bytes[i].saturating_sub(earlier.read_bytes[i]);
            out.written_bytes[i] = self.written_bytes[i].saturating_sub(earlier.written_bytes[i]);
            out.read_ops[i] = self.read_ops[i].saturating_sub(earlier.read_ops[i]);
            out.write_ops[i] = self.write_ops[i].saturating_sub(earlier.write_ops[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::new();
        s.record_read(FileKind::Sst, 100);
        s.record_read(FileKind::Sst, 50);
        s.record_write(FileKind::Wal, 10);
        let snap = s.snapshot();
        assert_eq!(snap.read_for(FileKind::Sst), 150);
        assert_eq!(snap.written_for(FileKind::Wal), 10);
        assert_eq!(snap.total_read(), 150);
        assert_eq!(snap.total_written(), 10);
        assert_eq!(snap.read_ops[FileKind::Sst.index()], 2);
    }

    #[test]
    fn delta_and_reset() {
        let s = IoStats::new();
        s.record_write(FileKind::Sst, 5);
        let a = s.snapshot();
        s.record_write(FileKind::Sst, 7);
        let b = s.snapshot();
        assert_eq!(b.delta_since(&a).written_for(FileKind::Sst), 7);
        s.reset();
        assert_eq!(s.snapshot().total_written(), 0);
    }
}
