//! An in-memory [`Env`] with explicit durability modeling.
//!
//! Every file tracks two watermarks: the bytes handed to the "OS"
//! (`flush`ed) and the bytes made durable (`sync`ed). Dropping a writable
//! handle without flushing loses the application buffer — a *process*
//! crash. Calling [`MemEnv::crash_system`] truncates every file to its
//! synced length — a *system* crash, losing whatever only the OS buffer
//! held. This is precisely the persistence distinction the paper's WAL
//! discussion (§2.1, §5.3) is built on, and the crash-recovery integration
//! tests exercise both failure modes.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use crate::{
    Env, EnvError, EnvResult, FileKind, IoStats, RandomAccessFile, ReadRequest, SequentialFile,
    WritableFile,
};

#[derive(Default)]
struct FileData {
    /// Bytes the OS has (flushed). Readers see exactly this.
    os_content: Vec<u8>,
    /// Prefix of `os_content` that is durable (synced).
    synced_len: usize,
}

type FileRef = Arc<RwLock<FileData>>;

#[derive(Default)]
struct Inner {
    files: HashMap<String, FileRef>,
    dirs: std::collections::HashSet<String>,
}

/// In-memory filesystem with crash simulation. Cloning shares the store.
#[derive(Clone)]
pub struct MemEnv {
    inner: Arc<Mutex<Inner>>,
    stats: Arc<IoStats>,
}

impl Default for MemEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl MemEnv {
    /// Creates an empty in-memory filesystem.
    #[must_use]
    pub fn new() -> Self {
        MemEnv { inner: Arc::new(Mutex::new(Inner::default())), stats: IoStats::new() }
    }

    /// Simulates a whole-system crash: every file is truncated to its last
    /// synced length. Data that reached only the OS buffer is lost.
    pub fn crash_system(&self) {
        let inner = self.inner.lock();
        for file in inner.files.values() {
            let mut f = file.write();
            let keep = f.synced_len;
            f.os_content.truncate(keep);
        }
    }

    /// Total number of files currently stored.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// Returns the current (OS-visible) content of a file, for tests that
    /// inspect raw bytes (e.g. the confidentiality greps).
    pub fn raw_content(&self, path: &str) -> EnvResult<Vec<u8>> {
        let f = self.get(path)?;
        let content = f.read().os_content.clone();
        Ok(content)
    }

    /// Replaces a file's content wholesale, marking it durable — the
    /// tamper-injection primitive for the adversarial test suite (an
    /// attacker with media access can rewrite anything).
    pub fn set_raw_content(&self, path: &str, content: Vec<u8>) -> EnvResult<()> {
        let f = self.get(path)?;
        let mut g = f.write();
        g.synced_len = content.len();
        g.os_content = content;
        Ok(())
    }

    fn get(&self, path: &str) -> EnvResult<FileRef> {
        let inner = self.inner.lock();
        inner
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| EnvError::NotFound(path.to_string()))
    }
}

struct MemWritable {
    file: FileRef,
    app_buffer: Vec<u8>,
    logical_len: u64,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> EnvResult<()> {
        self.app_buffer.extend_from_slice(data);
        self.logical_len += data.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> EnvResult<()> {
        if !self.app_buffer.is_empty() {
            self.stats.record_write(self.kind, self.app_buffer.len() as u64);
            let mut f = self.file.write();
            f.os_content.append(&mut self.app_buffer);
        }
        Ok(())
    }

    fn sync(&mut self) -> EnvResult<()> {
        self.flush()?;
        let mut f = self.file.write();
        f.synced_len = f.os_content.len();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.logical_len
    }
}

struct MemReadable {
    file: FileRef,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for MemReadable {
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
        // Leaf-level read: PerfContext block_read covers exactly the raw
        // "device" copy, below any decryption wrapper.
        let t = shield_core::perf::timer();
        let f = self.file.read();
        let start = (offset as usize).min(f.os_content.len());
        let end = (start + len).min(f.os_content.len());
        self.stats.record_read(self.kind, (end - start) as u64);
        let data = Bytes::copy_from_slice(&f.os_content[start..end]);
        shield_core::perf::add_elapsed(shield_core::PerfMetric::BlockRead, t);
        Ok(data)
    }

    fn len(&self) -> EnvResult<u64> {
        Ok(self.file.read().os_content.len() as u64)
    }

    fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
        // One lock acquisition and one I/O op per request kind of copy:
        // the batch is served against a single consistent view of the file.
        let t = shield_core::perf::timer();
        let f = self.file.read();
        let out = requests
            .iter()
            .map(|r| {
                let start = (r.offset as usize).min(f.os_content.len());
                let end = (start + r.len).min(f.os_content.len());
                self.stats.record_read(self.kind, (end - start) as u64);
                Ok(Bytes::copy_from_slice(&f.os_content[start..end]))
            })
            .collect();
        shield_core::perf::add_elapsed(shield_core::PerfMetric::BlockRead, t);
        out
    }
}

struct MemSequential {
    file: FileRef,
    pos: usize,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl SequentialFile for MemSequential {
    fn read(&mut self, buf: &mut [u8]) -> EnvResult<usize> {
        let f = self.file.read();
        let available = f.os_content.len().saturating_sub(self.pos);
        let n = available.min(buf.len());
        buf[..n].copy_from_slice(&f.os_content[self.pos..self.pos + n]);
        self.pos += n;
        self.stats.record_read(self.kind, n as u64);
        Ok(n)
    }
}

impl Env for MemEnv {
    fn new_writable_file(&self, path: &str, kind: FileKind) -> EnvResult<Box<dyn WritableFile>> {
        let file = {
            let mut inner = self.inner.lock();
            let file: FileRef = Arc::new(RwLock::new(FileData::default()));
            inner.files.insert(path.to_string(), file.clone());
            file
        };
        Ok(Box::new(MemWritable {
            file,
            app_buffer: Vec::new(),
            logical_len: 0,
            kind,
            stats: self.stats.clone(),
        }))
    }

    fn new_random_access_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Arc<dyn RandomAccessFile>> {
        Ok(Arc::new(MemReadable { file: self.get(path)?, kind, stats: self.stats.clone() }))
    }

    fn new_sequential_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Box<dyn SequentialFile>> {
        Ok(Box::new(MemSequential {
            file: self.get(path)?,
            pos: 0,
            kind,
            stats: self.stats.clone(),
        }))
    }

    fn remove_file(&self, path: &str) -> EnvResult<()> {
        let mut inner = self.inner.lock();
        inner
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| EnvError::NotFound(path.to_string()))
    }

    fn rename(&self, from: &str, to: &str) -> EnvResult<()> {
        let mut inner = self.inner.lock();
        let f = inner
            .files
            .remove(from)
            .ok_or_else(|| EnvError::NotFound(from.to_string()))?;
        inner.files.insert(to.to_string(), f);
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    fn file_size(&self, path: &str) -> EnvResult<u64> {
        Ok(self.get(path)?.read().os_content.len() as u64)
    }

    fn list_dir(&self, dir: &str) -> EnvResult<Vec<String>> {
        let prefix = if dir.is_empty() || dir.ends_with('/') {
            dir.to_string()
        } else {
            format!("{dir}/")
        };
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner
            .files
            .keys()
            .filter_map(|path| {
                let rest = path.strip_prefix(&prefix)?;
                if rest.is_empty() || rest.contains('/') {
                    None
                } else {
                    Some(rest.to_string())
                }
            })
            .collect();
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.inner.lock().dirs.insert(dir.to_string());
        Ok(())
    }

    fn remove_dir_all(&self, dir: &str) -> EnvResult<()> {
        let prefix = if dir.ends_with('/') { dir.to_string() } else { format!("{dir}/") };
        let mut inner = self.inner.lock();
        inner.files.retain(|path, _| !path.starts_with(&prefix));
        inner.dirs.remove(dir);
        Ok(())
    }

    fn io_stats(&self) -> Option<Arc<IoStats>> {
        Some(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_all(env: &MemEnv, path: &str, data: &[u8], sync: bool) {
        let mut f = env.new_writable_file(path, FileKind::Other).unwrap();
        f.append(data).unwrap();
        f.flush().unwrap();
        if sync {
            f.sync().unwrap();
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let env = MemEnv::new();
        write_all(&env, "a/b.txt", b"hello world", true);
        let r = env.new_random_access_file("a/b.txt", FileKind::Other).unwrap();
        assert_eq!(&r.read_at(0, 5).unwrap()[..], b"hello");
        assert_eq!(&r.read_at(6, 100).unwrap()[..], b"world");
        assert_eq!(r.len().unwrap(), 11);
    }

    #[test]
    fn sequential_read() {
        let env = MemEnv::new();
        write_all(&env, "f", b"abcdef", true);
        let mut s = env.new_sequential_file("f", FileKind::Other).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(s.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
        assert_eq!(s.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn system_crash_loses_unsynced_data() {
        let env = MemEnv::new();
        let mut f = env.new_writable_file("wal", FileKind::Wal).unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b"-volatile").unwrap();
        f.flush().unwrap(); // reaches the OS buffer only
        drop(f);
        assert_eq!(env.file_size("wal").unwrap(), 16);
        env.crash_system();
        assert_eq!(env.raw_content("wal").unwrap(), b"durable");
    }

    #[test]
    fn process_crash_keeps_flushed_data() {
        let env = MemEnv::new();
        let mut f = env.new_writable_file("wal", FileKind::Wal).unwrap();
        f.append(b"flushed").unwrap();
        f.flush().unwrap();
        f.append(b"app-buffered-only").unwrap();
        drop(f); // process crash: app buffer lost, OS buffer kept
        assert_eq!(env.raw_content("wal").unwrap(), b"flushed");
    }

    #[test]
    fn list_dir_only_direct_children() {
        let env = MemEnv::new();
        write_all(&env, "db/000001.sst", b"x", true);
        write_all(&env, "db/000002.log", b"x", true);
        write_all(&env, "db/sub/deep.txt", b"x", true);
        write_all(&env, "other/file", b"x", true);
        assert_eq!(env.list_dir("db").unwrap(), vec!["000001.sst", "000002.log"]);
    }

    #[test]
    fn rename_and_remove() {
        let env = MemEnv::new();
        write_all(&env, "a", b"data", true);
        env.rename("a", "b").unwrap();
        assert!(!env.file_exists("a"));
        assert!(env.file_exists("b"));
        env.remove_file("b").unwrap();
        assert!(matches!(env.remove_file("b"), Err(EnvError::NotFound(_))));
    }

    #[test]
    fn remove_dir_all_removes_subtree() {
        let env = MemEnv::new();
        write_all(&env, "db/1", b"x", true);
        write_all(&env, "db/2", b"x", true);
        write_all(&env, "db2/3", b"x", true);
        env.remove_dir_all("db").unwrap();
        assert!(!env.file_exists("db/1"));
        assert!(env.file_exists("db2/3"));
    }

    #[test]
    fn stats_account_reads_and_writes() {
        let env = MemEnv::new();
        write_all(&env, "s.sst", b"0123456789", true);
        let r = env.new_random_access_file("s.sst", FileKind::Sst, ).unwrap();
        let _ = r.read_at(0, 4).unwrap();
        let snap = env.io_stats().unwrap().snapshot();
        assert_eq!(snap.written_for(FileKind::Other), 10);
        assert_eq!(snap.read_for(FileKind::Sst), 4);
    }

    #[test]
    fn truncating_recreate() {
        let env = MemEnv::new();
        write_all(&env, "f", b"long old content", true);
        write_all(&env, "f", b"new", true);
        assert_eq!(env.raw_content("f").unwrap(), b"new");
    }
}
