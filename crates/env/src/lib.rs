//! Storage environment abstraction for the SHIELD reproduction.
//!
//! The LSM engine never touches `std::fs` directly; all persistence goes
//! through the [`Env`] trait so the same engine runs against:
//!
//! * [`PosixEnv`] — the local filesystem (the paper's monolithic setup),
//! * [`MemEnv`] — an in-memory filesystem that models the OS page-cache
//!   buffer and can simulate *process* crashes (flushed data survives) and
//!   *system* crashes (only synced data survives), which is exactly the
//!   persistence distinction behind the paper's WAL-buffer trade-off (§5.3),
//! * [`RemoteEnv`] — any inner env wrapped with a network model (round-trip
//!   latency plus a bandwidth token bucket) and per-node I/O accounting,
//!   standing in for the paper's HDFS disaggregated-storage cluster (§6.1).
//!
//! Every open is tagged with a [`FileKind`] so that [`IoStats`] can report
//! read/write bytes per file type and per node — the data behind the
//! paper's Table 3.

pub mod fault;
pub mod mem;
pub mod posix;
pub mod remote;
pub mod stats;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

pub use fault::{FaultInjectionEnv, FaultOp, FaultStats, FaultStatsSnapshot};
pub use mem::MemEnv;
pub use posix::PosixEnv;
pub use remote::{NetworkModel, RemoteEnv};
pub use stats::{IoStats, IoStatsSnapshot};

/// Classification of a file for I/O accounting and encryption policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FileKind {
    /// Write-ahead log segments.
    Wal,
    /// Sorted string table files.
    Sst,
    /// MANIFEST / CURRENT metadata files.
    Manifest,
    /// Anything else (options files, DEK cache, …).
    Other,
}

impl FileKind {
    /// All variants, for iterating stats tables.
    pub const ALL: [FileKind; 4] =
        [FileKind::Wal, FileKind::Sst, FileKind::Manifest, FileKind::Other];

    /// Index into per-kind stat arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FileKind::Wal => 0,
            FileKind::Sst => 1,
            FileKind::Manifest => 2,
            FileKind::Other => 3,
        }
    }

    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FileKind::Wal => "WAL",
            FileKind::Sst => "SST",
            FileKind::Manifest => "MANIFEST",
            FileKind::Other => "OTHER",
        }
    }
}

/// Errors surfaced by environment operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The named file or directory does not exist.
    NotFound(String),
    /// The file already exists and exclusive creation was requested.
    AlreadyExists(String),
    /// Data failed validation (checksum, truncation) at the env layer.
    Corruption(String),
    /// Any other I/O failure.
    Io(String),
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::NotFound(p) => write!(f, "not found: {p}"),
            EnvError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            EnvError::Corruption(m) => write!(f, "corruption: {m}"),
            EnvError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for EnvError {}

impl From<std::io::Error> for EnvError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::NotFound => EnvError::NotFound(e.to_string()),
            std::io::ErrorKind::AlreadyExists => EnvError::AlreadyExists(e.to_string()),
            _ => EnvError::Io(e.to_string()),
        }
    }
}

/// Result alias for env operations.
pub type EnvResult<T> = Result<T, EnvError>;

/// An append-only writable file.
///
/// The three-stage durability model mirrors POSIX buffered I/O:
/// `append` lands in the application buffer, `flush` hands data to the
/// "OS" (page cache), and `sync` makes it durable against system crashes.
pub trait WritableFile: Send {
    /// Appends `data` to the application buffer.
    fn append(&mut self, data: &[u8]) -> EnvResult<()>;
    /// Flushes the application buffer to the OS buffer.
    fn flush(&mut self) -> EnvResult<()>;
    /// Makes all previously flushed data durable.
    fn sync(&mut self) -> EnvResult<()>;
    /// Total bytes appended so far (the logical file length).
    fn len(&self) -> u64;
    /// True if nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One read in a batch submitted through [`RandomAccessFile::read_at_many`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReadRequest {
    /// Byte offset of the read.
    pub offset: u64,
    /// Number of bytes requested.
    pub len: usize,
}

/// A file readable at arbitrary offsets (used for SST files).
pub trait RandomAccessFile: Send + Sync {
    /// Reads up to `len` bytes starting at `offset`. Returns fewer bytes
    /// only at end-of-file.
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes>;
    /// Total file length in bytes.
    fn len(&self) -> EnvResult<u64>;
    /// True if the file is empty.
    fn is_empty(&self) -> EnvResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Submits a batch of reads and returns one result per request, in
    /// request order. A failed slot never poisons its neighbors.
    ///
    /// The default implementation issues the reads sequentially; envs
    /// with a cheaper batch path (one lock acquisition, one network round
    /// trip) override it.
    fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
        requests.iter().map(|r| self.read_at(r.offset, r.len)).collect()
    }
}

/// Reads currently in flight through [`ReadQueue`] submissions,
/// process-wide.
static INFLIGHT_READS: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`INFLIGHT_READS`] since process start.
static INFLIGHT_READS_PEAK: AtomicU64 = AtomicU64::new(0);

/// Current number of batched reads in flight across all [`ReadQueue`]s.
#[must_use]
pub fn inflight_reads() -> u64 {
    INFLIGHT_READS.load(Ordering::Relaxed)
}

/// High-water mark of concurrently in-flight batched reads since process
/// start. This is the value mirrored into the `env_inflight_reads`
/// gauge: the instantaneous count is almost always zero when a metrics
/// snapshot is taken, the peak shows how deep the queue actually ran.
#[must_use]
pub fn inflight_reads_peak() -> u64 {
    INFLIGHT_READS_PEAK.load(Ordering::Relaxed)
}

/// An io_uring-style submission queue over [`RandomAccessFile::read_at_many`]
/// with a bounded in-flight depth.
///
/// Submitting a batch larger than `depth` splits it into windows of at
/// most `depth` requests; each window is handed to the file's batch read
/// as one submission, so no more than `depth` reads from this queue are
/// ever in flight against a single file at once. The queue also maintains
/// the process-wide in-flight gauge read by [`inflight_reads`] /
/// [`inflight_reads_peak`].
pub struct ReadQueue {
    depth: usize,
}

impl ReadQueue {
    /// Creates a queue with the given in-flight depth (clamped to ≥ 1).
    #[must_use]
    pub fn new(depth: usize) -> Self {
        ReadQueue { depth: depth.max(1) }
    }

    /// The bounded in-flight depth of this queue.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Submits `requests` against `file` in windows of at most `depth`,
    /// returning one result per request in request order.
    pub fn submit(
        &self,
        file: &dyn RandomAccessFile,
        requests: &[ReadRequest],
    ) -> Vec<EnvResult<Bytes>> {
        let mut out = Vec::with_capacity(requests.len());
        for window in requests.chunks(self.depth) {
            out.extend(self.submit_window(file, window));
        }
        out
    }

    /// Submits a single window (at most `depth` requests) as one batch,
    /// keeping the in-flight gauge accurate for its duration.
    pub fn submit_window(
        &self,
        file: &dyn RandomAccessFile,
        window: &[ReadRequest],
    ) -> Vec<EnvResult<Bytes>> {
        debug_assert!(window.len() <= self.depth, "window exceeds queue depth");
        let n = window.len() as u64;
        let inflight = INFLIGHT_READS.fetch_add(n, Ordering::Relaxed) + n;
        INFLIGHT_READS_PEAK.fetch_max(inflight, Ordering::Relaxed);
        let results = file.read_at_many(window);
        INFLIGHT_READS.fetch_sub(n, Ordering::Relaxed);
        results
    }
}

/// A file read front to back (used for WAL/MANIFEST replay).
pub trait SequentialFile: Send {
    /// Reads up to `buf.len()` bytes; returns the number read (0 at EOF).
    fn read(&mut self, buf: &mut [u8]) -> EnvResult<usize>;
}

/// A storage environment: the filesystem the engine runs against.
pub trait Env: Send + Sync {
    /// Creates (truncating) a writable file.
    fn new_writable_file(&self, path: &str, kind: FileKind) -> EnvResult<Box<dyn WritableFile>>;
    /// Opens an existing file for random-access reads.
    fn new_random_access_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Arc<dyn RandomAccessFile>>;
    /// Opens an existing file for sequential reads.
    fn new_sequential_file(&self, path: &str, kind: FileKind)
        -> EnvResult<Box<dyn SequentialFile>>;
    /// Removes a file.
    fn remove_file(&self, path: &str) -> EnvResult<()>;
    /// Atomically renames `from` to `to` (replacing `to`).
    fn rename(&self, from: &str, to: &str) -> EnvResult<()>;
    /// True if the file exists.
    fn file_exists(&self, path: &str) -> bool;
    /// Size of the file in bytes.
    fn file_size(&self, path: &str) -> EnvResult<u64>;
    /// Lists the file names (not full paths) directly inside `dir`.
    fn list_dir(&self, dir: &str) -> EnvResult<Vec<String>>;
    /// Creates `dir` and all parents.
    fn create_dir_all(&self, dir: &str) -> EnvResult<()>;
    /// Recursively removes `dir`.
    fn remove_dir_all(&self, dir: &str) -> EnvResult<()>;
    /// The I/O statistics sink for this env, if any.
    fn io_stats(&self) -> Option<Arc<IoStats>> {
        None
    }
    /// Fault-injection counters, if this env (or one it wraps) injects
    /// faults. `None` for ordinary envs.
    fn fault_stats(&self) -> Option<FaultStatsSnapshot> {
        None
    }
    /// Registers an observability event listener. Ordinary envs have
    /// nothing to report and ignore it; wrapping envs forward it, and
    /// the fault-injection env emits [`shield_core::Event::FaultInjected`]
    /// through it. The engine calls this once at `Db::open`.
    fn set_event_listener(&self, _listener: Arc<dyn shield_core::EventListener>) {}
}

/// Reads an entire file into memory.
pub fn read_file_to_vec(env: &dyn Env, path: &str, kind: FileKind) -> EnvResult<Vec<u8>> {
    let mut f = env.new_sequential_file(path, kind)?;
    let mut out = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = f.read(&mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    Ok(out)
}

/// Writes `data` to `path` durably, replacing any existing file, via a
/// temp-file + rename so readers never observe a partial write.
pub fn write_file_atomic(
    env: &dyn Env,
    path: &str,
    kind: FileKind,
    data: &[u8],
) -> EnvResult<()> {
    let tmp = format!("{path}.tmp");
    {
        let mut f = env.new_writable_file(&tmp, kind)?;
        f.append(data)?;
        f.flush()?;
        f.sync()?;
    }
    env.rename(&tmp, path)
}

/// Joins a directory and a file name with `/`, avoiding doubled separators.
#[must_use]
pub fn join_path(dir: &str, name: &str) -> String {
    if dir.is_empty() {
        name.to_string()
    } else if dir.ends_with('/') {
        format!("{dir}{name}")
    } else {
        format!("{dir}/{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_path_variants() {
        assert_eq!(join_path("a", "b"), "a/b");
        assert_eq!(join_path("a/", "b"), "a/b");
        assert_eq!(join_path("", "b"), "b");
    }

    #[test]
    fn file_kind_indices_unique() {
        let mut seen = [false; 4];
        for k in FileKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
    }

    #[test]
    fn env_error_display() {
        assert_eq!(EnvError::NotFound("x".into()).to_string(), "not found: x");
        let io: EnvError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, EnvError::NotFound(_)));
    }

    /// A file whose batch path is left at the trait default; remembers
    /// how deep each `read_at_many` submission was.
    struct CountingFile {
        data: Vec<u8>,
        batch_sizes: std::sync::Mutex<Vec<usize>>,
    }

    impl RandomAccessFile for CountingFile {
        fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
            let start = (offset as usize).min(self.data.len());
            let end = (start + len).min(self.data.len());
            Ok(Bytes::copy_from_slice(&self.data[start..end]))
        }

        fn len(&self) -> EnvResult<u64> {
            Ok(self.data.len() as u64)
        }

        fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
            self.batch_sizes.lock().unwrap().push(requests.len());
            requests.iter().map(|r| self.read_at(r.offset, r.len)).collect()
        }
    }

    #[test]
    fn default_read_at_many_matches_sequential_reads() {
        struct Plain(Vec<u8>);
        impl RandomAccessFile for Plain {
            fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
                let start = (offset as usize).min(self.0.len());
                let end = (start + len).min(self.0.len());
                Ok(Bytes::copy_from_slice(&self.0[start..end]))
            }
            fn len(&self) -> EnvResult<u64> {
                Ok(self.0.len() as u64)
            }
        }
        let f = Plain((0u8..200).collect());
        let reqs =
            [ReadRequest { offset: 0, len: 4 }, ReadRequest { offset: 10, len: 3 }, ReadRequest {
                offset: 198,
                len: 10,
            }];
        let batch = f.read_at_many(&reqs);
        assert_eq!(batch.len(), 3);
        for (r, req) in batch.iter().zip(reqs.iter()) {
            assert_eq!(r.as_ref().unwrap(), &f.read_at(req.offset, req.len).unwrap());
        }
        // Short read at EOF, not an error.
        assert_eq!(batch[2].as_ref().unwrap().len(), 2);
    }

    #[test]
    fn read_queue_windows_by_depth_and_tracks_inflight_peak() {
        let f = CountingFile {
            data: (0u8..255).collect(),
            batch_sizes: std::sync::Mutex::new(Vec::new()),
        };
        let queue = ReadQueue::new(4);
        assert_eq!(queue.depth(), 4);
        let reqs: Vec<ReadRequest> =
            (0..10).map(|i| ReadRequest { offset: i * 8, len: 8 }).collect();
        let out = queue.submit(&f, &reqs);
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().as_ref(), &f.data[i * 8..i * 8 + 8]);
        }
        // 10 requests at depth 4 → windows of 4, 4, 2.
        assert_eq!(*f.batch_sizes.lock().unwrap(), vec![4, 4, 2]);
        assert!(inflight_reads_peak() >= 4, "peak gauge must see the full window depth");
        assert_eq!(inflight_reads(), 0, "gauge must drain after submission");
    }

    #[test]
    fn read_queue_depth_clamped_to_one() {
        assert_eq!(ReadQueue::new(0).depth(), 1);
    }
}
