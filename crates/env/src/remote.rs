//! Disaggregated-storage simulation: wraps any [`Env`] with a network model.
//!
//! The paper's DS setup puts SST files (and, with offloaded compaction, the
//! compaction I/O itself) on a storage server reached over a 1 Gbps switch
//! (§6.1). [`RemoteEnv`] reproduces the two first-order effects of that
//! link: a per-operation round-trip latency and a shared bandwidth pipe.
//! The model is honest about concurrency, the way a real network is:
//!
//! * **RTTs overlap.** N requests in flight from N threads each complete
//!   after one round trip, not after N stacked round trips — propagation
//!   delay is per-request, not a shared resource.
//! * **Bandwidth is shared.** Payload bytes still contend for the one
//!   link: transmissions are granted FIFO slots on the pipe, so a
//!   request's completion is `max(now + rtt, end of its transmission)`.
//! * **Batches pay one RTT.** [`RandomAccessFile::read_at_many`] rides a
//!   single request/response exchange: one round trip for the whole
//!   submission plus the shared transfer time of the total payload.
//!
//! Both knobs are runtime-adjustable so the sensitivity sweeps
//! (Fig. 16, 18) can vary them mid-experiment.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use crate::{
    Env, EnvResult, FileKind, IoStats, RandomAccessFile, ReadRequest, SequentialFile,
    WritableFile,
};

/// Parameters of the simulated network between compute and storage.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Round-trip latency charged once per remote operation.
    pub rtt: Duration,
    /// Link bandwidth in bytes/second; `None` means unlimited.
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Client-side write-packet size: small appends are batched into
    /// packets of this size before paying a network trip, as the HDFS
    /// client does (64 KiB packets). `sync` always drains.
    pub write_packet_bytes: u64,
}

impl NetworkModel {
    /// An intra-datacenter profile: 500 µs RTT (the figure the paper cites)
    /// over a 1 Gbps link.
    #[must_use]
    pub fn intra_datacenter() -> Self {
        NetworkModel {
            rtt: Duration::from_micros(500),
            bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbps
            write_packet_bytes: 64 * 1024,
        }
    }

    /// No latency, no bandwidth cap — useful for tests that only need the
    /// accounting side of [`RemoteEnv`].
    #[must_use]
    pub fn unlimited() -> Self {
        NetworkModel {
            rtt: Duration::ZERO,
            bandwidth_bytes_per_sec: None,
            write_packet_bytes: 64 * 1024,
        }
    }
}

struct Pipe {
    model: NetworkModel,
    /// The instant at which the shared link's transmit path is free again.
    next_free: Instant,
}

/// Shared network state; cheap to clone into file handles.
#[derive(Clone)]
struct Link {
    pipe: Arc<Mutex<Pipe>>,
}

impl Link {
    fn new(model: NetworkModel) -> Self {
        Link { pipe: Arc::new(Mutex::new(Pipe { model, next_free: Instant::now() })) }
    }

    /// Charges one round trip plus the FIFO-shared transfer time for
    /// `bytes`, sleeping until the request completes.
    ///
    /// The round trip is *this request's own* propagation delay: requests
    /// issued concurrently from other threads overlap their RTTs instead
    /// of queuing behind each other. Only the payload transmission holds
    /// the shared pipe, so completion is `max(now + rtt, tx_end)` where
    /// `tx_end` is the end of this request's FIFO transmission slot.
    fn transfer(&self, bytes: u64) {
        let wake = {
            let mut pipe = self.pipe.lock();
            let now = Instant::now();
            let duration = match pipe.model.bandwidth_bytes_per_sec {
                Some(bw) if bw > 0 => {
                    Duration::from_nanos((bytes.saturating_mul(1_000_000_000)) / bw)
                }
                _ => Duration::ZERO,
            };
            let tx_start = pipe.next_free.max(now);
            let tx_end = tx_start + duration;
            pipe.next_free = tx_end;
            (now + pipe.model.rtt).max(tx_end)
        };
        let now = Instant::now();
        if wake > now {
            std::thread::sleep(wake - now);
        }
    }

    /// Charges a metadata round trip (no payload).
    fn round_trip(&self) {
        self.transfer(0);
    }

    fn set_model(&self, model: NetworkModel) {
        self.pipe.lock().model = model;
    }

    fn model(&self) -> NetworkModel {
        self.pipe.lock().model
    }
}

/// An [`Env`] that forwards to `inner` while charging network costs and
/// recording I/O against its own [`IoStats`] (the "storage node" view).
#[derive(Clone)]
pub struct RemoteEnv {
    inner: Arc<dyn Env>,
    link: Link,
    stats: Arc<IoStats>,
}

impl RemoteEnv {
    /// Wraps `inner` with the given network model.
    #[must_use]
    pub fn new(inner: Arc<dyn Env>, model: NetworkModel) -> Self {
        RemoteEnv { inner, link: Link::new(model), stats: IoStats::new() }
    }

    /// Replaces the network model (used by latency/bandwidth sweeps).
    pub fn set_model(&self, model: NetworkModel) {
        self.link.set_model(model);
    }

    /// The current network model.
    #[must_use]
    pub fn model(&self) -> NetworkModel {
        self.link.model()
    }

    /// The wrapped env.
    #[must_use]
    pub fn inner(&self) -> &Arc<dyn Env> {
        &self.inner
    }
}

struct RemoteWritable {
    inner: Box<dyn WritableFile>,
    link: Link,
    kind: FileKind,
    stats: Arc<IoStats>,
    unflushed: u64,
}

impl WritableFile for RemoteWritable {
    fn append(&mut self, data: &[u8]) -> EnvResult<()> {
        self.unflushed += data.len() as u64;
        self.inner.append(data)
    }

    fn flush(&mut self) -> EnvResult<()> {
        // Like the HDFS client, small appends are batched into packets:
        // the network trip is only charged once a full packet is pending.
        // (The bytes themselves always reach the backing store so readers
        // and crash simulations see them.)
        let packet = self.link.model().write_packet_bytes.max(1);
        if self.unflushed >= packet {
            self.link.transfer(self.unflushed);
            self.stats.record_write(self.kind, self.unflushed);
            self.unflushed = 0;
        }
        self.inner.flush()
    }

    fn sync(&mut self) -> EnvResult<()> {
        if self.unflushed > 0 {
            self.link.transfer(self.unflushed);
            self.stats.record_write(self.kind, self.unflushed);
            self.unflushed = 0;
        }
        self.inner.flush()?;
        self.link.round_trip();
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct RemoteReadable {
    inner: Arc<dyn RandomAccessFile>,
    link: Link,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for RemoteReadable {
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
        let data = self.inner.read_at(offset, len)?;
        self.link.transfer(data.len() as u64);
        self.stats.record_read(self.kind, data.len() as u64);
        Ok(data)
    }

    fn len(&self) -> EnvResult<u64> {
        self.inner.len()
    }

    fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
        // The whole batch rides one request/response exchange: a single
        // round trip for the submission plus the shared transfer time of
        // the total payload, instead of one RTT per block.
        let results = self.inner.read_at_many(requests);
        let mut total = 0u64;
        for data in results.iter().flatten() {
            total += data.len() as u64;
            self.stats.record_read(self.kind, data.len() as u64);
        }
        self.link.transfer(total);
        results
    }
}

struct RemoteSequential {
    inner: Box<dyn SequentialFile>,
    link: Link,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl SequentialFile for RemoteSequential {
    fn read(&mut self, buf: &mut [u8]) -> EnvResult<usize> {
        let n = self.inner.read(buf)?;
        self.link.transfer(n as u64);
        self.stats.record_read(self.kind, n as u64);
        Ok(n)
    }
}

impl Env for RemoteEnv {
    fn new_writable_file(&self, path: &str, kind: FileKind) -> EnvResult<Box<dyn WritableFile>> {
        self.link.round_trip();
        Ok(Box::new(RemoteWritable {
            inner: self.inner.new_writable_file(path, kind)?,
            link: self.link.clone(),
            kind,
            stats: self.stats.clone(),
            unflushed: 0,
        }))
    }

    fn new_random_access_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Arc<dyn RandomAccessFile>> {
        self.link.round_trip();
        Ok(Arc::new(RemoteReadable {
            inner: self.inner.new_random_access_file(path, kind)?,
            link: self.link.clone(),
            kind,
            stats: self.stats.clone(),
        }))
    }

    fn new_sequential_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Box<dyn SequentialFile>> {
        self.link.round_trip();
        Ok(Box::new(RemoteSequential {
            inner: self.inner.new_sequential_file(path, kind)?,
            link: self.link.clone(),
            kind,
            stats: self.stats.clone(),
        }))
    }

    fn remove_file(&self, path: &str) -> EnvResult<()> {
        self.link.round_trip();
        self.inner.remove_file(path)
    }

    fn rename(&self, from: &str, to: &str) -> EnvResult<()> {
        self.link.round_trip();
        self.inner.rename(from, to)
    }

    fn file_exists(&self, path: &str) -> bool {
        self.link.round_trip();
        self.inner.file_exists(path)
    }

    fn file_size(&self, path: &str) -> EnvResult<u64> {
        self.link.round_trip();
        self.inner.file_size(path)
    }

    fn list_dir(&self, dir: &str) -> EnvResult<Vec<String>> {
        self.link.round_trip();
        self.inner.list_dir(dir)
    }

    fn create_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.link.round_trip();
        self.inner.create_dir_all(dir)
    }

    fn remove_dir_all(&self, dir: &str) -> EnvResult<()> {
        self.link.round_trip();
        self.inner.remove_dir_all(dir)
    }

    fn io_stats(&self) -> Option<Arc<IoStats>> {
        Some(self.stats.clone())
    }

    fn fault_stats(&self) -> Option<crate::FaultStatsSnapshot> {
        self.inner.fault_stats()
    }

    fn set_event_listener(&self, listener: Arc<dyn shield_core::EventListener>) {
        self.inner.set_event_listener(listener);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemEnv;

    #[test]
    fn forwards_to_inner() {
        let mem = MemEnv::new();
        let remote = RemoteEnv::new(Arc::new(mem.clone()), NetworkModel::unlimited());
        let mut f = remote.new_writable_file("x", FileKind::Sst).unwrap();
        f.append(b"payload").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(mem.raw_content("x").unwrap(), b"payload");
        let r = remote.new_random_access_file("x", FileKind::Sst).unwrap();
        assert_eq!(&r.read_at(0, 7).unwrap()[..], b"payload");
    }

    #[test]
    fn accounts_remote_io() {
        let remote =
            RemoteEnv::new(Arc::new(MemEnv::new()), NetworkModel::unlimited());
        let mut f = remote.new_writable_file("x", FileKind::Sst).unwrap();
        f.append(&[0u8; 1000]).unwrap();
        // 1000 bytes is below the packet size, so flush defers the network
        // charge; sync always drains and records.
        f.flush().unwrap();
        assert_eq!(remote.io_stats().unwrap().snapshot().written_for(FileKind::Sst), 0);
        f.sync().unwrap();
        drop(f);
        let r = remote.new_random_access_file("x", FileKind::Sst).unwrap();
        let _ = r.read_at(0, 400).unwrap();
        let snap = remote.io_stats().unwrap().snapshot();
        assert_eq!(snap.written_for(FileKind::Sst), 1000);
        assert_eq!(snap.read_for(FileKind::Sst), 400);
    }

    #[test]
    fn latency_is_charged() {
        let model = NetworkModel {
            rtt: Duration::from_millis(5),
            bandwidth_bytes_per_sec: None,
            write_packet_bytes: 1, // charge every flush in this test
        };
        let remote = RemoteEnv::new(Arc::new(MemEnv::new()), model);
        let start = Instant::now();
        let mut f = remote.new_writable_file("x", FileKind::Wal).unwrap(); // 1 RTT
        f.append(b"d").unwrap();
        f.flush().unwrap(); // 1 RTT
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(10), "elapsed {elapsed:?}");
    }

    #[test]
    fn bandwidth_serializes_transfers() {
        // 1 MB/s: a 10 KB transfer should take >= 10 ms.
        let model = NetworkModel {
            rtt: Duration::ZERO,
            bandwidth_bytes_per_sec: Some(1_000_000),
            write_packet_bytes: 1,
        };
        let remote = RemoteEnv::new(Arc::new(MemEnv::new()), model);
        let mut f = remote.new_writable_file("x", FileKind::Sst).unwrap();
        f.append(&vec![0u8; 10_000]).unwrap();
        let start = Instant::now();
        f.flush().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn concurrent_requests_overlap_rtts() {
        // 8 threads each pay one 25 ms round trip; a serializing model
        // would take ≥ 200 ms wall clock, an overlapping one ~25 ms.
        let model = NetworkModel {
            rtt: Duration::from_millis(25),
            bandwidth_bytes_per_sec: None,
            write_packet_bytes: 64 * 1024,
        };
        let remote = Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), model));
        let start = Instant::now();
        let joins: Vec<_> = (0..8)
            .map(|_| {
                let remote = remote.clone();
                std::thread::spawn(move || {
                    remote.file_exists("x");
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(25), "rtt not charged: {elapsed:?}");
        assert!(
            elapsed < Duration::from_millis(125),
            "concurrent RTTs must overlap, not serialize: {elapsed:?}"
        );
    }

    #[test]
    fn concurrent_transfers_still_share_bandwidth() {
        // Zero RTT, 1 MB/s: two concurrent 10 KB transfers must take
        // ≥ 20 ms combined — payload bytes contend even when RTTs overlap.
        let model = NetworkModel {
            rtt: Duration::ZERO,
            bandwidth_bytes_per_sec: Some(1_000_000),
            write_packet_bytes: 1,
        };
        let remote = Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), model));
        for name in ["a", "b"] {
            let mut f = remote.new_writable_file(name, FileKind::Sst).unwrap();
            f.append(&vec![0u8; 10_000]).unwrap();
            f.sync().unwrap();
        }
        let start = Instant::now();
        let joins: Vec<_> = ["a", "b"]
            .into_iter()
            .map(|name| {
                let remote = remote.clone();
                std::thread::spawn(move || {
                    let r = remote.new_random_access_file(name, FileKind::Sst).unwrap();
                    let _ = r.read_at(0, 10_000).unwrap();
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(20), "bandwidth must be shared");
    }

    #[test]
    fn batch_read_charges_one_rtt() {
        let model = NetworkModel {
            rtt: Duration::from_millis(10),
            bandwidth_bytes_per_sec: None,
            write_packet_bytes: 64 * 1024,
        };
        let remote = RemoteEnv::new(Arc::new(MemEnv::new()), model);
        let mut f = remote.new_writable_file("x", FileKind::Sst).unwrap();
        f.append(&vec![7u8; 8 * 1024]).unwrap();
        f.sync().unwrap();
        drop(f);
        let r = remote.new_random_access_file("x", FileKind::Sst).unwrap();

        let reqs: Vec<ReadRequest> =
            (0..8).map(|i| ReadRequest { offset: i * 1024, len: 1024 }).collect();
        let start = Instant::now();
        let batch = r.read_at_many(&reqs);
        let batch_elapsed = start.elapsed();
        for b in &batch {
            assert_eq!(b.as_ref().unwrap().len(), 1024);
        }
        assert!(batch_elapsed >= Duration::from_millis(10), "batch skipped the RTT");
        assert!(
            batch_elapsed < Duration::from_millis(40),
            "a batch must pay one RTT, not eight: {batch_elapsed:?}"
        );

        let start = Instant::now();
        for req in &reqs {
            let _ = r.read_at(req.offset, req.len).unwrap();
        }
        let serial_elapsed = start.elapsed();
        assert!(
            serial_elapsed >= Duration::from_millis(80),
            "eight serial reads pay eight RTTs: {serial_elapsed:?}"
        );
    }

    #[test]
    fn model_can_be_swapped_at_runtime() {
        let remote = RemoteEnv::new(Arc::new(MemEnv::new()), NetworkModel::unlimited());
        assert_eq!(remote.model().rtt, Duration::ZERO);
        remote.set_model(NetworkModel::intra_datacenter());
        assert_eq!(remote.model().rtt, Duration::from_micros(500));
    }
}
