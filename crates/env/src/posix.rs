//! Local-filesystem [`Env`] built on `std::fs`, used for the monolithic
//! benchmarks and anywhere real disk behavior matters.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::{
    Env, EnvResult, FileKind, IoStats, RandomAccessFile, ReadRequest, SequentialFile,
    WritableFile,
};

/// Local filesystem environment. Paths are interpreted as OS paths.
#[derive(Clone)]
pub struct PosixEnv {
    stats: Arc<IoStats>,
    /// When false (the default for benchmarks), `sync` flushes to the OS
    /// but skips `fsync`, matching RocksDB's default WAL behavior.
    fsync: bool,
}

impl Default for PosixEnv {
    fn default() -> Self {
        Self::new()
    }
}

impl PosixEnv {
    /// Creates a env that flushes but does not `fsync` on `sync` (the
    /// RocksDB default benchmark configuration).
    #[must_use]
    pub fn new() -> Self {
        PosixEnv { stats: IoStats::new(), fsync: false }
    }

    /// Creates an env whose `sync` calls really `fsync`.
    #[must_use]
    pub fn with_fsync() -> Self {
        PosixEnv { stats: IoStats::new(), fsync: true }
    }
}

struct PosixWritable {
    writer: BufWriter<File>,
    logical_len: u64,
    kind: FileKind,
    stats: Arc<IoStats>,
    fsync: bool,
}

impl WritableFile for PosixWritable {
    fn append(&mut self, data: &[u8]) -> EnvResult<()> {
        self.writer.write_all(data)?;
        self.logical_len += data.len() as u64;
        self.stats.record_write(self.kind, data.len() as u64);
        Ok(())
    }

    fn flush(&mut self) -> EnvResult<()> {
        self.writer.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> EnvResult<()> {
        self.writer.flush()?;
        if self.fsync {
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.logical_len
    }
}

struct PosixReadable {
    file: Mutex<File>,
    len: u64,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for PosixReadable {
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
        // Leaf-level read: PerfContext block_read covers exactly the raw
        // file I/O, below any decryption wrapper.
        let t = shield_core::perf::timer();
        let mut buf = vec![0u8; len];
        let n = {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(offset))?;
            let mut read = 0usize;
            while read < len {
                match f.read(&mut buf[read..]) {
                    Ok(0) => break,
                    Ok(k) => read += k,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            read
        };
        buf.truncate(n);
        self.stats.record_read(self.kind, n as u64);
        shield_core::perf::add_elapsed(shield_core::PerfMetric::BlockRead, t);
        Ok(Bytes::from(buf))
    }

    fn len(&self) -> EnvResult<u64> {
        Ok(self.len)
    }

    fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
        // One lock acquisition for the whole batch, served in ascending
        // offset order so a spinning disk seeks monotonically; results
        // are returned in request order regardless.
        let t = shield_core::perf::timer();
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| requests[i].offset);
        let mut out: Vec<EnvResult<Bytes>> = Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || Ok(Bytes::new()));
        {
            let mut f = self.file.lock();
            for i in order {
                let r = requests[i];
                out[i] = (|| {
                    let mut buf = vec![0u8; r.len];
                    f.seek(SeekFrom::Start(r.offset))?;
                    let mut read = 0usize;
                    while read < r.len {
                        match f.read(&mut buf[read..]) {
                            Ok(0) => break,
                            Ok(k) => read += k,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(e.into()),
                        }
                    }
                    buf.truncate(read);
                    self.stats.record_read(self.kind, read as u64);
                    Ok(Bytes::from(buf))
                })();
            }
        }
        shield_core::perf::add_elapsed(shield_core::PerfMetric::BlockRead, t);
        out
    }
}

struct PosixSequential {
    file: File,
    kind: FileKind,
    stats: Arc<IoStats>,
}

impl SequentialFile for PosixSequential {
    fn read(&mut self, buf: &mut [u8]) -> EnvResult<usize> {
        let n = self.file.read(buf)?;
        self.stats.record_read(self.kind, n as u64);
        Ok(n)
    }
}

impl Env for PosixEnv {
    fn new_writable_file(&self, path: &str, kind: FileKind) -> EnvResult<Box<dyn WritableFile>> {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        Ok(Box::new(PosixWritable {
            writer: BufWriter::with_capacity(64 * 1024, file),
            logical_len: 0,
            kind,
            stats: self.stats.clone(),
            fsync: self.fsync,
        }))
    }

    fn new_random_access_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Arc<dyn RandomAccessFile>> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Arc::new(PosixReadable {
            file: Mutex::new(file),
            len,
            kind,
            stats: self.stats.clone(),
        }))
    }

    fn new_sequential_file(
        &self,
        path: &str,
        kind: FileKind,
    ) -> EnvResult<Box<dyn SequentialFile>> {
        Ok(Box::new(PosixSequential {
            file: File::open(path)?,
            kind,
            stats: self.stats.clone(),
        }))
    }

    fn remove_file(&self, path: &str) -> EnvResult<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> EnvResult<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn file_exists(&self, path: &str) -> bool {
        Path::new(path).is_file()
    }

    fn file_size(&self, path: &str) -> EnvResult<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn list_dir(&self, dir: &str) -> EnvResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &str) -> EnvResult<()> {
        std::fs::create_dir_all(dir)?;
        Ok(())
    }

    fn remove_dir_all(&self, dir: &str) -> EnvResult<()> {
        match std::fs::remove_dir_all(dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn io_stats(&self) -> Option<Arc<IoStats>> {
        Some(self.stats.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("shield-posix-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn roundtrip_on_disk() {
        let dir = tmp_dir("roundtrip");
        let env = PosixEnv::new();
        let path = crate::join_path(&dir, "file.bin");
        {
            let mut f = env.new_writable_file(&path, FileKind::Sst).unwrap();
            f.append(b"abc").unwrap();
            f.append(b"defgh").unwrap();
            f.sync().unwrap();
            assert_eq!(f.len(), 8);
        }
        assert_eq!(env.file_size(&path).unwrap(), 8);
        let r = env.new_random_access_file(&path, FileKind::Sst).unwrap();
        assert_eq!(&r.read_at(2, 4).unwrap()[..], b"cdef");
        // Short read at EOF.
        assert_eq!(&r.read_at(6, 100).unwrap()[..], b"gh");
        env.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_and_rename() {
        let dir = tmp_dir("list");
        let env = PosixEnv::new();
        for name in ["b.sst", "a.log"] {
            let mut f = env
                .new_writable_file(&crate::join_path(&dir, name), FileKind::Other)
                .unwrap();
            f.append(b"x").unwrap();
            f.sync().unwrap();
        }
        assert_eq!(env.list_dir(&dir).unwrap(), vec!["a.log", "b.sst"]);
        env.rename(
            &crate::join_path(&dir, "a.log"),
            &crate::join_path(&dir, "c.log"),
        )
        .unwrap();
        assert_eq!(env.list_dir(&dir).unwrap(), vec!["b.sst", "c.log"]);
        env.remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        let env = PosixEnv::new();
        assert!(matches!(
            env.new_sequential_file("/nonexistent/shield-x", FileKind::Other),
            Err(crate::EnvError::NotFound(_))
        ));
        assert!(!env.file_exists("/nonexistent/shield-x"));
    }
}
