//! Log-bucketed latency histogram, shared by the engine and the bench
//! driver.
//!
//! Buckets grow geometrically (×2 per bucket) starting at 250 ns, so the
//! bounds run 250 ns, 500 ns, 1 µs, 2 µs, … — 48 buckets cover every
//! latency up to ~19.5 hours with bounded relative error. Quantiles are
//! answered from the bucket midpoint, capped at the exact observed
//! maximum so `quantile(1.0)` never over-reports.
//!
//! Two flavours:
//! - [`Histogram`]: plain, single-writer; `merge` combines per-thread
//!   instances (this is what the bench driver uses).
//! - [`AtomicHistogram`]: lock-free multi-writer; the engine records
//!   per-operation latencies into one of these per op type and takes
//!   [`AtomicHistogram::snapshot`]s for reports.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of geometric buckets. `bucket_bound(47)` = 250 << 47 ns.
pub const NUM_BUCKETS: usize = 48;

/// Upper bound (exclusive) of bucket `i`, in nanoseconds.
#[inline]
fn bucket_bound(i: usize) -> u64 {
    250u64 << i
}

/// O(1) bucket index for a latency of `ns` nanoseconds.
///
/// A value lands in the first bucket whose bound exceeds it:
/// `ns < 250 << i  ⇔  ns / 250 < 1 << i`, so the index is the bit
/// length of `ns / 250` (0 for `ns < 250`), clamped to the last bucket.
#[inline]
pub(crate) fn bucket_for(ns: u64) -> usize {
    let q = ns / 250;
    let bits = (64 - q.leading_zeros()) as usize;
    bits.min(NUM_BUCKETS - 1)
}

/// Quantile summary of a histogram, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean_us: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    pub p999_us: f64,
    pub max_us: f64,
}

/// Single-writer log-bucketed histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { buckets: vec![0; NUM_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }

    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_for(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1000.0
    }

    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1000.0
    }

    /// Latency at quantile `q` (0.0..=1.0), in microseconds.
    ///
    /// Answers from the midpoint of the bucket containing the q-th
    /// sample, capped at the exact observed maximum.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = bucket_bound(i);
                let lo = if i == 0 { 0 } else { bucket_bound(i - 1) };
                let mid = lo + (hi - lo) / 2;
                return mid.min(self.max_ns) as f64 / 1000.0;
            }
        }
        self.max_ns as f64 / 1000.0
    }

    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.50),
            p99_us: self.quantile_us(0.99),
            p999_us: self.quantile_us(0.999),
            max_us: self.max_us(),
        }
    }
}

/// Lock-free multi-writer histogram for in-engine recording.
///
/// `record` is wait-free (relaxed `fetch_add`s plus a `fetch_max`);
/// `snapshot` folds the atomics into a plain [`Histogram`]. Snapshots
/// are not atomic across buckets — a concurrent `record` may be half
/// visible — which is fine for reporting.
pub struct AtomicHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record the time elapsed since `start`.
    #[inline]
    pub fn record_elapsed(&self, start: std::time::Instant) {
        self.record(start.elapsed().as_nanos() as u64);
    }

    pub fn snapshot(&self) -> Histogram {
        Histogram {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linear scan `bucket_for` replaced; kept as the oracle.
    fn bucket_for_linear(ns: u64) -> usize {
        for i in 0..NUM_BUCKETS {
            if ns < bucket_bound(i) {
                return i;
            }
        }
        NUM_BUCKETS - 1
    }

    #[test]
    fn bucket_for_matches_linear_scan() {
        // Exhaustive boundary sweep: each bound, its neighbours, and zero.
        for i in 0..NUM_BUCKETS {
            let b = bucket_bound(i);
            for ns in [b.saturating_sub(1), b, b + 1] {
                assert_eq!(bucket_for(ns), bucket_for_linear(ns), "ns={ns}");
            }
        }
        assert_eq!(bucket_for(0), bucket_for_linear(0));
        assert_eq!(bucket_for(u64::MAX), bucket_for_linear(u64::MAX));
        // Pseudo-random sweep (splitmix64, fixed seed).
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            let ns = z ^ (z >> 31);
            assert_eq!(bucket_for(ns), bucket_for_linear(ns), "ns={ns}");
        }
    }

    #[test]
    fn records_and_reports() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(1_000); // 1 us
        }
        h.record(1_000_000); // 1 ms outlier
        assert_eq!(h.count(), 101);
        assert!(h.mean_us() > 1.0 && h.mean_us() < 20.0);
        assert!(h.quantile_us(0.5) < 10.0);
        assert!(h.p99_us() < 1_500.0);
        assert!(h.quantile_us(1.0) <= 1_000.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(500);
        b.record(2_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_us() >= 2.0);
    }

    #[test]
    fn empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.99), 0.0);
    }

    #[test]
    fn huge_latency_clamped_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5) > 0.0);
    }

    #[test]
    fn atomic_snapshot_matches_plain() {
        let ah = AtomicHistogram::new();
        let mut plain = Histogram::new();
        for ns in [100u64, 250, 999, 4096, 1 << 30] {
            ah.record(ns);
            plain.record(ns);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.mean_us(), plain.mean_us());
        assert_eq!(snap.quantile_us(0.99), plain.quantile_us(0.99));
        assert_eq!(snap.max_us(), plain.max_us());
    }

    #[test]
    fn summary_quantiles_ordered() {
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 100);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!(s.p50_us <= s.p99_us);
        assert!(s.p99_us <= s.p999_us);
        assert!(s.p999_us <= s.max_us);
    }
}
