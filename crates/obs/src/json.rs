//! Minimal stable-JSON emission helpers (no serde in this workspace).
//!
//! [`JsonBuilder`] tracks nesting and comma placement so callers can
//! emit a deterministic, schema-stable document field by field. Key
//! order is exactly call order, which is what makes the schema stable
//! for the `verify.sh` greps and the bench sidecars.

use std::fmt::Write as _;

/// Escape `s` as a JSON string, including the surrounding quotes.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental JSON writer with automatic comma placement.
///
/// ```
/// use shield_core::json::JsonBuilder;
/// let mut j = JsonBuilder::new();
/// j.open_obj_item();
/// j.field_str("schema", "v1");
/// j.open_arr("xs");
/// j.item_u64(1);
/// j.item_u64(2);
/// j.close_arr();
/// j.close_obj();
/// assert_eq!(j.finish(), r#"{"schema":"v1","xs":[1,2]}"#);
/// ```
#[derive(Default)]
pub struct JsonBuilder {
    out: String,
    comma: Vec<bool>,
}

impl JsonBuilder {
    pub fn new() -> JsonBuilder {
        JsonBuilder::default()
    }

    fn item(&mut self) {
        if let Some(c) = self.comma.last_mut() {
            if *c {
                self.out.push(',');
            } else {
                *c = true;
            }
        }
    }

    fn keyed(&mut self, key: &str) {
        self.item();
        self.out.push_str(&escaped(key));
        self.out.push(':');
    }

    /// Open an object as an array element (or as the document root).
    pub fn open_obj_item(&mut self) {
        self.item();
        self.out.push('{');
        self.comma.push(false);
    }

    /// Open an object-valued field.
    pub fn open_obj(&mut self, key: &str) {
        self.keyed(key);
        self.out.push('{');
        self.comma.push(false);
    }

    pub fn close_obj(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    /// Open an array-valued field.
    pub fn open_arr(&mut self, key: &str) {
        self.keyed(key);
        self.out.push('[');
        self.comma.push(false);
    }

    pub fn close_arr(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.keyed(key);
        let _ = write!(self.out, "{v}");
    }

    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.keyed(key);
        if v.is_finite() {
            let _ = write!(self.out, "{v:.3}");
        } else {
            self.out.push_str("null");
        }
    }

    pub fn field_str(&mut self, key: &str, v: &str) {
        self.keyed(key);
        self.out.push_str(&escaped(v));
    }

    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.keyed(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Emit a bare number as an array element.
    pub fn item_u64(&mut self, v: u64) {
        self.item();
        let _ = write!(self.out, "{v}");
    }

    /// Emit pre-rendered JSON as an array element or field value; the
    /// caller guarantees `raw` is valid JSON.
    pub fn item_raw(&mut self, raw: &str) {
        self.item();
        self.out.push_str(raw);
    }

    /// Emit a field whose value is pre-rendered JSON (e.g. a nested
    /// document built by another builder); the caller guarantees `raw`
    /// is valid JSON.
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.keyed(key);
        self.out.push_str(raw);
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed JSON value. Objects preserve key order (the schemas this
/// workspace emits are order-stable, and the golden-key tests assert on
/// that order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup; `None` on non-objects and missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Object keys in document order; empty on non-objects.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (used by the schema golden-key tests and
/// `debug_bundle` validation; strict enough for our own emitters, not a
/// general-purpose validator).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|t| t.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid utf-8".to_string());
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("short \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // BMP only; our emitters never produce surrogates.
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape \\{}", esc as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        assert_eq!(escaped("a"), "\"a\"");
        assert_eq!(escaped("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(escaped("x\ny"), "\"x\\ny\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn builds_nested_document() {
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_str("schema", "shield_metrics_v1");
        j.field_u64("n", 3);
        j.field_f64("amp", 1.5);
        j.field_bool("ok", true);
        j.open_arr("levels");
        j.open_obj_item();
        j.field_u64("level", 0);
        j.close_obj();
        j.open_obj_item();
        j.field_u64("level", 1);
        j.close_obj();
        j.close_arr();
        j.open_obj("tickers");
        j.field_u64("writes", 10);
        j.field_u64("gets", 20);
        j.close_obj();
        j.close_obj();
        assert_eq!(
            j.finish(),
            r#"{"schema":"shield_metrics_v1","n":3,"amp":1.500,"ok":true,"levels":[{"level":0},{"level":1}],"tickers":{"writes":10,"gets":20}}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_f64("x", f64::NAN);
        j.field_f64("y", f64::INFINITY);
        j.close_obj();
        assert_eq!(j.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn parses_what_the_builder_emits() {
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_str("schema", "v1");
        j.field_u64("n", 3);
        j.field_f64("amp", 1.5);
        j.field_bool("ok", true);
        j.open_arr("xs");
        j.item_u64(1);
        j.item_u64(2);
        j.close_arr();
        j.open_obj("inner");
        j.field_str("quoted", "a \"b\"\nc");
        j.close_obj();
        j.close_obj();
        let doc = parse(&j.finish()).expect("round-trip");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some("v1"));
        assert_eq!(doc.get("n").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(doc.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(doc.get("xs").and_then(JsonValue::as_arr).map(<[_]>::len), Some(2));
        assert_eq!(
            doc.get("inner").and_then(|i| i.get("quoted")).and_then(JsonValue::as_str),
            Some("a \"b\"\nc")
        );
        assert_eq!(doc.keys(), vec!["schema", "n", "amp", "ok", "xs", "inner"]);
    }

    #[test]
    fn parses_literals_whitespace_and_nesting() {
        let doc = parse(" { \"a\" : [ null , true , -1.5e2 ] , \"b\" : { } } ").expect("parse");
        let xs = doc.get("a").and_then(JsonValue::as_arr).expect("array");
        assert_eq!(xs[0], JsonValue::Null);
        assert_eq!(xs[1], JsonValue::Bool(true));
        assert_eq!(xs[2].as_f64(), Some(-150.0));
        assert_eq!(doc.get("b"), Some(&JsonValue::Obj(Vec::new())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,", "{\"a\":1}x", "\"unterminated", "{'a':1}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
