//! Minimal stable-JSON emission helpers (no serde in this workspace).
//!
//! [`JsonBuilder`] tracks nesting and comma placement so callers can
//! emit a deterministic, schema-stable document field by field. Key
//! order is exactly call order, which is what makes the schema stable
//! for the `verify.sh` greps and the bench sidecars.

use std::fmt::Write as _;

/// Escape `s` as a JSON string, including the surrounding quotes.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental JSON writer with automatic comma placement.
///
/// ```
/// use shield_core::json::JsonBuilder;
/// let mut j = JsonBuilder::new();
/// j.open_obj_item();
/// j.field_str("schema", "v1");
/// j.open_arr("xs");
/// j.item_u64(1);
/// j.item_u64(2);
/// j.close_arr();
/// j.close_obj();
/// assert_eq!(j.finish(), r#"{"schema":"v1","xs":[1,2]}"#);
/// ```
#[derive(Default)]
pub struct JsonBuilder {
    out: String,
    comma: Vec<bool>,
}

impl JsonBuilder {
    pub fn new() -> JsonBuilder {
        JsonBuilder::default()
    }

    fn item(&mut self) {
        if let Some(c) = self.comma.last_mut() {
            if *c {
                self.out.push(',');
            } else {
                *c = true;
            }
        }
    }

    fn keyed(&mut self, key: &str) {
        self.item();
        self.out.push_str(&escaped(key));
        self.out.push(':');
    }

    /// Open an object as an array element (or as the document root).
    pub fn open_obj_item(&mut self) {
        self.item();
        self.out.push('{');
        self.comma.push(false);
    }

    /// Open an object-valued field.
    pub fn open_obj(&mut self, key: &str) {
        self.keyed(key);
        self.out.push('{');
        self.comma.push(false);
    }

    pub fn close_obj(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    /// Open an array-valued field.
    pub fn open_arr(&mut self, key: &str) {
        self.keyed(key);
        self.out.push('[');
        self.comma.push(false);
    }

    pub fn close_arr(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.keyed(key);
        let _ = write!(self.out, "{v}");
    }

    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.keyed(key);
        if v.is_finite() {
            let _ = write!(self.out, "{v:.3}");
        } else {
            self.out.push_str("null");
        }
    }

    pub fn field_str(&mut self, key: &str, v: &str) {
        self.keyed(key);
        self.out.push_str(&escaped(v));
    }

    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.keyed(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Emit a bare number as an array element.
    pub fn item_u64(&mut self, v: u64) {
        self.item();
        let _ = write!(self.out, "{v}");
    }

    /// Emit pre-rendered JSON as an array element or field value; the
    /// caller guarantees `raw` is valid JSON.
    pub fn item_raw(&mut self, raw: &str) {
        self.item();
        self.out.push_str(raw);
    }

    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes() {
        assert_eq!(escaped("a"), "\"a\"");
        assert_eq!(escaped("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(escaped("x\ny"), "\"x\\ny\"");
        assert_eq!(escaped("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn builds_nested_document() {
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_str("schema", "shield_metrics_v1");
        j.field_u64("n", 3);
        j.field_f64("amp", 1.5);
        j.field_bool("ok", true);
        j.open_arr("levels");
        j.open_obj_item();
        j.field_u64("level", 0);
        j.close_obj();
        j.open_obj_item();
        j.field_u64("level", 1);
        j.close_obj();
        j.close_arr();
        j.open_obj("tickers");
        j.field_u64("writes", 10);
        j.field_u64("gets", 20);
        j.close_obj();
        j.close_obj();
        assert_eq!(
            j.finish(),
            r#"{"schema":"shield_metrics_v1","n":3,"amp":1.500,"ok":true,"levels":[{"level":0},{"level":1}],"tickers":{"writes":10,"gets":20}}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_f64("x", f64::NAN);
        j.field_f64("y", f64::INFINITY);
        j.close_obj();
        assert_eq!(j.finish(), r#"{"x":null,"y":null}"#);
    }
}
