//! Thread-local, zero-allocation per-operation timing breakdown
//! (RocksDB-style `PerfContext`).
//!
//! The context is a `Copy` struct held in a `thread_local!` `Cell`, so
//! enabling, recording, and reading never allocate. Collection is off by
//! default; the disabled fast path of every instrumentation point is one
//! thread-local read plus a branch ([`timer`] returns `None`), which the
//! obs-smoke bench gates at <2% of a 4 KiB encrypt.
//!
//! Usage:
//!
//! ```
//! use shield_core::perf::{self, PerfMetric};
//!
//! let guard = perf::PerfGuard::enable();
//! let t = perf::timer();           // Some(Instant) only while enabled
//! // ... do the work ...
//! perf::add_elapsed(PerfMetric::BlockRead, t);
//! let ctx = perf::take();          // the breakdown for this scope
//! drop(guard);                     // restores the previous state
//! assert!(ctx.block_read_nanos > 0);
//! ```

use std::cell::Cell;
use std::time::Instant;

/// Per-operation timing and count breakdown. All times in nanoseconds.
///
/// The timed sections are chosen to be non-overlapping on the read path
/// (`block_read` is measured at the raw-file leaf, *below* the decrypt
/// wrapper; `block_decrypt` covers only the in-place keystream XOR;
/// `dek_resolve` only the KDS round-trip), so on a get the sum of
/// components is ≤ the operation's wall time. On the write path
/// `block_encrypt` nests inside `wal_append` when WAL encryption is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfContext {
    /// Time appending (and buffering) WAL records, including encryption.
    pub wal_append_nanos: u64,
    /// Time in WAL fsync/fdatasync.
    pub wal_sync_nanos: u64,
    /// Time inserting the write batch into the memtable.
    pub memtable_insert_nanos: u64,
    /// Time probing active + immutable memtables on the read path.
    pub memtable_lookup_nanos: u64,
    /// Time in raw file reads (below any encryption wrapper).
    pub block_read_nanos: u64,
    /// Time decrypting file payloads (keystream XOR only).
    pub block_decrypt_nanos: u64,
    /// Time encrypting file payloads.
    pub block_encrypt_nanos: u64,
    /// Time resolving DEKs through the KDS resolver (cache misses).
    pub dek_resolve_nanos: u64,
    /// Time probing the block cache.
    pub cache_lookup_nanos: u64,
    /// Time merging one compaction subrange (read + merge + write).
    pub subcompaction_nanos: u64,
    /// Time waiting on in-flight `read_at_many` batch submissions
    /// (the `read_batch` span of the batched read path).
    pub io_batch_wait_nanos: u64,
    /// Data/index/filter blocks read from files.
    pub blocks_read: u64,
    /// Bloom filter probes issued.
    pub bloom_probes: u64,
    /// Cipher contexts initialised (key schedule + nonce derivation).
    pub cipher_inits: u64,
    /// Block-cache misses that waited on another thread's in-flight read
    /// instead of issuing their own (single-flight coalescing).
    pub singleflight_waits: u64,
}

impl PerfContext {
    pub const ZERO: PerfContext = PerfContext {
        wal_append_nanos: 0,
        wal_sync_nanos: 0,
        memtable_insert_nanos: 0,
        memtable_lookup_nanos: 0,
        block_read_nanos: 0,
        block_decrypt_nanos: 0,
        block_encrypt_nanos: 0,
        dek_resolve_nanos: 0,
        cache_lookup_nanos: 0,
        subcompaction_nanos: 0,
        io_batch_wait_nanos: 0,
        blocks_read: 0,
        bloom_probes: 0,
        cipher_inits: 0,
        singleflight_waits: 0,
    };

    /// Sum of all timed components, in nanoseconds.
    pub fn timed_nanos(&self) -> u64 {
        self.wal_append_nanos
            + self.wal_sync_nanos
            + self.memtable_insert_nanos
            + self.memtable_lookup_nanos
            + self.block_read_nanos
            + self.block_decrypt_nanos
            + self.block_encrypt_nanos
            + self.dek_resolve_nanos
            + self.cache_lookup_nanos
            + self.subcompaction_nanos
            + self.io_batch_wait_nanos
    }

    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Field (name, value) pairs, for rendering. Times first, then counts.
    pub fn fields(&self) -> [(&'static str, u64); 15] {
        [
            ("wal_append_nanos", self.wal_append_nanos),
            ("wal_sync_nanos", self.wal_sync_nanos),
            ("memtable_insert_nanos", self.memtable_insert_nanos),
            ("memtable_lookup_nanos", self.memtable_lookup_nanos),
            ("block_read_nanos", self.block_read_nanos),
            ("block_decrypt_nanos", self.block_decrypt_nanos),
            ("block_encrypt_nanos", self.block_encrypt_nanos),
            ("dek_resolve_nanos", self.dek_resolve_nanos),
            ("cache_lookup_nanos", self.cache_lookup_nanos),
            ("subcompaction_nanos", self.subcompaction_nanos),
            ("io_batch_wait_nanos", self.io_batch_wait_nanos),
            ("blocks_read", self.blocks_read),
            ("bloom_probes", self.bloom_probes),
            ("cipher_inits", self.cipher_inits),
            ("singleflight_waits", self.singleflight_waits),
        ]
    }
}

/// Timed sections of [`PerfContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfMetric {
    WalAppend,
    WalSync,
    MemtableInsert,
    MemtableLookup,
    BlockRead,
    BlockDecrypt,
    BlockEncrypt,
    DekResolve,
    CacheLookup,
    Subcompaction,
    IoBatchWait,
}

/// Counted events of [`PerfContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfCounter {
    BlocksRead,
    BloomProbes,
    CipherInits,
    SingleflightWaits,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static CTX: Cell<PerfContext> = const { Cell::new(PerfContext::ZERO) };
}

/// Is collection enabled on this thread?
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Start a timer — `Some(Instant)` only while collection is enabled.
///
/// This is the instrumentation fast path: when disabled it is a single
/// thread-local read and a branch, no clock read.
#[inline]
pub fn timer() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Charge the time since `started` (from [`timer`]) to `metric`.
#[inline]
pub fn add_elapsed(metric: PerfMetric, started: Option<Instant>) {
    if let Some(t0) = started {
        add_nanos(metric, t0.elapsed().as_nanos() as u64);
    }
}

/// Charge `ns` nanoseconds to `metric`. No-op while disabled.
pub fn add_nanos(metric: PerfMetric, ns: u64) {
    if !enabled() {
        return;
    }
    CTX.with(|c| {
        let mut ctx = c.get();
        let slot = match metric {
            PerfMetric::WalAppend => &mut ctx.wal_append_nanos,
            PerfMetric::WalSync => &mut ctx.wal_sync_nanos,
            PerfMetric::MemtableInsert => &mut ctx.memtable_insert_nanos,
            PerfMetric::MemtableLookup => &mut ctx.memtable_lookup_nanos,
            PerfMetric::BlockRead => &mut ctx.block_read_nanos,
            PerfMetric::BlockDecrypt => &mut ctx.block_decrypt_nanos,
            PerfMetric::BlockEncrypt => &mut ctx.block_encrypt_nanos,
            PerfMetric::DekResolve => &mut ctx.dek_resolve_nanos,
            PerfMetric::CacheLookup => &mut ctx.cache_lookup_nanos,
            PerfMetric::Subcompaction => &mut ctx.subcompaction_nanos,
            PerfMetric::IoBatchWait => &mut ctx.io_batch_wait_nanos,
        };
        *slot = slot.saturating_add(ns);
        c.set(ctx);
    });
}

/// Bump a count by `n`. No-op while disabled.
#[inline]
pub fn incr(counter: PerfCounter, n: u64) {
    if !enabled() {
        return;
    }
    CTX.with(|c| {
        let mut ctx = c.get();
        match counter {
            PerfCounter::BlocksRead => ctx.blocks_read += n,
            PerfCounter::BloomProbes => ctx.bloom_probes += n,
            PerfCounter::CipherInits => ctx.cipher_inits += n,
            PerfCounter::SingleflightWaits => ctx.singleflight_waits += n,
        }
        c.set(ctx);
    });
}

/// The context accumulated so far on this thread.
pub fn current() -> PerfContext {
    CTX.with(Cell::get)
}

/// Read and reset the context accumulated so far on this thread.
pub fn take() -> PerfContext {
    CTX.with(|c| c.replace(PerfContext::ZERO))
}

/// RAII scope that enables collection on this thread and restores the
/// previous (enabled, context) pair on drop, so scopes nest correctly.
pub struct PerfGuard {
    prev_enabled: bool,
    prev_ctx: PerfContext,
}

impl PerfGuard {
    pub fn enable() -> PerfGuard {
        let prev_enabled = ENABLED.with(|e| e.replace(true));
        let prev_ctx = CTX.with(|c| c.replace(PerfContext::ZERO));
        PerfGuard { prev_enabled, prev_ctx }
    }
}

impl Drop for PerfGuard {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(self.prev_enabled));
        CTX.with(|c| c.set(self.prev_ctx));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        assert!(!enabled());
        assert!(timer().is_none());
        add_nanos(PerfMetric::BlockRead, 100);
        incr(PerfCounter::BlocksRead, 1);
        assert!(current().is_zero());
    }

    #[test]
    fn guard_enables_and_restores() {
        {
            let _g = PerfGuard::enable();
            assert!(enabled());
            let t = timer();
            assert!(t.is_some());
            add_elapsed(PerfMetric::WalSync, t);
            add_nanos(PerfMetric::BlockDecrypt, 42);
            incr(PerfCounter::CipherInits, 2);
            let ctx = current();
            assert_eq!(ctx.block_decrypt_nanos, 42);
            assert_eq!(ctx.cipher_inits, 2);
            assert!(ctx.timed_nanos() >= 42);
        }
        assert!(!enabled());
        assert!(current().is_zero());
    }

    #[test]
    fn guards_nest() {
        let _outer = PerfGuard::enable();
        add_nanos(PerfMetric::BlockRead, 10);
        {
            let _inner = PerfGuard::enable();
            add_nanos(PerfMetric::BlockRead, 5);
            assert_eq!(current().block_read_nanos, 5);
        }
        // Inner scope restored the outer accumulation.
        assert_eq!(current().block_read_nanos, 10);
    }

    #[test]
    fn take_resets() {
        let _g = PerfGuard::enable();
        add_nanos(PerfMetric::CacheLookup, 7);
        let ctx = take();
        assert_eq!(ctx.cache_lookup_nanos, 7);
        assert!(current().is_zero());
    }
}
