//! `shield-core`: dependency-free observability primitives shared by
//! every layer of the SHIELD reproduction.
//!
//! This crate sits at the bottom of the workspace graph (no deps, std
//! only) so `shield-env`, `shield-kds`, `shield-lsm`, and `shield-bench`
//! can all speak the same types:
//!
//! - [`hist`]: the log-bucketed latency [`Histogram`] (promoted from the
//!   bench crate) plus a lock-free [`AtomicHistogram`] for in-engine
//!   per-operation recording.
//! - [`perf`]: the thread-local per-operation [`PerfContext`] timing
//!   breakdown with a near-zero disabled path.
//! - [`log`]: the typed engine [`Event`] catalog, [`EventListener`] /
//!   [`EventDispatcher`] fan-out, and the [`InfoLog`] sink that renders
//!   a RocksDB-style `LOG` file (level-filtered via `SHIELD_LOG`).
//! - [`json`]: stable-JSON emission for metrics reports and sidecars.

pub mod hist;
pub mod json;
pub mod log;
pub mod perf;

pub use hist::{AtomicHistogram, Histogram, HistogramSummary};
pub use json::JsonBuilder;
pub use log::{
    Event, EventDispatcher, EventListener, FieldValue, InfoLog, LogConfig, LogLevel, LogSink,
};
pub use perf::{PerfContext, PerfCounter, PerfGuard, PerfMetric};
