//! `shield-core`: dependency-free observability primitives shared by
//! every layer of the SHIELD reproduction.
//!
//! This crate sits at the bottom of the workspace graph (no deps, std
//! only) so `shield-env`, `shield-kds`, `shield-lsm`, and `shield-bench`
//! can all speak the same types:
//!
//! - [`hist`]: the log-bucketed latency [`Histogram`] (promoted from the
//!   bench crate) plus a lock-free [`AtomicHistogram`] for in-engine
//!   per-operation recording.
//! - [`perf`]: the thread-local per-operation [`PerfContext`] timing
//!   breakdown with a near-zero disabled path.
//! - [`log`]: the typed engine [`Event`] catalog, [`EventListener`] /
//!   [`EventDispatcher`] fan-out, and the [`InfoLog`] sink that renders
//!   a RocksDB-style `LOG` file (level-filtered via `SHIELD_LOG`).
//! - [`json`]: stable-JSON emission for metrics reports and sidecars,
//!   plus the minimal parser the schema golden-key tests use.
//! - [`trace`]: the flight recorder — hierarchical per-op spans in a
//!   bounded ring, slow-op capture, and the active-op registry the
//!   stall watchdog scans.
//! - [`window`]: the windowed-stats differ turning cumulative tickers
//!   into per-interval deltas and rates (`shield_metrics_window_v1`).

pub mod hist;
pub mod json;
pub mod log;
pub mod perf;
pub mod trace;
pub mod window;

pub use hist::{AtomicHistogram, Histogram, HistogramSummary};
pub use json::{JsonBuilder, JsonValue};
pub use log::{
    Event, EventDispatcher, EventListener, FieldValue, InfoLog, LogConfig, LogLevel, LogSink,
};
pub use perf::{PerfContext, PerfCounter, PerfGuard, PerfMetric};
pub use trace::{ActiveOp, SlowOp, SpanContext, SpanRecord, Tracer};
pub use window::{MetricsWindow, WindowSample, WindowTracker, WINDOW_SCHEMA};
