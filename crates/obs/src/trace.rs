//! Flight-recorder tracing: hierarchical per-operation spans, a bounded
//! span ring, a slow-op capture ring, and the active-op registry the
//! stall watchdog scans.
//!
//! The design mirrors [`crate::perf`]: instrumentation sites call the
//! free function [`span`], whose disabled fast path is a single
//! thread-local boolean read plus a branch — no clock read, no
//! allocation — so tracing compiled in but switched off stays within the
//! obs-smoke <2% overhead gate. When a [`Tracer`] op is active on the
//! thread, [`span`] opens a child of the innermost open span and records
//! a [`SpanRecord`] (trace id, parent id, start offset, duration,
//! `key=value` attrs) on drop.
//!
//! Completed spans land in a bounded ring whose slots are claimed by a
//! lock-free `fetch_add` head (writers never wait on each other for a
//! slot; the per-slot write itself is an uncontended mutex store). The
//! ring overwrites oldest-first: it is a flight recorder, not an audit
//! log.
//!
//! Cross-thread propagation: a scope that fans work out to helper
//! threads captures [`context`] *before* spawning and calls
//! [`SpanContext::attach`] inside the helper, so windowed batch reads
//! and parallel subcompactions parent correctly under the op that
//! issued them.
//!
//! Slow ops: when an op's wall time crosses the tracer's threshold, its
//! full span tree plus the thread's [`PerfContext`] breakdown are copied
//! into a dedicated ring ([`Tracer::slow_ops`]) and announced through
//! the registered listener as [`Event::SlowOp`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::json::JsonBuilder;
use crate::log::{Event, EventListener};
use crate::perf::{self, PerfContext};

/// Spans one op may accumulate before further children are counted as
/// dropped instead of stored (the global ring still sees them).
const MAX_SPANS_PER_OP: usize = 512;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The op this span belongs to (all spans of one op share it).
    pub trace_id: u64,
    /// Unique within the trace; the root span is always id 1.
    pub span_id: u64,
    /// Parent span id; 0 for the root.
    pub parent_id: u64,
    /// Instrumentation-site name (e.g. `read_window`, `wal_sync`).
    pub name: &'static str,
    /// Start offset from the trace root's start, in microseconds.
    pub start_rel_micros: u64,
    /// Span duration in nanoseconds.
    pub dur_nanos: u64,
    /// Numeric attributes attached via [`SpanGuard::attr`].
    pub attrs: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Appends this span as one JSON object item of an open array.
    pub fn push_json(&self, j: &mut JsonBuilder) {
        j.open_obj_item();
        j.field_u64("trace_id", self.trace_id);
        j.field_u64("span_id", self.span_id);
        j.field_u64("parent_id", self.parent_id);
        j.field_str("name", self.name);
        j.field_u64("start_rel_micros", self.start_rel_micros);
        j.field_u64("dur_nanos", self.dur_nanos);
        j.open_obj("attrs");
        for (k, v) in &self.attrs {
            j.field_u64(k, *v);
        }
        j.close_obj();
        j.close_obj();
    }
}

/// A slow operation captured with its full span tree and perf breakdown.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// Root op name (`get`, `multi_get`, `flush`, ...).
    pub op: &'static str,
    /// Trace id shared by every span in `spans`.
    pub trace_id: u64,
    /// Op wall time in nanoseconds.
    pub wall_nanos: u64,
    /// The threshold that was exceeded, in nanoseconds.
    pub threshold_nanos: u64,
    /// Completion time, microseconds since the Unix epoch.
    pub unix_micros: u64,
    /// The span tree, root first, then children in completion order.
    pub spans: Vec<SpanRecord>,
    /// Spans beyond the per-op cap that were not stored.
    pub dropped_spans: u64,
    /// The thread's [`PerfContext`] accumulated over the op.
    pub perf: PerfContext,
}

impl SlowOp {
    /// Appends this capture as one JSON object item of an open array.
    pub fn push_json(&self, j: &mut JsonBuilder) {
        j.open_obj_item();
        j.field_str("op", self.op);
        j.field_u64("trace_id", self.trace_id);
        j.field_u64("wall_nanos", self.wall_nanos);
        j.field_u64("threshold_nanos", self.threshold_nanos);
        j.field_u64("unix_micros", self.unix_micros);
        j.field_u64("dropped_spans", self.dropped_spans);
        j.open_obj("perf");
        for (k, v) in self.perf.fields() {
            j.field_u64(k, v);
        }
        j.close_obj();
        j.open_arr("spans");
        for s in &self.spans {
            s.push_json(j);
        }
        j.close_arr();
        j.close_obj();
    }

    /// The capture as one standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut j = JsonBuilder::new();
        self.push_json(&mut j);
        j.finish()
    }
}

/// Bounded span ring. The head is claimed lock-free with `fetch_add`;
/// each slot is an independent mutex so concurrent writers to different
/// slots never contend, and a writer lapping a reader simply overwrites.
struct SpanRing {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    head: AtomicU64,
}

impl SpanRing {
    fn new(capacity: usize) -> SpanRing {
        SpanRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, rec: SpanRecord) {
        let i = self.head.fetch_add(1, Ordering::AcqRel) as usize % self.slots.len();
        if let Ok(mut slot) = self.slots[i].lock() {
            *slot = Some(rec);
        }
    }

    /// Best-effort snapshot, oldest first. Concurrent pushes may tear
    /// the order at the boundary; this is diagnostics, not accounting.
    fn collect(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire) as usize;
        let cap = self.slots.len();
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity(head - start);
        for i in start..head {
            if let Ok(slot) = self.slots[i % cap].lock() {
                if let Some(r) = slot.as_ref() {
                    out.push(r.clone());
                }
            }
        }
        out
    }
}

/// One in-flight traced operation; lives in the tracer's active registry
/// until its [`OpGuard`] drops, which is what the stall watchdog scans.
pub struct ActiveOp {
    ring: Arc<SpanRing>,
    op: &'static str,
    trace_id: u64,
    start: Instant,
    next_span_id: AtomicU64,
    /// Completed child spans (bounded by [`MAX_SPANS_PER_OP`]).
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
    /// Currently *open* spans as `(span_id, name)` — the live stack the
    /// watchdog reports. May interleave across attached threads.
    stack: Mutex<Vec<(u64, &'static str)>>,
    /// Set once by the watchdog so a pinned op is reported exactly once.
    flagged: AtomicBool,
}

impl ActiveOp {
    /// Root op name.
    #[must_use]
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Trace id of this op.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Nanoseconds since the op started.
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Names of currently open spans, outermost first, rooted at the op
    /// itself (so the stack is never empty while the op runs — a stall
    /// in uninstrumented code still names the op that is stuck).
    #[must_use]
    pub fn live_stack(&self) -> Vec<&'static str> {
        let mut names = vec![self.op];
        if let Ok(s) = self.stack.lock() {
            names.extend(s.iter().map(|&(_, n)| n));
        }
        names
    }

    /// Claims the one-shot watchdog flag; true exactly once per op.
    pub fn flag_watchdog(&self) -> bool {
        !self.flagged.swap(true, Ordering::AcqRel)
    }

    fn record(&self, rec: SpanRecord) {
        if let Ok(mut spans) = self.spans.lock() {
            if spans.len() < MAX_SPANS_PER_OP {
                spans.push(rec.clone());
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.ring.push(rec);
    }
}

struct ThreadCtx {
    op: Arc<ActiveOp>,
    parent: u64,
}

thread_local! {
    static TRACING: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// Is a traced op active on this thread?
#[inline]
#[must_use]
pub fn active() -> bool {
    TRACING.with(Cell::get)
}

/// Opens a child span of the innermost open span on this thread.
///
/// The disabled fast path (no op active) is one thread-local read and a
/// branch; the returned guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !active() {
        return SpanGuard { inner: None };
    }
    SpanGuard { inner: begin_span(name) }
}

fn begin_span(name: &'static str) -> Option<SpanInner> {
    CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        let t = ctx.as_mut()?;
        let span_id = t.op.next_span_id.fetch_add(1, Ordering::Relaxed);
        let prev_parent = t.parent;
        t.parent = span_id;
        if let Ok(mut stack) = t.op.stack.lock() {
            stack.push((span_id, name));
        }
        Some(SpanInner {
            op: t.op.clone(),
            span_id,
            prev_parent,
            name,
            start: Instant::now(),
            attrs: Vec::new(),
        })
    })
}

struct SpanInner {
    op: Arc<ActiveOp>,
    span_id: u64,
    prev_parent: u64,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, u64)>,
}

/// RAII child span; records a [`SpanRecord`] when dropped.
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Attaches a numeric attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let SpanInner { op, span_id, prev_parent, name, start, attrs } = inner;
        // Restore the parent pointer if this thread is still attached to
        // the same op (an attach guard may already have detached it).
        CTX.with(|c| {
            if let Some(t) = c.borrow_mut().as_mut() {
                if Arc::ptr_eq(&t.op, &op) {
                    t.parent = prev_parent;
                }
            }
        });
        if let Ok(mut stack) = op.stack.lock() {
            if let Some(pos) = stack.iter().rposition(|&(id, _)| id == span_id) {
                stack.remove(pos);
            }
        }
        let rec = SpanRecord {
            trace_id: op.trace_id,
            span_id,
            parent_id: prev_parent,
            name,
            start_rel_micros: start.saturating_duration_since(op.start).as_micros() as u64,
            dur_nanos: start.elapsed().as_nanos() as u64,
            attrs,
        };
        op.record(rec);
    }
}

/// A capture of "where in the trace am I" that can cross threads: take
/// it with [`context`] before spawning, [`SpanContext::attach`] inside
/// the helper thread.
#[derive(Clone)]
pub struct SpanContext {
    op: Arc<ActiveOp>,
    parent: u64,
}

/// The current thread's trace position, if an op is active.
#[must_use]
pub fn context() -> Option<SpanContext> {
    if !active() {
        return None;
    }
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|t| SpanContext { op: t.op.clone(), parent: t.parent })
    })
}

impl SpanContext {
    /// Installs this context on the current thread; spans opened while
    /// the guard lives parent under the captured span. Restores the
    /// thread's previous state (usually: not tracing) on drop.
    pub fn attach(&self) -> AttachGuard {
        let prev_active = TRACING.with(|t| t.replace(true));
        let prev = CTX.with(|c| {
            c.borrow_mut()
                .replace(ThreadCtx { op: self.op.clone(), parent: self.parent })
        });
        AttachGuard { prev_active, prev }
    }
}

/// RAII guard for [`SpanContext::attach`].
#[must_use = "detaches the context when dropped"]
pub struct AttachGuard {
    prev_active: bool,
    prev: Option<ThreadCtx>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        TRACING.with(|t| t.set(self.prev_active));
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// The flight recorder: owns the span ring, the slow-op ring, the
/// active-op registry, and the enable switch.
pub struct Tracer {
    ring: Arc<SpanRing>,
    enabled: AtomicBool,
    next_trace_id: AtomicU64,
    slow_threshold_nanos: AtomicU64,
    slow: Mutex<VecDeque<SlowOp>>,
    slow_capacity: usize,
    active: Mutex<Vec<Arc<ActiveOp>>>,
    listener: Mutex<Option<Arc<dyn EventListener>>>,
}

impl Tracer {
    /// A tracer whose span ring holds `ring_capacity` spans and whose
    /// slow-op ring holds `slow_capacity` captures. Starts disabled.
    #[must_use]
    pub fn new(ring_capacity: usize, slow_capacity: usize) -> Arc<Tracer> {
        Arc::new(Tracer {
            ring: Arc::new(SpanRing::new(ring_capacity)),
            enabled: AtomicBool::new(false),
            next_trace_id: AtomicU64::new(0),
            slow_threshold_nanos: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
            slow_capacity: slow_capacity.max(1),
            active: Mutex::new(Vec::new()),
            listener: Mutex::new(None),
        })
    }

    /// Turns span collection on or off (off = the <2% disabled path).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Is span collection on?
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the slow-op capture threshold; `None` disables capture.
    pub fn set_slow_op_threshold(&self, threshold: Option<Duration>) {
        let nanos = threshold.map_or(0, |d| (d.as_nanos() as u64).max(1));
        self.slow_threshold_nanos.store(nanos, Ordering::Release);
    }

    /// Registers the listener notified of [`Event::SlowOp`] emissions.
    pub fn set_listener(&self, listener: Arc<dyn EventListener>) {
        if let Ok(mut l) = self.listener.lock() {
            *l = Some(listener);
        }
    }

    /// Starts a traced op on this thread. `None` while disabled — the
    /// caller then skips tracing entirely for the op.
    pub fn start_op(self: &Arc<Self>, op: &'static str) -> Option<OpGuard> {
        if !self.enabled() {
            return None;
        }
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed) + 1;
        let active_op = Arc::new(ActiveOp {
            ring: self.ring.clone(),
            op,
            trace_id,
            start: Instant::now(),
            next_span_id: AtomicU64::new(2),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            stack: Mutex::new(Vec::new()),
            flagged: AtomicBool::new(false),
        });
        if let Ok(mut reg) = self.active.lock() {
            reg.push(active_op.clone());
        }
        let prev_active = TRACING.with(|t| t.replace(true));
        let prev_ctx = CTX.with(|c| {
            c.borrow_mut()
                .replace(ThreadCtx { op: active_op.clone(), parent: 1 })
        });
        Some(OpGuard {
            tracer: self.clone(),
            op: active_op,
            prev_active,
            prev_ctx,
        })
    }

    /// Ops currently in flight (for the stall watchdog).
    #[must_use]
    pub fn active_ops(&self) -> Vec<Arc<ActiveOp>> {
        self.active.lock().map(|reg| reg.clone()).unwrap_or_default()
    }

    /// Best-effort snapshot of the span ring, oldest first.
    #[must_use]
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.ring.collect()
    }

    /// The slow-op ring, oldest first.
    #[must_use]
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow
            .lock()
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn finish_op(&self, op: &Arc<ActiveOp>) {
        let wall = op.start.elapsed();
        let root = SpanRecord {
            trace_id: op.trace_id,
            span_id: 1,
            parent_id: 0,
            name: op.op,
            start_rel_micros: 0,
            dur_nanos: wall.as_nanos() as u64,
            attrs: Vec::new(),
        };
        op.ring.push(root.clone());
        if let Ok(mut reg) = self.active.lock() {
            reg.retain(|a| a.trace_id != op.trace_id);
        }
        let threshold = self.slow_threshold_nanos.load(Ordering::Acquire);
        if threshold == 0 || (wall.as_nanos() as u64) < threshold {
            return;
        }
        let children = op.spans.lock().map(|s| s.clone()).unwrap_or_default();
        let mut spans = Vec::with_capacity(children.len() + 1);
        spans.push(root);
        spans.extend(children);
        let capture = SlowOp {
            op: op.op,
            trace_id: op.trace_id,
            wall_nanos: wall.as_nanos() as u64,
            threshold_nanos: threshold,
            unix_micros: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            spans,
            dropped_spans: op.dropped.load(Ordering::Relaxed),
            // The engine enables PerfContext for traced ops, so the
            // breakdown is still live here (the op guard drops before
            // the perf guard).
            perf: perf::current(),
        };
        let event = Event::SlowOp {
            op: capture.op,
            trace_id: capture.trace_id,
            wall_micros: capture.wall_nanos / 1_000,
            threshold_micros: capture.threshold_nanos / 1_000,
            spans: capture.spans.len() as u64,
        };
        if let Ok(mut slow) = self.slow.lock() {
            while slow.len() >= self.slow_capacity {
                slow.pop_front();
            }
            slow.push_back(capture);
        }
        let listener = self.listener.lock().ok().and_then(|l| l.clone());
        if let Some(l) = listener {
            l.on_event(&event);
        }
    }
}

/// RAII root of a traced op; finishes the trace (root span, slow-op
/// check, registry removal) and restores the thread's state on drop.
#[must_use = "the op is traced while the guard is alive"]
pub struct OpGuard {
    tracer: Arc<Tracer>,
    op: Arc<ActiveOp>,
    prev_active: bool,
    prev_ctx: Option<ThreadCtx>,
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        TRACING.with(|t| t.set(self.prev_active));
        let prev = self.prev_ctx.take();
        CTX.with(|c| *c.borrow_mut() = prev);
        self.tracer.finish_op(&self.op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        assert!(!active());
        let mut g = span("noop");
        g.attr("x", 1);
        drop(g);
        let tracer = Tracer::new(16, 4);
        assert!(tracer.start_op("get").is_none());
        assert!(tracer.recent_spans().is_empty());
        assert!(context().is_none());
    }

    #[test]
    fn spans_nest_and_record() {
        let tracer = Tracer::new(64, 4);
        tracer.set_enabled(true);
        {
            let _op = tracer.start_op("multi_get").expect("enabled");
            assert!(active());
            {
                let mut outer = span("fetch_batch");
                outer.attr("requests", 8);
                {
                    let _inner = span("read_window");
                }
            }
        }
        assert!(!active());
        let spans = tracer.recent_spans();
        assert_eq!(spans.len(), 3);
        // Completion order: inner, outer, root.
        let inner = &spans[0];
        let outer = &spans[1];
        let root = &spans[2];
        assert_eq!(root.name, "multi_get");
        assert_eq!(root.span_id, 1);
        assert_eq!(root.parent_id, 0);
        assert_eq!(outer.name, "fetch_batch");
        assert_eq!(outer.parent_id, 1);
        assert_eq!(outer.attrs, vec![("requests", 8)]);
        assert_eq!(inner.name, "read_window");
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(inner.trace_id, root.trace_id);
        assert!(root.dur_nanos >= outer.dur_nanos);
    }

    #[test]
    fn context_attaches_across_threads() {
        let tracer = Tracer::new(64, 4);
        tracer.set_enabled(true);
        let _op = tracer.start_op("multi_get").expect("enabled");
        let parent_span = span("fetch_batch");
        let ctx = context().expect("active");
        let handle = std::thread::spawn(move || {
            assert!(!active(), "fresh thread starts untraced");
            {
                let _attach = ctx.attach();
                let mut w = span("read_window");
                w.attr("requests", 4);
            }
            assert!(!active(), "attach guard restores");
        });
        handle.join().expect("helper thread");
        drop(parent_span);
        let spans = tracer.recent_spans();
        let window = spans.iter().find(|s| s.name == "read_window").expect("window span");
        let batch = spans.iter().find(|s| s.name == "fetch_batch").expect("batch span");
        assert_eq!(window.parent_id, batch.span_id);
        assert_eq!(window.trace_id, batch.trace_id);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let tracer = Tracer::new(4, 4);
        tracer.set_enabled(true);
        for _ in 0..10 {
            let _op = tracer.start_op("get").expect("enabled");
        }
        let spans = tracer.recent_spans();
        assert_eq!(spans.len(), 4, "bounded at capacity");
        // The survivors are the newest four traces.
        let ids: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn slow_op_captured_with_tree_and_event() {
        struct Capture(Mutex<Vec<String>>);
        impl EventListener for Capture {
            fn on_event(&self, e: &Event) {
                if let Ok(mut v) = self.0.lock() {
                    v.push(e.name().to_string());
                }
            }
        }
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        let tracer = Tracer::new(64, 2);
        tracer.set_enabled(true);
        tracer.set_slow_op_threshold(Some(Duration::from_nanos(1)));
        tracer.set_listener(capture.clone());
        {
            let _op = tracer.start_op("get").expect("enabled");
            let _child = span("read_block");
            std::thread::sleep(Duration::from_millis(1));
        }
        let slow = tracer.slow_ops();
        assert_eq!(slow.len(), 1);
        let s = &slow[0];
        assert_eq!(s.op, "get");
        assert!(s.wall_nanos >= 1);
        assert_eq!(s.spans[0].name, "get");
        assert!(s.spans.iter().any(|sp| sp.name == "read_block"));
        let json = s.to_json();
        assert!(json.contains("\"op\":\"get\""), "{json}");
        assert!(json.contains("\"spans\":["), "{json}");
        assert_eq!(capture.0.lock().unwrap().as_slice(), ["slow_op"]);
        // Ring is bounded: two more slow ops evict the first.
        for _ in 0..2 {
            let _op = tracer.start_op("put").expect("enabled");
            std::thread::sleep(Duration::from_micros(100));
        }
        let slow = tracer.slow_ops();
        assert_eq!(slow.len(), 2);
        assert!(slow.iter().all(|s| s.op == "put"));
    }

    #[test]
    fn threshold_filters_fast_ops() {
        let tracer = Tracer::new(16, 4);
        tracer.set_enabled(true);
        tracer.set_slow_op_threshold(Some(Duration::from_secs(3600)));
        {
            let _op = tracer.start_op("get").expect("enabled");
        }
        assert!(tracer.slow_ops().is_empty());
    }

    #[test]
    fn watchdog_sees_active_ops_and_flags_once() {
        let tracer = Tracer::new(16, 4);
        tracer.set_enabled(true);
        let op = tracer.start_op("compaction").expect("enabled");
        let sp = span("subcompaction");
        let live = tracer.active_ops();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].op(), "compaction");
        assert_eq!(live[0].live_stack(), vec!["compaction", "subcompaction"]);
        assert!(live[0].flag_watchdog(), "first flag claims");
        assert!(!live[0].flag_watchdog(), "second flag is suppressed");
        drop(sp);
        drop(op);
        assert!(tracer.active_ops().is_empty());
    }

    #[test]
    fn nested_ops_restore_outer_trace() {
        let tracer = Tracer::new(64, 4);
        tracer.set_enabled(true);
        let _outer = tracer.start_op("write_batch").expect("enabled");
        let outer_ctx = context().expect("outer active");
        {
            let _inner = tracer.start_op("flush").expect("enabled");
            let inner_ctx = context().expect("inner active");
            assert_ne!(
                inner_ctx.op.trace_id,
                outer_ctx.op.trace_id,
                "inner op is its own trace"
            );
        }
        let restored = context().expect("outer restored");
        assert_eq!(restored.op.trace_id, outer_ctx.op.trace_id);
    }

    #[test]
    fn per_op_span_cap_counts_drops() {
        let tracer = Tracer::new(8, 4);
        tracer.set_enabled(true);
        tracer.set_slow_op_threshold(Some(Duration::from_nanos(1)));
        {
            let _op = tracer.start_op("scan").expect("enabled");
            for _ in 0..(MAX_SPANS_PER_OP + 10) {
                let _s = span("iter_next");
            }
            std::thread::sleep(Duration::from_micros(10));
        }
        let slow = tracer.slow_ops();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].dropped_spans, 10);
        assert_eq!(slow[0].spans.len(), MAX_SPANS_PER_OP + 1);
    }
}
