//! Windowed stats: a differ that turns cumulative ticker snapshots into
//! per-interval deltas and derived rates (`shield_metrics_window_v1`).
//!
//! The engine samples its monotonic counters every `stats_dump_period`
//! into a [`WindowSample`] and feeds it to a [`WindowTracker`]. The
//! tracker diffs against the previous sample ([`WindowTracker::diff`]),
//! the caller derives whatever rates make sense at its layer (writes/s,
//! cache hit ratio, stall fraction — the differ itself is engine-
//! agnostic), and stores the finished [`MetricsWindow`] back
//! ([`WindowTracker::store`]) into a bounded ring of recent windows for
//! `debug_bundle()`-style retrieval.

use std::collections::VecDeque;
use std::time::Instant;

use crate::json::JsonBuilder;

/// The `schema` field of one rendered window.
pub const WINDOW_SCHEMA: &str = "shield_metrics_window_v1";

/// A cumulative counter sample taken at one instant.
#[derive(Debug, Clone)]
pub struct WindowSample {
    /// Monotonic sample time (for exact interval durations).
    pub at: Instant,
    /// Wall-clock sample time, microseconds since the Unix epoch.
    pub unix_micros: u64,
    /// Cumulative monotonic counters, in a stable order.
    pub counters: Vec<(&'static str, u64)>,
}

/// One finished stats interval.
#[derive(Debug, Clone)]
pub struct MetricsWindow {
    /// 1-based window sequence number.
    pub seq: u64,
    /// Interval end, microseconds since the Unix epoch.
    pub end_unix_micros: u64,
    /// Interval length in microseconds (monotonic-clock based).
    pub duration_micros: u64,
    /// Counter increments over the interval, in sample order.
    pub deltas: Vec<(&'static str, u64)>,
    /// Derived rates/ratios filled in by the engine layer.
    pub rates: Vec<(&'static str, f64)>,
}

impl MetricsWindow {
    /// Appends this window as one JSON object item of an open array.
    pub fn push_json(&self, j: &mut JsonBuilder) {
        j.open_obj_item();
        j.field_str("schema", WINDOW_SCHEMA);
        j.field_u64("seq", self.seq);
        j.field_u64("end_unix_micros", self.end_unix_micros);
        j.field_u64("duration_micros", self.duration_micros);
        j.open_obj("deltas");
        for (k, v) in &self.deltas {
            j.field_u64(k, *v);
        }
        j.close_obj();
        j.open_obj("rates");
        for (k, v) in &self.rates {
            j.field_f64(k, *v);
        }
        j.close_obj();
        j.close_obj();
    }

    /// The window as one standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut j = JsonBuilder::new();
        self.push_json(&mut j);
        j.finish()
    }

    /// Looks up one interval delta by counter name.
    #[must_use]
    pub fn delta(&self, name: &str) -> Option<u64> {
        self.deltas.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }
}

/// Diffs successive [`WindowSample`]s and keeps a bounded ring of
/// finished windows.
pub struct WindowTracker {
    prev: Option<WindowSample>,
    seq: u64,
    recent: VecDeque<MetricsWindow>,
    capacity: usize,
}

impl WindowTracker {
    /// A tracker retaining the most recent `capacity` windows.
    #[must_use]
    pub fn new(capacity: usize) -> WindowTracker {
        WindowTracker {
            prev: None,
            seq: 0,
            recent: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Diffs `sample` against the previous one. The first call only
    /// establishes the baseline and returns `None`. Counters are matched
    /// by name (missing names delta from zero), so the set may grow
    /// across schema revisions without corrupting intervals.
    pub fn diff(&mut self, sample: WindowSample) -> Option<MetricsWindow> {
        let prev = self.prev.replace(sample);
        let prev = prev?;
        let current = self.prev.as_ref().expect("just replaced");
        self.seq += 1;
        let deltas = current
            .counters
            .iter()
            .map(|&(name, now)| {
                let before = prev
                    .counters
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map_or(0, |&(_, v)| v);
                (name, now.saturating_sub(before))
            })
            .collect();
        Some(MetricsWindow {
            seq: self.seq,
            end_unix_micros: current.unix_micros,
            duration_micros: current
                .at
                .saturating_duration_since(prev.at)
                .as_micros() as u64,
            deltas,
            rates: Vec::new(),
        })
    }

    /// Stores a finished window (rates filled) into the bounded ring.
    pub fn store(&mut self, window: MetricsWindow) {
        while self.recent.len() >= self.capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(window);
    }

    /// Recent finished windows, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<MetricsWindow> {
        self.recent.iter().cloned().collect()
    }
}

impl Default for WindowTracker {
    fn default() -> Self {
        WindowTracker::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(unix: u64, counters: &[(&'static str, u64)]) -> WindowSample {
        WindowSample { at: Instant::now(), unix_micros: unix, counters: counters.to_vec() }
    }

    #[test]
    fn first_sample_is_baseline_only() {
        let mut t = WindowTracker::new(4);
        assert!(t.diff(sample(1, &[("writes", 10)])).is_none());
        assert!(t.recent().is_empty());
    }

    #[test]
    fn diffs_by_name_and_sequences() {
        let mut t = WindowTracker::new(4);
        assert!(t.diff(sample(1_000, &[("writes", 10), ("gets", 5)])).is_none());
        let w = t.diff(sample(2_000, &[("writes", 25), ("gets", 5)])).expect("second");
        assert_eq!(w.seq, 1);
        assert_eq!(w.end_unix_micros, 2_000);
        assert_eq!(w.delta("writes"), Some(15));
        assert_eq!(w.delta("gets"), Some(0));
        let w2 = t.diff(sample(3_000, &[("writes", 30), ("gets", 9)])).expect("third");
        assert_eq!(w2.seq, 2);
        assert_eq!(w2.delta("writes"), Some(5));
        assert_eq!(w2.delta("gets"), Some(4));
    }

    #[test]
    fn new_counters_delta_from_zero() {
        let mut t = WindowTracker::new(4);
        assert!(t.diff(sample(1, &[("writes", 10)])).is_none());
        let w = t.diff(sample(2, &[("writes", 10), ("flushes", 3)])).expect("second");
        assert_eq!(w.delta("flushes"), Some(3));
    }

    #[test]
    fn ring_is_bounded_oldest_out() {
        let mut t = WindowTracker::new(2);
        let _ = t.diff(sample(0, &[("writes", 0)]));
        for i in 1..=5u64 {
            let mut w = t.diff(sample(i, &[("writes", i)])).expect("window");
            w.rates.push(("writes_per_sec", i as f64));
            t.store(w);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 4);
        assert_eq!(recent[1].seq, 5);
    }

    #[test]
    fn json_has_window_schema() {
        let mut t = WindowTracker::new(2);
        let _ = t.diff(sample(1_000_000, &[("writes", 0), ("stall_micros", 0)]));
        let mut w = t
            .diff(sample(2_000_000, &[("writes", 100), ("stall_micros", 50)]))
            .expect("window");
        w.rates.push(("writes_per_sec", 100.0));
        w.rates.push(("stall_fraction", 0.05));
        let json = w.to_json();
        for key in [
            "\"schema\":\"shield_metrics_window_v1\"",
            "\"seq\":1",
            "\"duration_micros\":",
            "\"deltas\":{\"writes\":100",
            "\"rates\":{\"writes_per_sec\":100.000",
            "\"stall_fraction\":0.050",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
