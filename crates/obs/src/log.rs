//! Engine event catalog, listener fan-out, and the structured `InfoLog`
//! sink that renders a RocksDB-style `LOG` file.
//!
//! Events are a closed enum ([`Event`]) so every emission site is typed;
//! each event knows its [`LogLevel`] and renders itself as `(name,
//! fields)` pairs, from which [`InfoLog`] produces either human-readable
//! lines or JSON-lines. The engine owns one [`EventDispatcher`] and
//! fans every event out to all registered [`EventListener`]s.
//!
//! Level filtering comes from the `SHIELD_LOG` environment variable
//! (parsed by [`LogConfig::from_env_str`]): a level token (`error`,
//! `warn`, `info`, `debug`, or `off`) optionally combined with `json`,
//! comma-separated — e.g. `SHIELD_LOG=debug,json`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity of an [`Event`], lowest to highest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Debug,
    Info,
    Warn,
    Error,
}

impl LogLevel {
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Debug => "debug",
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
            LogLevel::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(LogLevel::Debug),
            "info" => Some(LogLevel::Info),
            "warn" | "warning" => Some(LogLevel::Warn),
            "error" => Some(LogLevel::Error),
            _ => None,
        }
    }
}

/// Logging configuration, usually parsed from `SHIELD_LOG`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogConfig {
    /// `None` disables the log entirely.
    pub level: Option<LogLevel>,
    /// Emit JSON-lines instead of human-readable lines.
    pub json: bool,
}

impl LogConfig {
    /// Parse a `SHIELD_LOG`-style value: comma-separated tokens, each a
    /// level name, `off`/`none`, or `json`. Unknown tokens are ignored.
    /// An empty value (or one with no level token) means disabled.
    pub fn from_env_str(s: &str) -> LogConfig {
        let mut cfg = LogConfig::default();
        for tok in s.split(',') {
            let tok = tok.trim();
            if tok.eq_ignore_ascii_case("json") {
                cfg.json = true;
            } else if tok.eq_ignore_ascii_case("off") || tok.eq_ignore_ascii_case("none") {
                cfg.level = None;
            } else if let Some(l) = LogLevel::parse(tok) {
                cfg.level = Some(l);
            }
        }
        cfg
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone)]
pub enum FieldValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// The engine event catalog. Every structured occurrence the engine can
/// report flows through exactly one of these variants.
#[derive(Debug, Clone)]
pub enum Event {
    /// A DB finished opening (after recovery).
    DbOpen { path: String, recovered_wals: u64 },
    /// A DB is shutting down.
    DbClose { path: String },
    /// A memtable flush started.
    FlushBegin { immutables: u64 },
    /// A memtable flush produced an L0 file.
    FlushEnd { file_number: u64, bytes: u64, micros: u64 },
    /// A compaction started.
    CompactionBegin { level: u64, inputs: u64, input_bytes: u64 },
    /// A compaction finished.
    CompactionEnd {
        level: u64,
        bytes_read: u64,
        bytes_written: u64,
        output_files: u64,
        micros: u64,
    },
    /// A compaction split into parallel subrange merges.
    SubcompactionBegin { level: u64, subtasks: u64, input_bytes: u64 },
    /// One subrange merge of a parallel compaction finished.
    SubcompactionEnd { index: u64, bytes_written: u64, micros: u64 },
    /// A writer was slowed or stopped by L0 pressure.
    WriteStall { reason: &'static str, l0_files: u64 },
    /// A background job failed (possibly after exhausting retries).
    BackgroundError { job: &'static str, severity: &'static str, message: String },
    /// A background job failed retryably and will be re-attempted.
    BackgroundRetry { job: &'static str, attempt: u64, message: String },
    /// The DB resumed from a soft background-error state.
    Resume,
    /// The DEK resolver is retrying a KDS call.
    KdsRetry { attempt: u64, message: String },
    /// The KDS client failed over to another endpoint.
    KdsFailover { failovers: u64 },
    /// The resolver entered degraded (cache-only) mode.
    KdsDegradedEnter { message: String },
    /// The resolver recovered from degraded mode.
    KdsDegradedExit,
    /// The fault-injection env fired an injected fault.
    FaultInjected { op: &'static str, file_kind: &'static str, torn: bool },
    /// An HMAC tag failed to verify: the file was tampered with (or
    /// damaged) in a way its checksum alone would not prove. `offset` is
    /// the block offset for SSTs, the fragment counter for logs.
    IntegrityViolation { file: u64, offset: u64 },
    /// An op exceeded the slow-op threshold; its full span tree and
    /// perf breakdown are retrievable from the slow-op ring.
    SlowOp {
        op: &'static str,
        trace_id: u64,
        wall_micros: u64,
        threshold_micros: u64,
        spans: u64,
    },
    /// The stall watchdog found an op/job pinned past its deadline;
    /// `stack` is the live span stack at flag time.
    Watchdog {
        op: &'static str,
        trace_id: u64,
        elapsed_micros: u64,
        deadline_micros: u64,
        stack: String,
    },
    /// One windowed-stats interval rolled over (rates are per-interval).
    StatsWindow {
        seq: u64,
        duration_micros: u64,
        writes_per_sec: f64,
        reads_per_sec: f64,
        cache_hit_ratio: f64,
        stall_fraction: f64,
    },
}

impl Event {
    pub fn name(&self) -> &'static str {
        match self {
            Event::DbOpen { .. } => "db_open",
            Event::DbClose { .. } => "db_close",
            Event::FlushBegin { .. } => "flush_begin",
            Event::FlushEnd { .. } => "flush_end",
            Event::CompactionBegin { .. } => "compaction_begin",
            Event::CompactionEnd { .. } => "compaction_end",
            Event::SubcompactionBegin { .. } => "subcompaction_begin",
            Event::SubcompactionEnd { .. } => "subcompaction_end",
            Event::WriteStall { .. } => "write_stall",
            Event::BackgroundError { .. } => "background_error",
            Event::BackgroundRetry { .. } => "background_retry",
            Event::Resume => "resume",
            Event::KdsRetry { .. } => "kds_retry",
            Event::KdsFailover { .. } => "kds_failover",
            Event::KdsDegradedEnter { .. } => "kds_degraded_enter",
            Event::KdsDegradedExit => "kds_degraded_exit",
            Event::FaultInjected { .. } => "fault_injected",
            Event::IntegrityViolation { .. } => "integrity_violation",
            Event::SlowOp { .. } => "slow_op",
            Event::Watchdog { .. } => "watchdog",
            Event::StatsWindow { .. } => "stats_window",
        }
    }

    pub fn level(&self) -> LogLevel {
        match self {
            Event::DbOpen { .. }
            | Event::DbClose { .. }
            | Event::FlushBegin { .. }
            | Event::FlushEnd { .. }
            | Event::CompactionBegin { .. }
            | Event::CompactionEnd { .. }
            | Event::Resume
            | Event::KdsDegradedExit
            | Event::StatsWindow { .. } => LogLevel::Info,
            // Per-subrange progress is chatty; keep it below the default
            // info LOG level.
            Event::SubcompactionBegin { .. } | Event::SubcompactionEnd { .. } => LogLevel::Debug,
            Event::WriteStall { .. }
            | Event::BackgroundRetry { .. }
            | Event::KdsRetry { .. }
            | Event::KdsFailover { .. }
            | Event::FaultInjected { .. }
            | Event::SlowOp { .. }
            | Event::Watchdog { .. } => LogLevel::Warn,
            Event::BackgroundError { .. }
            | Event::KdsDegradedEnter { .. }
            | Event::IntegrityViolation { .. } => LogLevel::Error,
        }
    }

    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        use FieldValue::*;
        match self {
            Event::DbOpen { path, recovered_wals } => vec![
                ("path", Str(path.clone())),
                ("recovered_wals", U64(*recovered_wals)),
            ],
            Event::DbClose { path } => vec![("path", Str(path.clone()))],
            Event::FlushBegin { immutables } => vec![("immutables", U64(*immutables))],
            Event::FlushEnd { file_number, bytes, micros } => vec![
                ("file_number", U64(*file_number)),
                ("bytes", U64(*bytes)),
                ("micros", U64(*micros)),
            ],
            Event::CompactionBegin { level, inputs, input_bytes } => vec![
                ("level", U64(*level)),
                ("inputs", U64(*inputs)),
                ("input_bytes", U64(*input_bytes)),
            ],
            Event::CompactionEnd { level, bytes_read, bytes_written, output_files, micros } => {
                vec![
                    ("level", U64(*level)),
                    ("bytes_read", U64(*bytes_read)),
                    ("bytes_written", U64(*bytes_written)),
                    ("output_files", U64(*output_files)),
                    ("micros", U64(*micros)),
                ]
            }
            Event::SubcompactionBegin { level, subtasks, input_bytes } => vec![
                ("level", U64(*level)),
                ("subtasks", U64(*subtasks)),
                ("input_bytes", U64(*input_bytes)),
            ],
            Event::SubcompactionEnd { index, bytes_written, micros } => vec![
                ("index", U64(*index)),
                ("bytes_written", U64(*bytes_written)),
                ("micros", U64(*micros)),
            ],
            Event::WriteStall { reason, l0_files } => vec![
                ("reason", Str((*reason).to_string())),
                ("l0_files", U64(*l0_files)),
            ],
            Event::BackgroundError { job, severity, message } => vec![
                ("job", Str((*job).to_string())),
                ("severity", Str((*severity).to_string())),
                ("message", Str(message.clone())),
            ],
            Event::BackgroundRetry { job, attempt, message } => vec![
                ("job", Str((*job).to_string())),
                ("attempt", U64(*attempt)),
                ("message", Str(message.clone())),
            ],
            Event::Resume => vec![],
            Event::KdsRetry { attempt, message } => vec![
                ("attempt", U64(*attempt)),
                ("message", Str(message.clone())),
            ],
            Event::KdsFailover { failovers } => vec![("failovers", U64(*failovers))],
            Event::KdsDegradedEnter { message } => vec![("message", Str(message.clone()))],
            Event::KdsDegradedExit => vec![],
            Event::FaultInjected { op, file_kind, torn } => vec![
                ("op", Str((*op).to_string())),
                ("file_kind", Str((*file_kind).to_string())),
                ("torn", Str(torn.to_string())),
            ],
            Event::IntegrityViolation { file, offset } => vec![
                ("file", U64(*file)),
                ("offset", U64(*offset)),
            ],
            Event::SlowOp { op, trace_id, wall_micros, threshold_micros, spans } => vec![
                ("op", Str((*op).to_string())),
                ("trace_id", U64(*trace_id)),
                ("wall_micros", U64(*wall_micros)),
                ("threshold_micros", U64(*threshold_micros)),
                ("spans", U64(*spans)),
            ],
            Event::Watchdog { op, trace_id, elapsed_micros, deadline_micros, stack } => vec![
                ("op", Str((*op).to_string())),
                ("trace_id", U64(*trace_id)),
                ("elapsed_micros", U64(*elapsed_micros)),
                ("deadline_micros", U64(*deadline_micros)),
                ("stack", Str(stack.clone())),
            ],
            Event::StatsWindow {
                seq,
                duration_micros,
                writes_per_sec,
                reads_per_sec,
                cache_hit_ratio,
                stall_fraction,
            } => vec![
                ("seq", U64(*seq)),
                ("duration_micros", U64(*duration_micros)),
                ("writes_per_sec", F64(*writes_per_sec)),
                ("reads_per_sec", F64(*reads_per_sec)),
                ("cache_hit_ratio", F64(*cache_hit_ratio)),
                ("stall_fraction", F64(*stall_fraction)),
            ],
        }
    }
}

/// Receiver of engine events. Implementations must tolerate being called
/// from any engine thread (foreground writers, background jobs).
pub trait EventListener: Send + Sync {
    fn on_event(&self, event: &Event);
}

/// Fan-out of engine events to all registered listeners.
///
/// Itself an [`EventListener`], so a dispatcher can be handed to
/// subsystems (env, resolver) that only know the trait. Emission with no
/// listeners is a single relaxed atomic load.
#[derive(Default)]
pub struct EventDispatcher {
    listeners: Mutex<Vec<Arc<dyn EventListener>>>,
    active: AtomicBool,
}

impl EventDispatcher {
    pub fn new() -> EventDispatcher {
        EventDispatcher::default()
    }

    pub fn add(&self, listener: Arc<dyn EventListener>) {
        if let Ok(mut l) = self.listeners.lock() {
            l.push(listener);
            self.active.store(true, Ordering::Release);
        }
    }

    pub fn has_listeners(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    pub fn emit(&self, event: &Event) {
        if !self.has_listeners() {
            return;
        }
        if let Ok(listeners) = self.listeners.lock() {
            for l in listeners.iter() {
                l.on_event(event);
            }
        }
    }
}

impl EventListener for EventDispatcher {
    fn on_event(&self, event: &Event) {
        self.emit(event);
    }
}

/// Destination for rendered log lines (the engine implements this over
/// its `Env` so `LOG` lands in the DB directory regardless of backend).
pub trait LogSink: Send + Sync {
    fn write_line(&self, line: &str);
}

/// A [`LogSink`] that appends to an in-memory buffer; for tests.
#[derive(Default)]
pub struct VecSink {
    pub lines: Mutex<Vec<String>>,
}

impl LogSink for VecSink {
    fn write_line(&self, line: &str) {
        if let Ok(mut l) = self.lines.lock() {
            l.push(line.to_string());
        }
    }
}

/// Structured, level-filtered event sink rendering a RocksDB-style log.
///
/// Human format:
/// `2026/08/07-12:00:00.000000 [info] flush_end file_number=7 bytes=4096 micros=1500`
///
/// JSON-lines format:
/// `{"ts_micros":1754568000000000,"level":"info","event":"flush_end","file_number":7,...}`
pub struct InfoLog {
    sink: Box<dyn LogSink>,
    min_level: LogLevel,
    json: bool,
}

impl InfoLog {
    pub fn new(sink: Box<dyn LogSink>, min_level: LogLevel, json: bool) -> InfoLog {
        InfoLog { sink, min_level, json }
    }

    /// Log a free-form message at `level` (no event payload).
    pub fn message(&self, level: LogLevel, msg: &str) {
        if level < self.min_level {
            return;
        }
        self.render(level, "message", &[("message", FieldValue::Str(msg.to_string()))]);
    }

    fn render(&self, level: LogLevel, name: &str, fields: &[(&'static str, FieldValue)]) {
        let micros = unix_micros();
        let mut line = String::with_capacity(96);
        if self.json {
            let _ = write!(line, "{{\"ts_micros\":{micros},\"level\":\"{}\",\"event\":\"{name}\"", level.as_str());
            for (k, v) in fields {
                match v {
                    FieldValue::U64(n) => {
                        let _ = write!(line, ",\"{k}\":{n}");
                    }
                    FieldValue::F64(n) => {
                        let _ = write!(line, ",\"{k}\":{n:.3}");
                    }
                    FieldValue::Str(s) => {
                        let _ = write!(line, ",\"{k}\":{}", crate::json::escaped(s));
                    }
                }
            }
            line.push('}');
        } else {
            let _ = write!(line, "{} [{}] {name}", format_timestamp(micros), level.as_str());
            for (k, v) in fields {
                match v {
                    FieldValue::Str(s) if s.contains(' ') => {
                        let _ = write!(line, " {k}={s:?}");
                    }
                    _ => {
                        let _ = write!(line, " {k}={v}");
                    }
                }
            }
        }
        self.sink.write_line(&line);
    }
}

impl EventListener for InfoLog {
    fn on_event(&self, event: &Event) {
        if event.level() < self.min_level {
            return;
        }
        self.render(event.level(), event.name(), &event.fields());
    }
}

fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// `YYYY/MM/DD-HH:MM:SS.uuuuuu` from microseconds since the Unix epoch
/// (UTC). Civil-date conversion per Howard Hinnant's algorithm.
fn format_timestamp(micros: u64) -> String {
    let secs = micros / 1_000_000;
    let sub = micros % 1_000_000;
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (h, m, s) = (tod / 3600, (tod / 60) % 60, tod % 60);
    // days since 1970-01-01 -> civil (y, m, d)
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    format!("{y:04}/{mo:02}/{d:02}-{h:02}:{m:02}:{s:02}.{sub:06}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_config_parses() {
        assert_eq!(LogConfig::from_env_str(""), LogConfig { level: None, json: false });
        assert_eq!(
            LogConfig::from_env_str("info"),
            LogConfig { level: Some(LogLevel::Info), json: false }
        );
        assert_eq!(
            LogConfig::from_env_str("debug,json"),
            LogConfig { level: Some(LogLevel::Debug), json: true }
        );
        assert_eq!(
            LogConfig::from_env_str("json , WARN"),
            LogConfig { level: Some(LogLevel::Warn), json: true }
        );
        assert_eq!(LogConfig::from_env_str("off"), LogConfig { level: None, json: false });
    }

    #[test]
    fn level_ordering() {
        assert!(LogLevel::Debug < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Error);
    }

    #[test]
    fn info_log_filters_by_level() {
        let sink = Arc::new(VecSink::default());
        struct Fwd(Arc<VecSink>);
        impl LogSink for Fwd {
            fn write_line(&self, line: &str) {
                self.0.write_line(line);
            }
        }
        let log = InfoLog::new(Box::new(Fwd(sink.clone())), LogLevel::Warn, false);
        log.on_event(&Event::FlushBegin { immutables: 1 }); // info: filtered
        log.on_event(&Event::WriteStall { reason: "l0_stop", l0_files: 16 });
        let lines = sink.lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("write_stall"));
        assert!(lines[0].contains("reason=l0_stop"));
        assert!(lines[0].contains("l0_files=16"));
    }

    #[test]
    fn json_lines_are_valid_objects() {
        let sink = Arc::new(VecSink::default());
        struct Fwd(Arc<VecSink>);
        impl LogSink for Fwd {
            fn write_line(&self, line: &str) {
                self.0.write_line(line);
            }
        }
        let log = InfoLog::new(Box::new(Fwd(sink.clone())), LogLevel::Debug, true);
        log.on_event(&Event::BackgroundError {
            job: "flush",
            severity: "soft",
            message: "disk \"full\"".to_string(),
        });
        let lines = sink.lines.lock().unwrap();
        assert_eq!(lines.len(), 1);
        let l = &lines[0];
        assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        assert!(l.contains("\"event\":\"background_error\""));
        assert!(l.contains("\"severity\":\"soft\""));
        assert!(l.contains("\\\"full\\\""), "quotes must be escaped: {l}");
    }

    #[test]
    fn dispatcher_fans_out() {
        struct Count(std::sync::atomic::AtomicU64);
        impl EventListener for Count {
            fn on_event(&self, _e: &Event) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let d = EventDispatcher::new();
        assert!(!d.has_listeners());
        d.emit(&Event::Resume); // no listeners: cheap no-op
        let c1 = Arc::new(Count(std::sync::atomic::AtomicU64::new(0)));
        let c2 = Arc::new(Count(std::sync::atomic::AtomicU64::new(0)));
        d.add(c1.clone());
        d.add(c2.clone());
        d.emit(&Event::Resume);
        d.emit(&Event::KdsDegradedExit);
        assert_eq!(c1.0.load(Ordering::Relaxed), 2);
        assert_eq!(c2.0.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn timestamp_format() {
        // 2026-08-07 00:00:00 UTC = 1785024000 (days from epoch check).
        let ts = format_timestamp(0);
        assert_eq!(ts, "1970/01/01-00:00:00.000000");
        let ts = format_timestamp(86_400 * 1_000_000 + 1);
        assert_eq!(ts, "1970/01/02-00:00:00.000001");
        // Leap-year boundary: 2024-02-29.
        let secs_2024_02_29 = 1_709_164_800u64; // 2024-02-29 00:00:00 UTC
        assert_eq!(format_timestamp(secs_2024_02_29 * 1_000_000), "2024/02/29-00:00:00.000000");
    }

    #[test]
    fn every_event_names_and_renders() {
        let events = [
            Event::DbOpen { path: "/x".into(), recovered_wals: 1 },
            Event::DbClose { path: "/x".into() },
            Event::FlushBegin { immutables: 1 },
            Event::FlushEnd { file_number: 2, bytes: 3, micros: 4 },
            Event::CompactionBegin { level: 0, inputs: 4, input_bytes: 5 },
            Event::CompactionEnd {
                level: 0,
                bytes_read: 1,
                bytes_written: 2,
                output_files: 1,
                micros: 9,
            },
            Event::SubcompactionBegin { level: 0, subtasks: 4, input_bytes: 5 },
            Event::SubcompactionEnd { index: 1, bytes_written: 2, micros: 3 },
            Event::WriteStall { reason: "l0_slowdown", l0_files: 8 },
            Event::BackgroundError { job: "compaction", severity: "hard", message: "io".into() },
            Event::BackgroundRetry { job: "flush", attempt: 1, message: "io".into() },
            Event::Resume,
            Event::KdsRetry { attempt: 2, message: "timeout".into() },
            Event::KdsFailover { failovers: 1 },
            Event::KdsDegradedEnter { message: "kds down".into() },
            Event::KdsDegradedExit,
            Event::FaultInjected { op: "read", file_kind: "SST", torn: false },
            Event::IntegrityViolation { file: 7, offset: 4096 },
            Event::SlowOp {
                op: "multi_get",
                trace_id: 3,
                wall_micros: 12_000,
                threshold_micros: 10_000,
                spans: 9,
            },
            Event::Watchdog {
                op: "get",
                trace_id: 4,
                elapsed_micros: 60_000,
                deadline_micros: 50_000,
                stack: "get>read_window".into(),
            },
            Event::StatsWindow {
                seq: 1,
                duration_micros: 1_000_000,
                writes_per_sec: 1000.0,
                reads_per_sec: 500.0,
                cache_hit_ratio: 0.9,
                stall_fraction: 0.01,
            },
        ];
        let mut names = std::collections::HashSet::new();
        for e in &events {
            assert!(names.insert(e.name()), "duplicate event name {}", e.name());
            let _ = e.level();
            let _ = e.fields();
        }
    }
}
