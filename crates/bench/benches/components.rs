//! Criterion benches for the engine's building blocks: memtable, blocks,
//! bloom filters, WAL append, and the block cache — the substrate costs
//! underneath every paper figure.

use std::sync::Arc;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shield_env::{Env, FileKind, MemEnv};
use shield_lsm::memtable::MemTable;
use shield_lsm::sst::block::{Block, BlockBuilder};
use shield_lsm::sst::filter::{BloomFilterBuilder, BloomFilterReader};
use shield_lsm::types::{make_internal_key, make_lookup_key, ValueType};
use shield_lsm::wal::LogWriter;
use std::hint::black_box;

fn bench_memtable(c: &mut Criterion) {
    let mut group = c.benchmark_group("memtable");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("insert", |b| {
        let mt = MemTable::new(1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            mt.add(i, ValueType::Value, &i.to_be_bytes(), &[0u8; 100]);
        });
    });
    group.bench_function("get_hit", |b| {
        let mt = MemTable::new(1);
        for i in 0..100_000u64 {
            mt.add(i + 1, ValueType::Value, &i.to_be_bytes(), &[0u8; 100]);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            black_box(mt.get(&i.to_be_bytes(), u64::MAX >> 8));
        });
    });
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("block");
    group.sample_size(10);
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..100u32)
        .map(|i| {
            (
                make_internal_key(format!("key{i:06}").as_bytes(), 1, ValueType::Value),
                vec![0u8; 100],
            )
        })
        .collect();
    group.bench_function("build_4k", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::new(16);
            for (k, v) in &entries {
                builder.add(k, v);
            }
            black_box(builder.finish())
        });
    });
    let mut builder = BlockBuilder::new(16);
    for (k, v) in &entries {
        builder.add(k, v);
    }
    let block = Arc::new(Block::from_raw(Bytes::from(builder.finish())));
    group.bench_function("seek", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 37) % 100;
            let mut it = block.iter();
            it.seek(&make_lookup_key(format!("key{i:06}").as_bytes(), u64::MAX >> 8));
            black_box(it.valid())
        });
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    group.sample_size(10);
    let mut builder = BloomFilterBuilder::new(10);
    for i in 0..100_000u32 {
        builder.add_key(format!("key{i:08}").as_bytes());
    }
    let reader = BloomFilterReader::new(builder.finish());
    group.throughput(Throughput::Elements(1));
    group.bench_function("may_contain", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7919);
            black_box(reader.may_contain(format!("key{i:08}").as_bytes()))
        });
    });
    group.finish();
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(128));
    group.bench_function("append_128b_record", |b| {
        let env = MemEnv::new();
        let file = env.new_writable_file("log", FileKind::Wal).unwrap();
        let mut w = LogWriter::new(file);
        let record = [0xabu8; 128];
        b.iter(|| {
            w.add_record(black_box(&record)).unwrap();
            w.flush().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_memtable, bench_block, bench_bloom, bench_wal_append);
criterion_main!(benches);
