//! Criterion benches over the whole engine: the per-operation view of the
//! paper's headline comparisons (Fig. 7's fillrandom/readrandom, Fig. 14's
//! buffer sweep) for all five systems. Absolute numbers depend on the
//! machine; the *ordering* (Plain ≥ +Buf variants ≥ unbuffered variants on
//! writes; near-parity on reads) is the reproduction target.

#![allow(clippy::field_reassign_with_default)]

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shield_bench::driver::preload;
use shield_bench::systems::{build_system, SystemHandle, SystemKind, Tuning};
use shield_bench::workloads::key_bytes;
use shield_env::MemEnv;
use shield_lsm::{ReadOptions, WriteOptions};
use std::hint::black_box;

fn open(kind: SystemKind, tuning: &Tuning) -> SystemHandle {
    build_system(kind, Arc::new(MemEnv::new()), "db", tuning).expect("open")
}

/// Fig. 7 (write side): per-put cost across the five systems.
fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("put_100b");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for kind in SystemKind::ALL {
        let sys = open(kind, &Tuning::default());
        let w = WriteOptions::default();
        let value = [0x61u8; 100];
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                i += 1;
                sys.db().put(&w, &key_bytes(i % 100_000, 16), black_box(&value)).unwrap();
            });
        });
    }
    group.finish();
}

/// Fig. 7 (read side): per-get cost — encryption should be nearly free.
fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_100b");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for kind in SystemKind::ALL {
        let sys = open(kind, &Tuning::default());
        preload(sys.db(), 20_000, 16, 100);
        let r = ReadOptions::new();
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                i = (i + 7919) % 20_000;
                black_box(sys.db().get(&r, &key_bytes(i, 16)).unwrap());
            });
        });
    }
    group.finish();
}

/// Fig. 14: per-put cost as the SHIELD WAL buffer grows.
fn bench_wal_buffer_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("shield_put_by_wal_buffer");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    for buffer in [0usize, 128, 512, 2048] {
        let mut tuning = Tuning::default();
        tuning.wal_buffer_size = buffer;
        let kind = if buffer == 0 { SystemKind::Shield } else { SystemKind::ShieldBuf };
        let sys = open(kind, &tuning);
        let w = WriteOptions::default();
        let value = [0x62u8; 100];
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(buffer), |b| {
            b.iter(|| {
                i += 1;
                sys.db().put(&w, &key_bytes(i % 100_000, 16), black_box(&value)).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_get, bench_wal_buffer_sweep);
criterion_main!(benches);
