//! Criterion benches for the crypto substrate — the micro-costs behind
//! Figure 4: per-call cipher initialization vs bulk keystream throughput,
//! for both supported algorithms, plus the secure-cache KDF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shield_crypto::aes::Aes128;
use shield_crypto::chacha20::ChaCha20;
use shield_crypto::{
    pbkdf2_hmac_sha256, reference, sha256, Algorithm, CipherContext, Dek, NONCE_LEN,
};
use std::hint::black_box;

fn bench_cipher_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher_init");
    group.sample_size(20);
    for algo in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
        let dek = Dek::generate(algo);
        let nonce = [7u8; NONCE_LEN];
        group.bench_function(BenchmarkId::from_parameter(algo), |b| {
            b.iter(|| black_box(CipherContext::new(black_box(&dek), &nonce)));
        });
    }
    group.finish();
}

/// Fig. 4a's left side: encryption cost per payload size, fresh context
/// per call (the unbuffered-WAL cost model).
fn bench_encrypt_with_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("encrypt_with_init");
    group.sample_size(10);
    let dek = Dek::generate(Algorithm::Aes128Ctr);
    let nonce = [7u8; NONCE_LEN];
    for size in [64usize, 512, 4096, 65_536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut buf = vec![0xabu8; size];
            b.iter(|| {
                let ctx = CipherContext::new(&dek, &nonce);
                ctx.encrypt_at(0, black_box(&mut buf));
            });
        });
    }
    group.finish();
}

/// Bulk keystream throughput with an amortized (reused) context — what
/// the WAL buffer and chunked compaction encryption achieve.
fn bench_bulk_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("bulk_xor");
    group.sample_size(10);
    for algo in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
        let dek = Dek::generate(algo);
        let ctx = CipherContext::new(&dek, &[7u8; NONCE_LEN]);
        let mut buf = vec![0u8; 1 << 20];
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function(BenchmarkId::from_parameter(algo), |b| {
            b.iter(|| ctx.xor_at(0, black_box(&mut buf)));
        });
    }
    group.finish();
}

/// Batched production kernels vs the scalar reference implementations on a
/// 4 KiB SST-block payload — the same comparison `bin/crypto.rs --smoke`
/// gates on, here as a criterion group for interactive runs. See DESIGN.md
/// § perf kernels for the measured trajectory.
fn bench_batched_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_vs_scalar_4k");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(4096));
    let nonce = [7u8; NONCE_LEN];
    for algo in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
        let dek = Dek::generate(algo);
        let ctx = CipherContext::new(&dek, &nonce);
        let mut buf = vec![0xabu8; 4096];
        group.bench_function(BenchmarkId::new("batched", algo), |b| {
            b.iter(|| ctx.xor_at(0, black_box(&mut buf)));
        });
        match algo {
            Algorithm::Aes128Ctr => {
                let key: [u8; 16] = dek.key_bytes().try_into().unwrap();
                let schedule = Aes128::new(&key);
                group.bench_function(BenchmarkId::new("scalar", algo), |b| {
                    b.iter(|| {
                        reference::aes_ctr_xor(&schedule, &nonce, 0, black_box(&mut buf));
                    });
                });
            }
            Algorithm::ChaCha20 => {
                let key: [u8; 32] = dek.key_bytes().try_into().unwrap();
                let n12: [u8; 12] = nonce[..12].try_into().unwrap();
                let ctr = u32::from_le_bytes(nonce[12..].try_into().unwrap());
                let cipher = ChaCha20::new_with_counter(&key, &n12, ctr);
                group.bench_function(BenchmarkId::new("scalar", algo), |b| {
                    b.iter(|| reference::chacha20_xor(&cipher, 0, black_box(&mut buf)));
                });
            }
        }
    }
    group.finish();
}

fn bench_hash_and_kdf(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    group.sample_size(10);
    let data = vec![0x5au8; 64 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_64k", |b| b.iter(|| sha256(black_box(&data))));
    group.finish();

    let mut group = c.benchmark_group("kdf");
    group.sample_size(10);
    group.bench_function("pbkdf2_2048_iters", |b| {
        b.iter(|| pbkdf2_hmac_sha256(black_box(b"passkey"), b"salt-16-bytes!!!", 2048, 48));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cipher_init,
    bench_encrypt_with_init,
    bench_bulk_throughput,
    bench_batched_vs_scalar,
    bench_hash_and_kdf
);
criterion_main!(benches);
