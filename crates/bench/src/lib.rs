//! Benchmark harness for the SHIELD reproduction.
//!
//! Provides deterministic workload generators (db_bench-style fillrandom /
//! readrandom / mixed ratios, Mixgraph, YCSB A–F), a multi-threaded driver
//! with latency histograms, system builders for the five configurations
//! the paper compares (unencrypted, EncFS ± WAL-Buf, SHIELD ± WAL-Buf),
//! and one experiment per table/figure of the paper's §6 — see
//! [`experiments::all_experiments`] and the `paper` binary.

#![allow(clippy::field_reassign_with_default)]

pub mod driver;
pub mod experiments;
pub mod hist;
pub mod report;
pub mod rng;
pub mod systems;
pub mod workloads;

pub use driver::{run_workload, DriverConfig, RunResult};
pub use hist::Histogram;
pub use report::Table;
pub use rng::{Rng, Zipfian};
pub use systems::{build_system, SystemHandle, SystemKind, Tuning};
