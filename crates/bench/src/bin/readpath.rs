//! Read-path benchmark over disaggregated storage: readrandom, 8-thread
//! hot-key single-flight coalescing, and sequential scans with and
//! without readahead, in three encryption modes (plain, EncFS, SHIELD).
//!
//! The setup mirrors the paper's DS read experiments (§6.2): SSTs live
//! behind a [`RemoteEnv`] charging a round trip per storage operation, so
//! every cache miss costs ~an RTT. That makes the two new read-path
//! behaviors directly measurable:
//!
//! - **Single-flight.** Eight threads issuing `get`s for the same cold
//!   key miss the same `(table, offset)`; the fetcher must coalesce them
//!   into one remote read. The dedup ratio (cache misses per underlying
//!   read) must exceed 1.
//! - **Readahead.** A cold sequential scan with `readahead_blocks = 8`
//!   overlaps prefetch round trips with iteration and must beat the
//!   serial no-readahead scan. The full run gates on a ≥ 1.2x speedup;
//!   `--smoke` (the verify tier) only asserts both mechanisms *engage* —
//!   CI timing noise is no place for a perf gate. The committed full-mode
//!   `BENCH_readpath.json` is the perf record.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use shield::{open_encfs, open_plain, open_shield, EncFsDb, ShieldDb, ShieldOptions};
use shield_bench::rng::Rng;
use shield_crypto::{Algorithm, Dek};
use shield_env::{Env, MemEnv, NetworkModel, RemoteEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, StatsSnapshot, WriteOptions};

const MISS_THREADS: usize = 8;
const READAHEAD_BLOCKS: usize = 16;

struct Config {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config { smoke: false, out: "BENCH_readpath.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => {
                cfg.out = args.next().ok_or_else(|| "--out needs a path".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: readpath [--smoke] [--out BENCH_readpath.json]".to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

fn network(smoke: bool) -> NetworkModel {
    NetworkModel {
        rtt: Duration::from_micros(if smoke { 100 } else { 500 }),
        bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbps
        write_packet_bytes: 64 * 1024,
    }
}

/// Which encryption sits under the read path.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    EncFs,
    Shield,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Plain, Mode::EncFs, Mode::Shield];

    fn label(self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::EncFs => "encfs",
            Mode::Shield => "shield",
        }
    }
}

enum Handle {
    Plain(Db),
    EncFs(EncFsDb),
    Shield(ShieldDb),
}

impl Handle {
    fn db(&self) -> &Db {
        match self {
            Handle::Plain(db) => db,
            Handle::EncFs(db) => &db.db,
            Handle::Shield(db) => &db.db,
        }
    }
}

/// One mode's persistent state: the remote env holding its SSTs plus the
/// key material that must survive reopens (the EncFS instance DEK, the
/// SHIELD KDS).
struct ModeCtx {
    mode: Mode,
    env: Arc<dyn Env>,
    dek: Dek,
    kds: Arc<LocalKds>,
}

impl ModeCtx {
    fn new(mode: Mode, smoke: bool) -> Self {
        ModeCtx {
            mode,
            env: Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), network(smoke))),
            dek: Dek::generate(Algorithm::Aes128Ctr),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
        }
    }

    /// Opens (or reopens, with a cold block cache) the mode's database.
    fn open(&self, readahead_blocks: usize) -> Handle {
        let mut opts = Options::new(self.env.clone())
            .with_write_buffer_size(256 << 10)
            .with_background_jobs(4)
            .with_readahead_blocks(readahead_blocks);
        opts.block_cache_bytes = 8 << 20;
        opts.compaction.l0_compaction_trigger = 4;
        opts.compaction.target_file_size = 256 << 10;
        // The read phases never write; the fill phase flushes explicitly.
        opts.disable_wal = true;
        match self.mode {
            Mode::Plain => Handle::Plain(open_plain(opts, "db").expect("open plain")),
            Mode::EncFs => {
                Handle::EncFs(open_encfs(opts, "db", self.dek.clone(), 0).expect("open encfs"))
            }
            Mode::Shield => {
                let mut sopts = ShieldOptions::new(
                    self.kds.clone() as Arc<dyn Kds>,
                    ServerId(1),
                    b"bench-passkey",
                );
                sopts.wal_buffer_size = 0;
                Handle::Shield(open_shield(opts, "db", sopts).expect("open shield"))
            }
        }
    }
}

struct ReadRandomReport {
    ops: u64,
    secs: f64,
    hits: u64,
    misses: u64,
}

struct SingleFlightReport {
    hot_keys: u64,
    waits: u64,
    misses: u64,
    dedup_ratio: f64,
}

struct ScanReport {
    entries: u64,
    no_readahead_secs: f64,
    readahead_secs: f64,
    readahead_issued: u64,
    readahead_useful: u64,
    speedup: f64,
}

struct ModeReport {
    mode: Mode,
    readrandom: ReadRandomReport,
    single_flight: SingleFlightReport,
    scan: ScanReport,
}

fn key_bytes(i: u64) -> Vec<u8> {
    format!("k{i:08}").into_bytes()
}

fn cache_snapshot(db: &Db) -> StatsSnapshot {
    db.statistics().snapshot()
}

/// Sequentially fills `keys` entries and compacts them into read-only SSTs.
fn fill(ctx: &ModeCtx, keys: u64) {
    let handle = ctx.open(0);
    let db = handle.db();
    let w = WriteOptions::default();
    let mut rng = Rng::new(0x7ead_bea7);
    let mut value = vec![0u8; 256];
    for i in 0..keys {
        rng.fill(&mut value);
        db.put(&w, &key_bytes(i), &value).expect("put");
    }
    db.flush().expect("flush");
    db.compact_all().expect("compact");
}

/// Uniform random gets over the full key space, cold cache at the start.
fn run_readrandom(ctx: &ModeCtx, keys: u64, ops: u64) -> ReadRandomReport {
    let handle = ctx.open(0);
    let db = handle.db();
    let ropts = ReadOptions::default();
    let mut rng = Rng::new(0x0eadca11);
    let start = Instant::now();
    for _ in 0..ops {
        let k = rng.next_below(keys);
        let got = db.get(&ropts, &key_bytes(k)).expect("get");
        assert!(got.is_some(), "fill lost key {k}");
    }
    let secs = start.elapsed().as_secs_f64();
    let s = cache_snapshot(db);
    ReadRandomReport { ops, secs, hits: s.block_cache_hits, misses: s.block_cache_misses }
}

/// For each of `hot_keys` cold keys, eight threads `get` it at the same
/// instant. Under an RTT-dominated env the seven late misses must join
/// the leader's in-flight read instead of issuing their own.
fn run_single_flight(ctx: &ModeCtx, keys: u64, hot_keys: u64) -> SingleFlightReport {
    let handle = ctx.open(0);
    let db = handle.db();
    let stride = keys / hot_keys;
    for h in 0..hot_keys {
        let key = key_bytes(h * stride);
        let barrier = Barrier::new(MISS_THREADS);
        std::thread::scope(|scope| {
            for _ in 0..MISS_THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    let got = db.get(&ReadOptions::default(), &key).expect("get");
                    assert!(got.is_some(), "hot key vanished");
                });
            }
        });
    }
    let s = cache_snapshot(db);
    let misses = s.block_cache_misses;
    let waits = s.block_cache_singleflight_waits;
    let underlying = misses.saturating_sub(waits).max(1);
    SingleFlightReport {
        hot_keys,
        waits,
        misses,
        dedup_ratio: misses as f64 / underlying as f64,
    }
}

/// Full forward scan; returns (entries, seconds, stats at the end).
fn scan_once(ctx: &ModeCtx, readahead_blocks: usize) -> (u64, f64, StatsSnapshot) {
    let handle = ctx.open(readahead_blocks);
    let db = handle.db();
    let start = Instant::now();
    let mut it = db.iter(&ReadOptions::default()).expect("iter");
    it.seek_to_first();
    let mut entries = 0u64;
    while it.valid() {
        entries += 1;
        it.next();
    }
    it.status().expect("scan status");
    let secs = start.elapsed().as_secs_f64();
    let s = cache_snapshot(db);
    (entries, secs, s)
}

fn run_scans(ctx: &ModeCtx, keys: u64) -> ScanReport {
    let (base_entries, no_readahead_secs, _) = scan_once(ctx, 0);
    let (entries, readahead_secs, s) = scan_once(ctx, READAHEAD_BLOCKS);
    assert_eq!(base_entries, entries, "readahead changed the scan's entry count");
    assert_eq!(entries, keys, "scan missed entries");
    ScanReport {
        entries,
        no_readahead_secs,
        readahead_secs,
        readahead_issued: s.readahead_issued,
        readahead_useful: s.readahead_useful,
        speedup: no_readahead_secs / readahead_secs.max(1e-9),
    }
}

fn run_mode(mode: Mode, smoke: bool) -> ModeReport {
    let keys: u64 = if smoke { 2_000 } else { 10_000 };
    let readrandom_ops: u64 = if smoke { 1_000 } else { 5_000 };
    let hot_keys: u64 = 32;

    let ctx = ModeCtx::new(mode, smoke);
    fill(&ctx, keys);
    let readrandom = run_readrandom(&ctx, keys, readrandom_ops);
    let single_flight = run_single_flight(&ctx, keys, hot_keys);
    let scan = run_scans(&ctx, keys);
    ModeReport { mode, readrandom, single_flight, scan }
}

fn report_json(mode: &str, model: &NetworkModel, reports: &[ModeReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"readpath\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"readrandom + hot-key miss storm + seq scan, remote storage\","
    );
    let _ = writeln!(s, "  \"miss_threads\": {MISS_THREADS},");
    let _ = writeln!(s, "  \"readahead_blocks\": {READAHEAD_BLOCKS},");
    let _ = writeln!(s, "  \"network\": {{");
    let _ = writeln!(s, "    \"rtt_us\": {},", model.rtt.as_micros());
    let _ = writeln!(
        s,
        "    \"bandwidth_bytes_per_sec\": {},",
        model.bandwidth_bytes_per_sec.map_or("null".to_string(), |b| b.to_string())
    );
    let _ = writeln!(s, "    \"write_packet_bytes\": {}", model.write_packet_bytes);
    let _ = writeln!(s, "  }},");
    s.push_str("  \"systems\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", r.mode.label());
        let rr = &r.readrandom;
        let _ = writeln!(s, "      \"readrandom\": {{");
        let _ = writeln!(s, "        \"ops\": {},", rr.ops);
        let _ = writeln!(s, "        \"secs\": {:.3},", rr.secs);
        let _ = writeln!(s, "        \"ops_per_sec\": {:.0},", rr.ops as f64 / rr.secs.max(1e-9));
        let _ = writeln!(s, "        \"cache_hits\": {},", rr.hits);
        let _ = writeln!(s, "        \"cache_misses\": {}", rr.misses);
        let _ = writeln!(s, "      }},");
        let sf = &r.single_flight;
        let _ = writeln!(s, "      \"single_flight\": {{");
        let _ = writeln!(s, "        \"hot_keys\": {},", sf.hot_keys);
        let _ = writeln!(s, "        \"cache_misses\": {},", sf.misses);
        let _ = writeln!(s, "        \"singleflight_waits\": {},", sf.waits);
        let _ = writeln!(s, "        \"dedup_ratio\": {:.2}", sf.dedup_ratio);
        let _ = writeln!(s, "      }},");
        let sc = &r.scan;
        let _ = writeln!(s, "      \"seq_scan\": {{");
        let _ = writeln!(s, "        \"entries\": {},", sc.entries);
        let _ = writeln!(s, "        \"no_readahead_secs\": {:.3},", sc.no_readahead_secs);
        let _ = writeln!(s, "        \"readahead_secs\": {:.3},", sc.readahead_secs);
        let _ = writeln!(s, "        \"readahead_issued\": {},", sc.readahead_issued);
        let _ = writeln!(s, "        \"readahead_useful\": {},", sc.readahead_useful);
        let _ = writeln!(s, "        \"speedup\": {:.2}", sc.speedup);
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if cfg.smoke { "smoke" } else { "full" };
    let model = network(cfg.smoke);
    println!("readpath bench ({mode} mode, rtt {} us over 1 Gbps pipe)", model.rtt.as_micros());

    let reports: Vec<ModeReport> =
        Mode::ALL.into_iter().map(|m| run_mode(m, cfg.smoke)).collect();
    for r in &reports {
        println!(
            "  {:>6}: readrandom {:>7.0} ops/s | single-flight dedup {:>5.2}x \
             ({} waits / {} misses) | scan {:.3}s -> {:.3}s ({:.2}x, {} prefetches)",
            r.mode.label(),
            r.readrandom.ops as f64 / r.readrandom.secs.max(1e-9),
            r.single_flight.dedup_ratio,
            r.single_flight.waits,
            r.single_flight.misses,
            r.scan.no_readahead_secs,
            r.scan.readahead_secs,
            r.scan.speedup,
            r.scan.readahead_issued,
        );
    }

    let json = report_json(mode, &model, &reports);
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("failed to write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cfg.out);

    // Engagement gates (both modes): every system must coalesce concurrent
    // misses and must actually issue prefetches.
    for r in &reports {
        if r.single_flight.dedup_ratio <= 1.0 {
            eprintln!(
                "FAIL: {} single-flight dedup ratio {:.2} <= 1 ({} waits)",
                r.mode.label(),
                r.single_flight.dedup_ratio,
                r.single_flight.waits
            );
            return ExitCode::FAILURE;
        }
        if r.scan.readahead_issued == 0 {
            eprintln!("FAIL: {} scan with readahead never prefetched", r.mode.label());
            return ExitCode::FAILURE;
        }
    }
    // Perf gate (full mode only): readahead must beat the serial scan by
    // ≥ 1.2x over the 500 µs RTT env.
    if !cfg.smoke {
        for r in &reports {
            if r.scan.speedup < 1.2 {
                eprintln!(
                    "FAIL: {} readahead speedup {:.2}x < 1.2x",
                    r.mode.label(),
                    r.scan.speedup
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
