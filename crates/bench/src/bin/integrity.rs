//! Authenticated-integrity overhead benchmark (PR 6): the same
//! disaggregated-storage setup as the read-path bench (SSTs behind a
//! [`RemoteEnv`] charging an RTT per storage op), run twice per system —
//! once with CRC-only integrity (v1 files) and once with per-block HMAC
//! verification (v2 files) — plus two hostile workloads:
//!
//! - **tombstone flood**: every key deleted, tombstones left unmerged in
//!   L0; scans and seek storms must grind through them without hanging.
//! - **range abuse**: repeated short seeks into the fully-deleted range,
//!   the access pattern a range-scan DoS would use.
//!
//! The gate (full mode only): HMAC verification must cost < 10% on
//! SHIELD-mode cold scans. On an RTT-dominated remote env that is the
//! honest deployment question — per-block MAC compute vs a network round
//! trip. `--smoke` only asserts the machinery engages (verified blocks
//! counted, zero failures); CI timing noise is no place for a perf gate.
//! The committed full-mode `BENCH_integrity.json` is the perf record.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shield::{open_plain, open_shield, ShieldDb, ShieldOptions};
use shield_bench::rng::Rng;
use shield_env::{Env, MemEnv, NetworkModel, RemoteEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Integrity, Options, ReadOptions, WriteOptions};

const ENGINE_KEY: [u8; 32] = [0x1d; 32];

struct Config {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config { smoke: false, out: "BENCH_integrity.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => {
                cfg.out = args.next().ok_or_else(|| "--out needs a path".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: integrity [--smoke] [--out BENCH_integrity.json]".to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

fn network(smoke: bool) -> NetworkModel {
    NetworkModel {
        rtt: Duration::from_micros(if smoke { 100 } else { 500 }),
        bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbps
        write_packet_bytes: 64 * 1024,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum System {
    Plain,
    Shield,
}

impl System {
    const ALL: [System; 2] = [System::Plain, System::Shield];

    fn label(self) -> &'static str {
        match self {
            System::Plain => "plain",
            System::Shield => "shield",
        }
    }
}

enum Handle {
    Plain(Db),
    Shield(ShieldDb),
}

impl Handle {
    fn db(&self) -> &Db {
        match self {
            Handle::Plain(db) => db,
            Handle::Shield(db) => &db.db,
        }
    }
}

/// One (system, integrity-mode) database: its remote env plus the key
/// material that must survive reopens.
struct Ctx {
    system: System,
    integrity: Integrity,
    env: Arc<dyn Env>,
    kds: Arc<LocalKds>,
}

impl Ctx {
    fn new(system: System, integrity: Integrity, smoke: bool) -> Self {
        Ctx {
            system,
            integrity,
            env: Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), network(smoke))),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
        }
    }

    /// Opens (or reopens, with a cold block cache) the database.
    fn open(&self) -> Handle {
        let mut opts = Options::new(self.env.clone())
            .with_write_buffer_size(256 << 10)
            .with_background_jobs(4)
            .with_integrity(self.integrity)
            .with_integrity_key(ENGINE_KEY);
        opts.block_cache_bytes = 8 << 20;
        opts.compaction.l0_compaction_trigger = 4;
        opts.compaction.target_file_size = 256 << 10;
        opts.disable_wal = true; // read phases never write; fills flush explicitly
        match self.system {
            System::Plain => Handle::Plain(open_plain(opts, "db").expect("open plain")),
            System::Shield => {
                let mut sopts = ShieldOptions::new(
                    self.kds.clone() as Arc<dyn Kds>,
                    ServerId(1),
                    b"bench-passkey",
                );
                sopts.wal_buffer_size = 0;
                Handle::Shield(open_shield(opts, "db", sopts).expect("open shield"))
            }
        }
    }
}

fn key_bytes(i: u64) -> Vec<u8> {
    format!("k{i:08}").into_bytes()
}

fn fill(ctx: &Ctx, keys: u64) {
    let handle = ctx.open();
    let db = handle.db();
    let w = WriteOptions::default();
    let mut rng = Rng::new(0x1317_e6b1);
    let mut value = vec![0u8; 256];
    for i in 0..keys {
        rng.fill(&mut value);
        db.put(&w, &key_bytes(i), &value).expect("put");
    }
    db.flush().expect("flush");
    db.compact_all().expect("compact");
}

struct ScanResult {
    entries: u64,
    secs: f64,
    integrity_checks: u64,
    integrity_failures: u64,
}

/// Cold full forward scan (fresh handle, empty block cache).
fn cold_scan(ctx: &Ctx) -> ScanResult {
    let handle = ctx.open();
    let db = handle.db();
    let start = Instant::now();
    let mut it = db.iter(&ReadOptions::default()).expect("iter");
    it.seek_to_first();
    let mut entries = 0u64;
    while it.valid() {
        entries += 1;
        it.next();
    }
    it.status().expect("scan status");
    let secs = start.elapsed().as_secs_f64();
    let s = db.statistics().snapshot();
    ScanResult { entries, secs, integrity_checks: s.integrity_checks, integrity_failures: s.integrity_failures }
}

/// Cold uniform random gets.
fn readrandom(ctx: &Ctx, keys: u64, ops: u64) -> f64 {
    let handle = ctx.open();
    let db = handle.db();
    let ropts = ReadOptions::default();
    let mut rng = Rng::new(0x0eadca11);
    let start = Instant::now();
    for _ in 0..ops {
        let k = rng.next_below(keys);
        let got = db.get(&ropts, &key_bytes(k)).expect("get");
        assert!(got.is_some(), "fill lost key {k}");
    }
    start.elapsed().as_secs_f64()
}

struct AbuseResult {
    flood_scan_secs: f64,
    seek_storm_secs: f64,
    surviving_entries: u64,
}

/// Tombstone flood + range abuse: delete every key and, while every
/// tombstone is still live (unmerged against the SST data), full-scan and
/// seek-storm across the graveyard. The merging iterator must read every
/// (verified) data block just to conclude nothing is there.
fn tombstone_abuse(ctx: &Ctx, keys: u64, seeks: u64) -> AbuseResult {
    let handle = ctx.open();
    let db = handle.db();
    let w = WriteOptions::default();
    for i in 0..keys {
        db.delete(&w, &key_bytes(i)).expect("delete");
    }
    let start = Instant::now();
    let mut it = db.iter(&ReadOptions::default()).expect("iter");
    it.seek_to_first();
    let mut surviving = 0u64;
    while it.valid() {
        surviving += 1;
        it.next();
    }
    it.status().expect("flood scan status");
    let flood_scan_secs = start.elapsed().as_secs_f64();

    let mut rng = Rng::new(0xab05_ed00);
    let start = Instant::now();
    let mut it = db.iter(&ReadOptions::default()).expect("iter");
    for _ in 0..seeks {
        let k = rng.next_below(keys);
        it.seek(&key_bytes(k));
        // Hostile pattern: each seek lands in a deleted range and must
        // skip tombstones to find out nothing is there.
        for _ in 0..4 {
            if !it.valid() {
                break;
            }
            it.next();
        }
    }
    it.status().expect("seek storm status");
    let seek_storm_secs = start.elapsed().as_secs_f64();
    AbuseResult { flood_scan_secs, seek_storm_secs, surviving_entries: surviving }
}

struct IntegrityModeReport {
    scan: ScanResult,
    readrandom_secs: f64,
    abuse: AbuseResult,
}

struct SystemReport {
    system: System,
    crc: IntegrityModeReport,
    hmac: IntegrityModeReport,
    scan_overhead_pct: f64,
    readrandom_overhead_pct: f64,
}

fn run_mode(system: System, integrity: Integrity, smoke: bool) -> IntegrityModeReport {
    let keys: u64 = if smoke { 2_000 } else { 10_000 };
    let readrandom_ops: u64 = if smoke { 500 } else { 3_000 };
    let seeks: u64 = if smoke { 200 } else { 1_000 };

    let ctx = Ctx::new(system, integrity, smoke);
    fill(&ctx, keys);
    let scan = cold_scan(&ctx);
    assert_eq!(scan.entries, keys, "scan missed entries");
    assert_eq!(scan.integrity_failures, 0, "bench data must verify clean");
    let readrandom_secs = readrandom(&ctx, keys, readrandom_ops);
    let abuse = tombstone_abuse(&ctx, keys, seeks);
    assert_eq!(abuse.surviving_entries, 0, "tombstone flood must delete everything");
    IntegrityModeReport { scan, readrandom_secs, abuse }
}

fn overhead_pct(crc: f64, hmac: f64) -> f64 {
    (hmac - crc) / crc.max(1e-9) * 100.0
}

fn run_system(system: System, smoke: bool) -> SystemReport {
    let crc = run_mode(system, Integrity::Crc, smoke);
    let hmac = run_mode(system, Integrity::Hmac, smoke);
    let scan_overhead_pct = overhead_pct(crc.scan.secs, hmac.scan.secs);
    let readrandom_overhead_pct = overhead_pct(crc.readrandom_secs, hmac.readrandom_secs);
    SystemReport { system, crc, hmac, scan_overhead_pct, readrandom_overhead_pct }
}

fn mode_json(s: &mut String, label: &str, r: &IntegrityModeReport, comma: bool) {
    let _ = writeln!(s, "      \"{label}\": {{");
    let _ = writeln!(s, "        \"cold_scan_secs\": {:.3},", r.scan.secs);
    let _ = writeln!(s, "        \"scan_entries\": {},", r.scan.entries);
    let _ = writeln!(s, "        \"integrity_checks\": {},", r.scan.integrity_checks);
    let _ = writeln!(s, "        \"integrity_failures\": {},", r.scan.integrity_failures);
    let _ = writeln!(s, "        \"readrandom_secs\": {:.3},", r.readrandom_secs);
    let _ = writeln!(s, "        \"tombstone_flood_scan_secs\": {:.3},", r.abuse.flood_scan_secs);
    let _ = writeln!(s, "        \"seek_storm_secs\": {:.3}", r.abuse.seek_storm_secs);
    let _ = writeln!(s, "      }}{}", if comma { "," } else { "" });
}

fn report_json(mode: &str, model: &NetworkModel, reports: &[SystemReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"integrity\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"cold scan + readrandom + tombstone flood, crc vs hmac, remote storage\","
    );
    let _ = writeln!(s, "  \"network\": {{");
    let _ = writeln!(s, "    \"rtt_us\": {},", model.rtt.as_micros());
    let _ = writeln!(
        s,
        "    \"bandwidth_bytes_per_sec\": {},",
        model.bandwidth_bytes_per_sec.map_or("null".to_string(), |b| b.to_string())
    );
    let _ = writeln!(s, "    \"write_packet_bytes\": {}", model.write_packet_bytes);
    let _ = writeln!(s, "  }},");
    s.push_str("  \"systems\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", r.system.label());
        mode_json(&mut s, "crc", &r.crc, true);
        mode_json(&mut s, "hmac", &r.hmac, true);
        let _ = writeln!(s, "      \"scan_overhead_pct\": {:.2},", r.scan_overhead_pct);
        let _ = writeln!(s, "      \"readrandom_overhead_pct\": {:.2}", r.readrandom_overhead_pct);
        let _ = writeln!(s, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if cfg.smoke { "smoke" } else { "full" };
    let model = network(cfg.smoke);
    println!(
        "integrity bench ({mode} mode, rtt {} us over 1 Gbps pipe)",
        model.rtt.as_micros()
    );

    let reports: Vec<SystemReport> =
        System::ALL.into_iter().map(|sys| run_system(sys, cfg.smoke)).collect();
    for r in &reports {
        println!(
            "  {:>6}: scan {:.3}s -> {:.3}s ({:+.2}%) | readrandom {:.3}s -> {:.3}s ({:+.2}%) \
             | {} blocks verified | flood scan {:.3}s, seek storm {:.3}s",
            r.system.label(),
            r.crc.scan.secs,
            r.hmac.scan.secs,
            r.scan_overhead_pct,
            r.crc.readrandom_secs,
            r.hmac.readrandom_secs,
            r.readrandom_overhead_pct,
            r.hmac.scan.integrity_checks,
            r.hmac.abuse.flood_scan_secs,
            r.hmac.abuse.seek_storm_secs,
        );
    }

    let json = report_json(mode, &model, &reports);
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("failed to write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cfg.out);

    // Engagement gates (both modes): HMAC runs must actually verify
    // blocks and must verify them all clean.
    for r in &reports {
        if r.hmac.scan.integrity_checks == 0 {
            eprintln!("FAIL: {} hmac scan verified zero blocks", r.system.label());
            return ExitCode::FAILURE;
        }
        if r.hmac.scan.integrity_failures != 0 {
            eprintln!(
                "FAIL: {} hmac scan reported {} failures on clean data",
                r.system.label(),
                r.hmac.scan.integrity_failures
            );
            return ExitCode::FAILURE;
        }
        if r.crc.scan.integrity_checks != 0 {
            eprintln!("FAIL: {} crc scan ran MAC verification", r.system.label());
            return ExitCode::FAILURE;
        }
    }
    // Perf gate (full mode only): HMAC must cost < 10% on SHIELD cold
    // scans over the 500 µs RTT env.
    if !cfg.smoke {
        for r in reports.iter().filter(|r| r.system == System::Shield) {
            if r.scan_overhead_pct >= 10.0 {
                eprintln!(
                    "FAIL: {} hmac scan overhead {:.2}% >= 10%",
                    r.system.label(),
                    r.scan_overhead_pct
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
