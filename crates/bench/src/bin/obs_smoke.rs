//! Observability smoke gate — `verify.sh`'s obs-smoke tier.
//!
//! ```text
//! obs_smoke [--out PATH]      # default PATH: OBS_metrics.json
//! ```
//!
//! Three checks, any failure exits non-zero:
//!
//! 1. **Disabled-path overhead** — one `perf::timer()` +
//!    `perf::add_elapsed()` pair with PerfContext *disabled* must cost
//!    < 2% of encrypting one 4 KiB chunk (the cheapest crypto unit a
//!    SHIELD read path touches), so leaving the hooks compiled in is
//!    free for production workloads.
//! 2. **Event log** — a small SHIELD workload on a real filesystem must
//!    leave a `LOG` whose `flush_begin`/`flush_end` and
//!    `compaction_begin`/`compaction_end` lines pair up (and occur at
//!    least once each).
//! 3. **Metrics report** — `Db::metrics_report().to_json()` must carry
//!    every `shield_metrics_v1` top-level key; the document is written
//!    to `--out` for inspection.

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use shield::{open_shield, ReadOptions, ShieldOptions, WriteOptions};
use shield_core::{perf, LogConfig, LogLevel, PerfMetric};
use shield_crypto::{Algorithm, CipherContext, Dek, NONCE_LEN};
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

/// Gate: a disabled timer pair must stay under this fraction of one
/// 4 KiB chunk encryption.
const MAX_DISABLED_OVERHEAD: f64 = 0.02;

fn main() -> ExitCode {
    let mut out = "OBS_metrics.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => return die("--out needs a path"),
                }
            }
            other => return die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let mut failed = false;

    // 1. Disabled-path overhead gate.
    let pair_ns = measure_disabled_pair_ns();
    let chunk_ns = measure_chunk_encrypt_ns();
    let ratio = pair_ns / chunk_ns;
    println!(
        "perf disabled pair: {pair_ns:.2} ns, 4 KiB encrypt: {chunk_ns:.0} ns, ratio {:.3}%",
        ratio * 100.0
    );
    if ratio >= MAX_DISABLED_OVERHEAD {
        println!(
            "FAIL: disabled PerfContext pair costs {:.2}% of a 4 KiB chunk (gate {:.0}%)",
            ratio * 100.0,
            MAX_DISABLED_OVERHEAD * 100.0
        );
        failed = true;
    }

    // 2 + 3. Small SHIELD workload on a real FS; LOG pairing and the
    // metrics JSON both come out of it.
    let dir = std::env::temp_dir().join(format!("shield-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.to_string_lossy().into_owned();
    let json = run_workload(&path);
    let log = std::fs::read_to_string(dir.join("LOG")).unwrap_or_default();
    let _ = std::fs::remove_dir_all(&dir);

    for (begin, end) in
        [("flush_begin", "flush_end"), ("compaction_begin", "compaction_end")]
    {
        let b = log.matches(begin).count();
        let e = log.matches(end).count();
        println!("LOG: {b} {begin} / {e} {end}");
        if b == 0 || b != e {
            println!("FAIL: expected paired {begin}/{end} lines, got {b}/{e}");
            failed = true;
        }
    }

    for key in [
        "\"schema\":\"shield_metrics_v1\"",
        "\"levels\"",
        "\"write_amplification\"",
        "\"read_amplification\"",
        "\"latencies_us\"",
        "\"tickers\"",
        "\"gauges\"",
    ] {
        if !json.contains(key) {
            println!("FAIL: metrics JSON missing {key}");
            failed = true;
        }
    }

    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        println!("FAIL: writing {out}: {e}");
        failed = true;
    } else {
        println!("metrics report → {out}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("obs-smoke ok");
        ExitCode::SUCCESS
    }
}

/// Best-of-3 cost of one *disabled* `timer()`/`add_elapsed()` pair — the
/// exact instrumentation the hot read path runs when no PerfContext is
/// collecting.
fn measure_disabled_pair_ns() -> f64 {
    const ITERS: u32 = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            let t = perf::timer();
            perf::add_elapsed(PerfMetric::BlockDecrypt, black_box(t));
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

/// Best-of-3 cost of encrypting one 4 KiB chunk with the paper-default
/// cipher.
fn measure_chunk_encrypt_ns() -> f64 {
    const ITERS: u32 = 2_000;
    let dek = Dek::generate(Algorithm::Aes128Ctr);
    let mut nonce = [0u8; NONCE_LEN];
    shield_crypto::secure_random(&mut nonce);
    let ctx = CipherContext::new(&dek, &nonce);
    let mut buf = vec![0xa5u8; 4096];
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            ctx.xor_at(0, black_box(&mut buf));
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

/// Runs a tiny SHIELD workload tuned to force flushes and compactions
/// (16 KiB memtable, L0 trigger 2) and returns the final metrics JSON.
/// Closing the DB before returning guarantees the LOG is complete.
fn run_workload(path: &str) -> String {
    let mut opts = Options::new(Arc::new(PosixEnv::new()));
    opts.write_buffer_size = 16 << 10;
    opts.compaction.l0_compaction_trigger = 2;
    opts.info_log = Some(LogConfig { level: Some(LogLevel::Info), json: false });
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let db = open_shield(
        opts,
        path,
        ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"obs-smoke"),
    )
    .expect("open_shield");

    let wopts = WriteOptions::default();
    let value = vec![0x5au8; 256];
    for id in 0..2_000u64 {
        let key = format!("key-{id:06}");
        db.put(&wopts, key.as_bytes(), &value).expect("put");
    }
    db.compact_all().expect("compact_all");
    let ropts = ReadOptions::new();
    for id in (0..2_000u64).step_by(97) {
        let key = format!("key-{id:06}");
        assert!(db.get(&ropts, key.as_bytes()).expect("get").is_some());
    }
    db.metrics_report().to_json()
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
