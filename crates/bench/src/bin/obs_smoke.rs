//! Observability smoke gate — `verify.sh`'s obs-smoke tier.
//!
//! ```text
//! obs_smoke [--out PATH]      # default PATH: OBS_metrics.json
//! ```
//!
//! Three checks, any failure exits non-zero:
//!
//! 1. **Disabled-path overhead** — one `perf::timer()` +
//!    `perf::add_elapsed()` pair with PerfContext *disabled* must cost
//!    < 2% of encrypting one 4 KiB chunk (the cheapest crypto unit a
//!    SHIELD read path touches), so leaving the hooks compiled in is
//!    free for production workloads.
//! 2. **Event log** — a small SHIELD workload on a real filesystem must
//!    leave a `LOG` whose `flush_begin`/`flush_end` and
//!    `compaction_begin`/`compaction_end` lines pair up (and occur at
//!    least once each).
//! 3. **Metrics report** — `Db::metrics_report().to_json()` must carry
//!    every `shield_metrics_v1` top-level key, and the workload must
//!    actually engage the paths behind the headline tickers: synced
//!    WAL writes (`wal_syncs`), a batched lookup (`multi_gets`), and a
//!    cold scan with readahead (`readahead_issued`) all end up nonzero
//!    in the committed document. The document is written to `--out`
//!    for inspection.

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use shield::{open_shield, ReadOptions, ShieldOptions, WriteOptions};
use shield_core::{json, perf, LogConfig, LogLevel, PerfMetric};
use shield_crypto::{Algorithm, CipherContext, Dek, NONCE_LEN};
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

/// Gate: a disabled timer pair must stay under this fraction of one
/// 4 KiB chunk encryption.
const MAX_DISABLED_OVERHEAD: f64 = 0.02;

fn main() -> ExitCode {
    let mut out = "OBS_metrics.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => return die("--out needs a path"),
                }
            }
            other => return die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let mut failed = false;

    // 1. Disabled-path overhead gate.
    let pair_ns = measure_disabled_pair_ns();
    let chunk_ns = measure_chunk_encrypt_ns();
    let ratio = pair_ns / chunk_ns;
    println!(
        "perf disabled pair: {pair_ns:.2} ns, 4 KiB encrypt: {chunk_ns:.0} ns, ratio {:.3}%",
        ratio * 100.0
    );
    if ratio >= MAX_DISABLED_OVERHEAD {
        println!(
            "FAIL: disabled PerfContext pair costs {:.2}% of a 4 KiB chunk (gate {:.0}%)",
            ratio * 100.0,
            MAX_DISABLED_OVERHEAD * 100.0
        );
        failed = true;
    }

    // 2 + 3. Small SHIELD workload on a real FS; LOG pairing and the
    // metrics JSON both come out of it.
    let dir = std::env::temp_dir().join(format!("shield-obs-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.to_string_lossy().into_owned();
    let (json, log) = run_workload(&path);
    let _ = std::fs::remove_dir_all(&dir);

    for (begin, end) in
        [("flush_begin", "flush_end"), ("compaction_begin", "compaction_end")]
    {
        let b = log.matches(begin).count();
        let e = log.matches(end).count();
        println!("LOG: {b} {begin} / {e} {end}");
        if b == 0 || b != e {
            println!("FAIL: expected paired {begin}/{end} lines, got {b}/{e}");
            failed = true;
        }
    }

    for key in [
        "\"schema\":\"shield_metrics_v1\"",
        "\"levels\"",
        "\"write_amplification\"",
        "\"read_amplification\"",
        "\"latencies_us\"",
        "\"tickers\"",
        "\"gauges\"",
        "\"windows\"",
    ] {
        if !json.contains(key) {
            println!("FAIL: metrics JSON missing {key}");
            failed = true;
        }
    }

    // Ticker engagement: the workload is built to drive these paths, so
    // zeros mean the instrumentation (or the path) silently regressed.
    match json::parse(&json) {
        Ok(doc) => {
            for ticker in ["wal_syncs", "multi_gets", "readahead_issued", "batched_reads"] {
                let v = doc
                    .get("tickers")
                    .and_then(|t| t.get(ticker))
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                println!("ticker {ticker}: {v}");
                if v <= 0.0 {
                    println!("FAIL: ticker {ticker} is zero after an engaging workload");
                    failed = true;
                }
            }
        }
        Err(e) => {
            println!("FAIL: metrics JSON does not parse: {e}");
            failed = true;
        }
    }

    if let Err(e) = std::fs::write(&out, format!("{json}\n")) {
        println!("FAIL: writing {out}: {e}");
        failed = true;
    } else {
        println!("metrics report → {out}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("obs-smoke ok");
        ExitCode::SUCCESS
    }
}

/// Best-of-3 cost of one *disabled* `timer()`/`add_elapsed()` pair — the
/// exact instrumentation the hot read path runs when no PerfContext is
/// collecting.
fn measure_disabled_pair_ns() -> f64 {
    const ITERS: u32 = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            let t = perf::timer();
            perf::add_elapsed(PerfMetric::BlockDecrypt, black_box(t));
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

/// Best-of-3 cost of encrypting one 4 KiB chunk with the paper-default
/// cipher.
fn measure_chunk_encrypt_ns() -> f64 {
    const ITERS: u32 = 2_000;
    let dek = Dek::generate(Algorithm::Aes128Ctr);
    let mut nonce = [0u8; NONCE_LEN];
    shield_crypto::secure_random(&mut nonce);
    let ctx = CipherContext::new(&dek, &nonce);
    let mut buf = vec![0xa5u8; 4096];
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            ctx.xor_at(0, black_box(&mut buf));
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

/// Runs a tiny SHIELD workload tuned to force flushes and compactions
/// (16 KiB memtable, L0 trigger 2) and returns the final metrics JSON.
/// The DB is reopened cold before the read phase so the batched lookup
/// and the readahead scan actually reach storage; synced writes in the
/// write phase drive `wal_syncs`. Closing the DB before returning
/// guarantees the LOG is complete. Returns the metrics JSON plus the
/// concatenated LOG text of both phases (each open truncates the file).
fn run_workload(path: &str) -> (String, String) {
    let opts = |readahead: usize| {
        let mut o = Options::new(Arc::new(PosixEnv::new())).with_readahead_blocks(readahead);
        o.write_buffer_size = 16 << 10;
        o.compaction.l0_compaction_trigger = 2;
        o.info_log = Some(LogConfig { level: Some(LogLevel::Info), json: false });
        o
    };
    let kds = Arc::new(LocalKds::new(KdsConfig::default()));
    let shield_opts =
        || ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"obs-smoke");

    // Write phase: enough entries to flush and compact, then drop the
    // handle to empty the block cache.
    {
        let db = open_shield(opts(0), path, shield_opts()).expect("open_shield");
        let wopts = WriteOptions::default();
        let value = vec![0x5au8; 256];
        for id in 0..2_000u64 {
            let key = format!("key-{id:06}");
            db.put(&wopts, key.as_bytes(), &value).expect("put");
        }
        db.compact_all().expect("compact_all");
    }
    let phase1_log =
        std::fs::read_to_string(std::path::Path::new(path).join("LOG")).unwrap_or_default();

    // Read phase, cold: serial gets, one batched lookup, a full scan
    // with readahead enabled, and a synced write tail (the report comes
    // from this handle, so the `wal_syncs` ticks must happen here too).
    let db = open_shield(opts(4), path, shield_opts()).expect("reopen");
    let value = vec![0x5au8; 256];
    let synced = WriteOptions { sync: true };
    for id in 0..8u64 {
        let key = format!("sync-{id:02}");
        db.put(&synced, key.as_bytes(), &value).expect("synced put");
    }
    let ropts = ReadOptions::new();
    for id in (0..2_000u64).step_by(97) {
        let key = format!("key-{id:06}");
        assert!(db.get(&ropts, key.as_bytes()).expect("get").is_some());
    }
    let keys: Vec<String> = (0..2_000u64).step_by(31).map(|id| format!("key-{id:06}")).collect();
    let refs: Vec<&[u8]> = keys.iter().map(String::as_bytes).collect();
    for slot in db.multi_get(&ropts, &refs) {
        assert!(slot.expect("multi_get slot").is_some());
    }
    let mut iter = db.iter(&ropts).expect("iter");
    let mut scanned = 0u64;
    iter.seek_to_first();
    while iter.valid() {
        scanned += 1;
        iter.next();
    }
    assert!(scanned >= 2_000, "scan saw {scanned} entries");
    let json = db.metrics_report().to_json();
    drop(iter);
    drop(db);
    let phase2_log =
        std::fs::read_to_string(std::path::Path::new(path).join("LOG")).unwrap_or_default();
    (json, phase1_log + &phase2_log)
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
