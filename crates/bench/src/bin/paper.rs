//! Regenerates the paper's tables and figures.
//!
//! ```text
//! paper --all [--scale F] [--out DIR]      # every experiment
//! paper fig7 table2 [--scale F]            # selected experiments
//! paper --list                             # show ids and titles
//! ```
//!
//! Results are printed as aligned tables and written as CSV files under
//! `--out` (default `results/`). `--scale` multiplies operation counts
//! (1.0 ≈ 200 k-op write workloads).

use std::time::Instant;

use shield_bench::experiments::{all_experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_dir = "results".to_string();
    let mut run_all = false;
    let mut list = false;
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => run_all = true,
            "--list" => list = true,
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--out" => {
                i += 1;
                out_dir = args.get(i).cloned().unwrap_or_else(|| die("--out needs a path"));
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            other => selected.push(other.to_string()),
        }
        i += 1;
    }

    let experiments = all_experiments();
    if list || (!run_all && selected.is_empty()) {
        println!("Available experiments (run with `paper <id>…` or `paper --all`):");
        for e in &experiments {
            println!("  {:8} {}", e.id, e.title);
        }
        return;
    }

    let scale = Scale::new(scale);
    let chosen: Vec<_> = experiments
        .into_iter()
        .filter(|e| run_all || selected.iter().any(|s| s == e.id))
        .collect();
    if chosen.is_empty() {
        die("no matching experiments; try --list");
    }
    println!(
        "Running {} experiment(s) at scale {:.2} (results → {out_dir}/)",
        chosen.len(),
        scale.factor
    );
    let t0 = Instant::now();
    for e in chosen {
        println!("\n### {} — {}", e.id, e.title);
        let started = Instant::now();
        let tables = (e.run)(&scale);
        for table in &tables {
            print!("{}", table.render());
            match table.save_csv(&out_dir) {
                Ok(path) => println!("  → {path}"),
                Err(err) => eprintln!("  ! failed to save CSV: {err}"),
            }
        }
        match shield_bench::report::save_metrics_sidecar(&out_dir, e.id) {
            Ok(Some(path)) => println!("  → {path}"),
            Ok(None) => {}
            Err(err) => eprintln!("  ! failed to save metrics sidecar: {err}"),
        }
        println!("  ({:.1}s)", started.elapsed().as_secs_f64());
    }
    println!("\nAll done in {:.1}s.", t0.elapsed().as_secs_f64());
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
