//! Parallel-subcompaction benchmark: fillrandom over disaggregated
//! storage with `max_subcompactions` = 1 vs 4.
//!
//! The setup mirrors the paper's DS deployment: SSTs live behind a
//! [`RemoteEnv`] that charges a round trip per storage operation, so a
//! compaction is dominated by serialized block reads. Splitting the merge
//! into key-disjoint subranges lets one subrange's CPU work overlap
//! another's network wait, which is where the wall-clock win comes from —
//! it shows up even on a single core.
//!
//! Both configurations run the byte-identical seeded workload; the report
//! compares compaction wall time (`compaction_micros`, measured around
//! each whole compaction job by the coordinator), total fill+compact wall,
//! and the per-subrange counters. Results land in
//! `BENCH_subcompaction.json` (override with `--out`). `--smoke` shrinks
//! the run and only asserts the parallel path *engages* — single-core CI
//! noise is no place for a perf gate; the committed full-mode JSON is the
//! perf record.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shield_bench::rng::Rng;
use shield_env::{MemEnv, NetworkModel, RemoteEnv};
use shield_lsm::{Db, Options, WriteOptions};

struct Config {
    smoke: bool,
    out: String,
}

/// One configuration's measurements.
struct RunReport {
    max_subcompactions: usize,
    fill_secs: f64,
    compact_secs: f64,
    compaction_wall_secs: f64,
    compactions: u64,
    subcompactions: u64,
    subcompaction_cpu_secs: f64,
    bytes_read: u64,
    bytes_written: u64,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config { smoke: false, out: "BENCH_subcompaction.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => {
                cfg.out = args.next().ok_or_else(|| "--out needs a path".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: subcompaction [--smoke] [--out BENCH_subcompaction.json]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

fn network(smoke: bool) -> NetworkModel {
    NetworkModel {
        // Paper's intra-datacenter RTT is 500 µs; the smoke tier shrinks it
        // to keep the verify run fast.
        rtt: Duration::from_micros(if smoke { 100 } else { 500 }),
        bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbps
        write_packet_bytes: 64 * 1024,
    }
}

fn run_one(max_subcompactions: usize, smoke: bool) -> RunReport {
    let keys: u64 = if smoke { 4_000 } else { 24_000 };
    let value_len = 256;

    let remote = RemoteEnv::new(Arc::new(MemEnv::new()), network(smoke));
    let mut opts = Options::new(Arc::new(remote))
        .with_write_buffer_size(192 << 10)
        .with_background_jobs(4)
        .with_max_subcompactions(max_subcompactions);
    opts.compaction.l0_compaction_trigger = 4;
    opts.compaction.target_file_size = 192 << 10;
    // Fillrandom over remote storage: the WAL would double every byte's
    // network cost without touching the compaction path under test.
    opts.disable_wal = true;
    let db = Db::open(opts, "db").expect("open");

    let mut rng = Rng::new(0x5bc0_97a7);
    let w = WriteOptions::default();
    let mut value = vec![0u8; value_len];

    let fill_start = Instant::now();
    for _ in 0..keys {
        let k = rng.next_below(keys * 2);
        rng.fill(&mut value);
        db.put(&w, format!("k{k:08}").as_bytes(), &value).expect("put");
    }
    db.flush().expect("flush");
    let fill_secs = fill_start.elapsed().as_secs_f64();

    let compact_start = Instant::now();
    db.compact_all().expect("compact");
    let compact_secs = compact_start.elapsed().as_secs_f64();

    let stats = db.statistics().snapshot();
    RunReport {
        max_subcompactions,
        fill_secs,
        compact_secs,
        compaction_wall_secs: stats.compaction_micros as f64 / 1e6,
        compactions: stats.compactions,
        subcompactions: stats.subcompactions,
        subcompaction_cpu_secs: stats.subcompaction_micros as f64 / 1e6,
        bytes_read: stats.compaction_bytes_read,
        bytes_written: stats.compaction_bytes_written,
    }
}

fn report_json(mode: &str, model: &NetworkModel, runs: &[RunReport], speedup: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"subcompaction\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"workload\": \"fillrandom + compact_all, remote storage\",");
    let _ = writeln!(s, "  \"network\": {{");
    let _ = writeln!(s, "    \"rtt_us\": {},", model.rtt.as_micros());
    let _ = writeln!(
        s,
        "    \"bandwidth_bytes_per_sec\": {},",
        model.bandwidth_bytes_per_sec.map_or("null".to_string(), |b| b.to_string())
    );
    let _ = writeln!(s, "    \"write_packet_bytes\": {}", model.write_packet_bytes);
    let _ = writeln!(s, "  }},");
    s.push_str("  \"configs\": {\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = writeln!(s, "    \"max_subcompactions_{}\": {{", r.max_subcompactions);
        let _ = writeln!(s, "      \"fill_secs\": {:.3},", r.fill_secs);
        let _ = writeln!(s, "      \"compact_secs\": {:.3},", r.compact_secs);
        let _ = writeln!(s, "      \"compaction_wall_secs\": {:.3},", r.compaction_wall_secs);
        let _ = writeln!(s, "      \"compactions\": {},", r.compactions);
        let _ = writeln!(s, "      \"subcompactions\": {},", r.subcompactions);
        let _ = writeln!(
            s,
            "      \"subcompaction_worker_secs\": {:.3},",
            r.subcompaction_cpu_secs
        );
        let _ = writeln!(s, "      \"compaction_bytes_read\": {},", r.bytes_read);
        let _ = writeln!(s, "      \"compaction_bytes_written\": {}", r.bytes_written);
        let _ = writeln!(s, "    }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    s.push_str("  },\n");
    let _ = writeln!(s, "  \"compaction_wall_speedup\": {speedup:.2}");
    s.push_str("}\n");
    s
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if cfg.smoke { "smoke" } else { "full" };
    let model = network(cfg.smoke);
    println!(
        "subcompaction bench ({mode} mode, rtt {} us over shared 1 Gbps pipe)",
        model.rtt.as_micros()
    );

    let runs: Vec<RunReport> =
        [1usize, 4].into_iter().map(|n| run_one(n, cfg.smoke)).collect();
    for r in &runs {
        println!(
            "  max_subcompactions={}: fill {:>6.2}s, compact_all {:>6.2}s, \
             compaction wall {:>6.2}s over {} compactions ({} subcompactions)",
            r.max_subcompactions,
            r.fill_secs,
            r.compact_secs,
            r.compaction_wall_secs,
            r.compactions,
            r.subcompactions,
        );
    }

    let serial = &runs[0];
    let parallel = &runs[1];
    let speedup = serial.compaction_wall_secs / parallel.compaction_wall_secs.max(1e-9);
    println!("  compaction wall speedup (1 -> 4): {speedup:.2}x");

    let json = report_json(mode, &model, &runs, speedup);
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("failed to write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cfg.out);

    // The engagement gate: regardless of timing noise, the parallel config
    // must actually have split compactions, and the serial one must not.
    if parallel.subcompactions == 0 {
        eprintln!("FAIL: max_subcompactions=4 never ran a subcompaction");
        return ExitCode::FAILURE;
    }
    if serial.subcompactions != 0 {
        eprintln!("FAIL: max_subcompactions=1 ran {} subcompactions", serial.subcompactions);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
