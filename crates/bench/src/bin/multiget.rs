//! Batched-read benchmark over disaggregated storage: `Db::multi_get`
//! of 64 cold keys vs 64 serial `get`s, plus the sequential-scan
//! readahead point re-measured over the *concurrent* `RemoteEnv`, in
//! three encryption modes (plain, EncFS, SHIELD).
//!
//! The setup mirrors the paper's DS read experiments (§6.2): SSTs live
//! behind a [`RemoteEnv`] with 500 µs RTT over a 1 Gbps link (PR 7's
//! honest model: RTTs of concurrent requests overlap, bandwidth is
//! FIFO-shared, and a `read_at_many` batch pays one RTT). That makes the
//! two batched-read behaviors directly measurable:
//!
//! - **multi_get.** 64 serial cold gets pay ~64 RTTs; `multi_get`
//!   partitions the batch per file and issues one bounded-depth
//!   `read_at_many` per file, paying ~one RTT per submission window.
//!   The full run gates on a ≥ 4x speedup in SHIELD mode.
//! - **Readahead over the concurrent env.** Scan prefetch RTTs now
//!   overlap instead of queueing on one serialized pipe, so the
//!   seq-scan speedup must clear 2x (it was capped at ~1.3x before).
//!
//! `--smoke` (the verify tier) only asserts both mechanisms *engage* —
//! nonzero `batched_reads` and `readahead_issued` — CI timing noise is
//! no place for a perf gate. The committed full-mode
//! `BENCH_multiget.json` is the perf record.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shield::{open_encfs, open_plain, open_shield, EncFsDb, ShieldDb, ShieldOptions};
use shield_bench::rng::Rng;
use shield_crypto::{Algorithm, Dek};
use shield_env::{Env, MemEnv, NetworkModel, RemoteEnv};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::{Db, Options, ReadOptions, StatsSnapshot, WriteOptions};

const BATCH: usize = 64;
const READAHEAD_BLOCKS: usize = 16;

struct Config {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config { smoke: false, out: "BENCH_multiget.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => {
                cfg.out = args.next().ok_or_else(|| "--out needs a path".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: multiget [--smoke] [--out BENCH_multiget.json]".to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

fn network(smoke: bool) -> NetworkModel {
    NetworkModel {
        rtt: Duration::from_micros(if smoke { 100 } else { 500 }),
        bandwidth_bytes_per_sec: Some(125_000_000), // 1 Gbps
        write_packet_bytes: 64 * 1024,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Plain,
    EncFs,
    Shield,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Plain, Mode::EncFs, Mode::Shield];

    fn label(self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::EncFs => "encfs",
            Mode::Shield => "shield",
        }
    }
}

enum Handle {
    Plain(Db),
    EncFs(EncFsDb),
    Shield(ShieldDb),
}

impl Handle {
    fn db(&self) -> &Db {
        match self {
            Handle::Plain(db) => db,
            Handle::EncFs(db) => &db.db,
            Handle::Shield(db) => &db.db,
        }
    }
}

/// One mode's persistent state: the remote env holding its SSTs plus the
/// key material that must survive reopens.
struct ModeCtx {
    mode: Mode,
    env: Arc<dyn Env>,
    dek: Dek,
    kds: Arc<LocalKds>,
}

impl ModeCtx {
    fn new(mode: Mode, smoke: bool) -> Self {
        ModeCtx {
            mode,
            env: Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), network(smoke))),
            dek: Dek::generate(Algorithm::Aes128Ctr),
            kds: Arc::new(LocalKds::new(KdsConfig::default())),
        }
    }

    /// Opens (or reopens, with a cold block cache) the mode's database.
    fn open(&self, readahead_blocks: usize) -> Handle {
        let mut opts = Options::new(self.env.clone())
            .with_write_buffer_size(256 << 10)
            .with_background_jobs(4)
            .with_readahead_blocks(readahead_blocks);
        opts.block_cache_bytes = 8 << 20;
        opts.compaction.l0_compaction_trigger = 4;
        opts.compaction.target_file_size = 256 << 10;
        // The read phases never write; the fill phase flushes explicitly.
        opts.disable_wal = true;
        match self.mode {
            Mode::Plain => Handle::Plain(open_plain(opts, "db").expect("open plain")),
            Mode::EncFs => {
                Handle::EncFs(open_encfs(opts, "db", self.dek.clone(), 0).expect("open encfs"))
            }
            Mode::Shield => {
                let mut sopts = ShieldOptions::new(
                    self.kds.clone() as Arc<dyn Kds>,
                    ServerId(1),
                    b"bench-passkey",
                );
                sopts.wal_buffer_size = 0;
                Handle::Shield(open_shield(opts, "db", sopts).expect("open shield"))
            }
        }
    }
}

struct MultiGetReport {
    batch: usize,
    rounds: u64,
    serial_secs: f64,
    batched_secs: f64,
    speedup: f64,
    batched_reads: u64,
    batch_read_requests: u64,
    env_inflight_reads: u64,
}

struct ScanReport {
    entries: u64,
    no_readahead_secs: f64,
    readahead_secs: f64,
    readahead_issued: u64,
    readahead_useful: u64,
    speedup: f64,
}

struct ModeReport {
    mode: Mode,
    multi_get: MultiGetReport,
    scan: ScanReport,
}

fn key_bytes(i: u64) -> Vec<u8> {
    format!("k{i:08}").into_bytes()
}

/// Sequentially fills `keys` entries and compacts them into read-only SSTs.
fn fill(ctx: &ModeCtx, keys: u64) {
    let handle = ctx.open(0);
    let db = handle.db();
    let w = WriteOptions::default();
    let mut rng = Rng::new(0x7ead_bea7);
    let mut value = vec![0u8; 256];
    for i in 0..keys {
        rng.fill(&mut value);
        db.put(&w, &key_bytes(i), &value).expect("put");
    }
    db.flush().expect("flush");
    db.compact_all().expect("compact");
}

/// `rounds` distinct batches of `BATCH` cold keys each. Every round
/// reopens the database (cold block cache) twice — once for the serial
/// baseline, once for the batched run — over the same key set.
fn run_multi_get(ctx: &ModeCtx, keys: u64, rounds: u64) -> MultiGetReport {
    let mut serial_secs = 0.0;
    let mut batched_secs = 0.0;
    let mut final_stats: Option<StatsSnapshot> = None;
    for round in 0..rounds {
        // Stride the round's keys across the whole space so every key
        // lands in a different (cold) block where possible.
        let stride = keys / BATCH as u64;
        let batch: Vec<Vec<u8>> = (0..BATCH as u64)
            .map(|i| key_bytes((i * stride + round * (stride / rounds.max(1)).max(1)) % keys))
            .collect();
        let refs: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();

        let handle = ctx.open(0);
        let db = handle.db();
        let ropts = ReadOptions::default();
        let start = Instant::now();
        for key in &refs {
            let got = db.get(&ropts, key).expect("serial get");
            assert!(got.is_some(), "fill lost a key");
        }
        serial_secs += start.elapsed().as_secs_f64();

        let handle = ctx.open(0);
        let db = handle.db();
        let start = Instant::now();
        let results = db.multi_get(&ropts, &refs);
        batched_secs += start.elapsed().as_secs_f64();
        for r in results {
            assert!(r.expect("batched get").is_some(), "multi_get lost a key");
        }
        final_stats = Some(db.statistics().snapshot());
    }
    let s = final_stats.expect("at least one round");
    MultiGetReport {
        batch: BATCH,
        rounds,
        serial_secs,
        batched_secs,
        speedup: serial_secs / batched_secs.max(1e-9),
        batched_reads: s.batched_reads,
        batch_read_requests: s.batch_read_requests,
        env_inflight_reads: s.env_inflight_reads,
    }
}

/// Full forward scan; returns (entries, seconds, stats at the end).
fn scan_once(ctx: &ModeCtx, readahead_blocks: usize) -> (u64, f64, StatsSnapshot) {
    let handle = ctx.open(readahead_blocks);
    let db = handle.db();
    let start = Instant::now();
    let mut it = db.iter(&ReadOptions::default()).expect("iter");
    it.seek_to_first();
    let mut entries = 0u64;
    while it.valid() {
        entries += 1;
        it.next();
    }
    it.status().expect("scan status");
    let secs = start.elapsed().as_secs_f64();
    let s = db.statistics().snapshot();
    (entries, secs, s)
}

fn run_scans(ctx: &ModeCtx, keys: u64) -> ScanReport {
    let (base_entries, no_readahead_secs, _) = scan_once(ctx, 0);
    let (entries, readahead_secs, s) = scan_once(ctx, READAHEAD_BLOCKS);
    assert_eq!(base_entries, entries, "readahead changed the scan's entry count");
    assert_eq!(entries, keys, "scan missed entries");
    ScanReport {
        entries,
        no_readahead_secs,
        readahead_secs,
        readahead_issued: s.readahead_issued,
        readahead_useful: s.readahead_useful,
        speedup: no_readahead_secs / readahead_secs.max(1e-9),
    }
}

fn run_mode(mode: Mode, smoke: bool) -> ModeReport {
    let keys: u64 = if smoke { 2_000 } else { 10_000 };
    let rounds: u64 = if smoke { 1 } else { 4 };
    let ctx = ModeCtx::new(mode, smoke);
    fill(&ctx, keys);
    let multi_get = run_multi_get(&ctx, keys, rounds);
    let scan = run_scans(&ctx, keys);
    ModeReport { mode, multi_get, scan }
}

fn report_json(mode: &str, model: &NetworkModel, reports: &[ModeReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"multiget\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"multi_get({BATCH}) vs {BATCH} serial cold gets + seq scan, remote storage\","
    );
    let _ = writeln!(s, "  \"readahead_blocks\": {READAHEAD_BLOCKS},");
    let _ = writeln!(s, "  \"network\": {{");
    let _ = writeln!(s, "    \"rtt_us\": {},", model.rtt.as_micros());
    let _ = writeln!(
        s,
        "    \"bandwidth_bytes_per_sec\": {},",
        model.bandwidth_bytes_per_sec.map_or("null".to_string(), |b| b.to_string())
    );
    let _ = writeln!(s, "    \"write_packet_bytes\": {}", model.write_packet_bytes);
    let _ = writeln!(s, "  }},");
    s.push_str("  \"systems\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", r.mode.label());
        let mg = &r.multi_get;
        let _ = writeln!(s, "      \"multi_get\": {{");
        let _ = writeln!(s, "        \"batch\": {},", mg.batch);
        let _ = writeln!(s, "        \"rounds\": {},", mg.rounds);
        let _ = writeln!(s, "        \"serial_secs\": {:.4},", mg.serial_secs);
        let _ = writeln!(s, "        \"batched_secs\": {:.4},", mg.batched_secs);
        let _ = writeln!(s, "        \"speedup\": {:.2},", mg.speedup);
        let _ = writeln!(s, "        \"batched_reads\": {},", mg.batched_reads);
        let _ = writeln!(s, "        \"batch_read_requests\": {},", mg.batch_read_requests);
        let _ = writeln!(s, "        \"env_inflight_reads\": {}", mg.env_inflight_reads);
        let _ = writeln!(s, "      }},");
        let sc = &r.scan;
        let _ = writeln!(s, "      \"seq_scan\": {{");
        let _ = writeln!(s, "        \"entries\": {},", sc.entries);
        let _ = writeln!(s, "        \"no_readahead_secs\": {:.3},", sc.no_readahead_secs);
        let _ = writeln!(s, "        \"readahead_secs\": {:.3},", sc.readahead_secs);
        let _ = writeln!(s, "        \"readahead_issued\": {},", sc.readahead_issued);
        let _ = writeln!(s, "        \"readahead_useful\": {},", sc.readahead_useful);
        let _ = writeln!(s, "        \"speedup\": {:.2}", sc.speedup);
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if cfg.smoke { "smoke" } else { "full" };
    let model = network(cfg.smoke);
    println!("multiget bench ({mode} mode, rtt {} us over 1 Gbps pipe)", model.rtt.as_micros());

    let reports: Vec<ModeReport> =
        Mode::ALL.into_iter().map(|m| run_mode(m, cfg.smoke)).collect();
    for r in &reports {
        println!(
            "  {:>6}: multi_get({}) {:.4}s vs serial {:.4}s ({:.2}x, {} submissions / {} reads, \
             inflight peak {}) | scan {:.3}s -> {:.3}s ({:.2}x)",
            r.mode.label(),
            r.multi_get.batch,
            r.multi_get.batched_secs,
            r.multi_get.serial_secs,
            r.multi_get.speedup,
            r.multi_get.batched_reads,
            r.multi_get.batch_read_requests,
            r.multi_get.env_inflight_reads,
            r.scan.no_readahead_secs,
            r.scan.readahead_secs,
            r.scan.speedup,
        );
    }

    let json = report_json(mode, &model, &reports);
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("failed to write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cfg.out);

    // Engagement gates (both modes): the batched path must actually batch
    // and the scan must actually prefetch.
    for r in &reports {
        if r.multi_get.batched_reads == 0 {
            eprintln!("FAIL: {} multi_get never hit the batched read path", r.mode.label());
            return ExitCode::FAILURE;
        }
        if r.multi_get.batch_read_requests <= r.multi_get.batched_reads {
            eprintln!(
                "FAIL: {} batches carried {} requests over {} submissions — no batching",
                r.mode.label(),
                r.multi_get.batch_read_requests,
                r.multi_get.batched_reads
            );
            return ExitCode::FAILURE;
        }
        if r.scan.readahead_issued == 0 {
            eprintln!("FAIL: {} scan with readahead never prefetched", r.mode.label());
            return ExitCode::FAILURE;
        }
    }
    // Perf gates (full mode only): multi_get(64) must beat 64 serial cold
    // gets by ≥ 4x in SHIELD mode, and the concurrent RemoteEnv must let
    // seq-scan readahead pipeline past 2x (it was ~1.3x when the env
    // serialized round trips).
    if !cfg.smoke {
        for r in &reports {
            if r.mode == Mode::Shield && r.multi_get.speedup < 4.0 {
                eprintln!(
                    "FAIL: shield multi_get speedup {:.2}x < 4x",
                    r.multi_get.speedup
                );
                return ExitCode::FAILURE;
            }
            if r.scan.speedup < 2.0 {
                eprintln!(
                    "FAIL: {} readahead speedup {:.2}x < 2x over the concurrent env",
                    r.mode.label(),
                    r.scan.speedup
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
