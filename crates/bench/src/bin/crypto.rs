//! Crypto keystream-kernel microbenchmark — the perf-regression harness
//! for DESIGN.md § perf kernels.
//!
//! Measures, for both algorithms:
//!   * `CipherContext::xor_at` throughput (MiB/s) at 64 B / 4 KiB / 1 MiB
//!     through the batched production kernels,
//!   * the same sizes through the scalar reference kernels
//!     (`shield_crypto::reference`), and
//!   * per-call cipher-init cost (ns) — the §3.2 quantity the WAL buffer
//!     amortizes, which batching deliberately leaves untouched.
//!
//! Results land in `BENCH_crypto.json` (override with `--out`) so future
//! PRs have a throughput trajectory to diff against. `--smoke` shrinks the
//! iteration budget and *asserts* the batched AES-CTR kernel stays ≥2× the
//! scalar reference on 4 KiB payloads (and ChaCha20 not slower) — the
//! `bench-smoke` tier of `scripts/verify.sh`.

use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use shield_crypto::aes::Aes128;
use shield_crypto::chacha20::ChaCha20;
use shield_crypto::{reference, Algorithm, CipherContext, Dek, NONCE_LEN};

/// Payload sizes measured, smallest to largest: a WAL-record-sized write,
/// an SST block, and a compaction-sized bulk run.
const SIZES: [usize; 3] = [64, 4096, 1 << 20];

/// Minimum batched/scalar ratio the smoke gate accepts on 4 KiB payloads.
/// AES-CTR rides hardware rounds (≈20× here), ChaCha20 the 4-lane SIMD
/// quarter-round kernel (≈2×); both gates sit well under the measured
/// ratios so scheduler noise cannot flake the tier.
const AES_MIN_SPEEDUP: f64 = 2.0;
const CHACHA_MIN_SPEEDUP: f64 = 1.5;

struct Config {
    smoke: bool,
    out: String,
}

struct AlgoReport {
    slug: &'static str,
    display: String,
    init_ns: f64,
    /// `(size, MiB/s)` per entry of [`SIZES`].
    batched: Vec<(usize, f64)>,
    scalar: Vec<(usize, f64)>,
    speedup_4096: f64,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config { smoke: false, out: "BENCH_crypto.json".to_string() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg.smoke = true,
            "--out" => {
                cfg.out = args.next().ok_or_else(|| "--out needs a path".to_string())?;
            }
            "--help" | "-h" => {
                return Err("usage: crypto [--smoke] [--out BENCH_crypto.json]".to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(cfg)
}

/// Best-of-3 throughput of `f` over a `size`-byte buffer, in MiB/s. The
/// iteration count is sized so each timed pass processes a fixed byte
/// budget regardless of payload size.
fn measure_mib_s(size: usize, smoke: bool, mut f: impl FnMut(&mut [u8])) -> f64 {
    let mut buf = vec![0xabu8; size];
    let budget: usize = if smoke { 4 << 20 } else { 48 << 20 };
    let iters = (budget / size).max(3);
    f(&mut buf); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f(black_box(&mut buf));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (size as f64 * iters as f64) / best / (1024.0 * 1024.0)
}

/// Best-of-3 per-call cost of `CipherContext::new`, in nanoseconds.
fn measure_init_ns(dek: &Dek, nonce: &[u8; NONCE_LEN], smoke: bool) -> f64 {
    let iters: u32 = if smoke { 20_000 } else { 200_000 };
    black_box(CipherContext::new(dek, nonce)); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(CipherContext::new(black_box(dek), nonce));
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best * 1e9 / f64::from(iters)
}

fn bench_algorithm(algo: Algorithm, smoke: bool) -> AlgoReport {
    let dek = Dek::generate(algo);
    let mut nonce = [0u8; NONCE_LEN];
    shield_crypto::secure_random(&mut nonce);
    // Keep the nonce tail nonzero so the ChaCha20 counter-base fold is on
    // the measured path.
    nonce[12] |= 1;
    let ctx = CipherContext::new(&dek, &nonce);

    // Scalar-reference closure over the same key/nonce material.
    enum ScalarCipher {
        Aes(Aes128, [u8; 16]),
        ChaCha(ChaCha20),
    }
    let scalar_cipher = match algo {
        Algorithm::Aes128Ctr => {
            let key: [u8; 16] = dek.key_bytes().try_into().expect("AES-128 key length");
            ScalarCipher::Aes(Aes128::new(&key), nonce)
        }
        Algorithm::ChaCha20 => {
            let key: [u8; 32] = dek.key_bytes().try_into().expect("ChaCha20 key length");
            let n12: [u8; 12] = nonce[..12].try_into().expect("12-byte nonce prefix");
            let ctr = u32::from_le_bytes(nonce[12..].try_into().expect("4-byte tail"));
            ScalarCipher::ChaCha(ChaCha20::new_with_counter(&key, &n12, ctr))
        }
    };
    let scalar_xor = |offset: u64, data: &mut [u8]| match &scalar_cipher {
        ScalarCipher::Aes(schedule, base) => reference::aes_ctr_xor(schedule, base, offset, data),
        ScalarCipher::ChaCha(cipher) => reference::chacha20_xor(cipher, offset, data),
    };

    // Self-check: a diverged kernel pair must fail loudly, not get timed.
    {
        let original: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut a = original.clone();
        ctx.xor_at(13, &mut a);
        let mut b = original;
        scalar_xor(13, &mut b);
        assert_eq!(a, b, "batched and scalar {algo} kernels diverged");
    }

    let init_ns = measure_init_ns(&dek, &nonce, smoke);
    let batched: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&size| (size, measure_mib_s(size, smoke, |buf| ctx.xor_at(0, buf))))
        .collect();
    let scalar: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&size| (size, measure_mib_s(size, smoke, |buf| scalar_xor(0, buf))))
        .collect();
    let batched_4k = batched.iter().find(|(s, _)| *s == 4096).expect("4 KiB point").1;
    let scalar_4k = scalar.iter().find(|(s, _)| *s == 4096).expect("4 KiB point").1;

    AlgoReport {
        slug: match algo {
            Algorithm::Aes128Ctr => "aes128ctr",
            Algorithm::ChaCha20 => "chacha20",
        },
        display: algo.to_string(),
        init_ns,
        batched,
        scalar,
        speedup_4096: batched_4k / scalar_4k,
    }
}

fn rates_json(rates: &[(usize, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (size, mib_s)) in rates.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{size}\": {mib_s:.1}");
    }
    s.push('}');
    s
}

fn report_json(mode: &str, reports: &[AlgoReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"crypto_kernels\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"unit_throughput\": \"MiB/s\",");
    let _ = writeln!(s, "  \"unit_init\": \"ns\",");
    let _ = writeln!(
        s,
        "  \"sizes\": [{}],",
        SIZES.map(|v| v.to_string()).join(", ")
    );
    s.push_str("  \"algorithms\": {\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    \"{}\": {{", r.slug);
        let _ = writeln!(s, "      \"cipher_init_ns\": {:.1},", r.init_ns);
        let _ = writeln!(s, "      \"batched_mib_s\": {},", rates_json(&r.batched));
        let _ = writeln!(s, "      \"scalar_mib_s\": {},", rates_json(&r.scalar));
        let _ = writeln!(s, "      \"speedup_4096\": {:.2}", r.speedup_4096);
        let _ = writeln!(s, "    }}{}", if i + 1 < reports.len() { "," } else { "" });
    }
    s.push_str("  }\n}\n");
    s
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mode = if cfg.smoke { "smoke" } else { "full" };
    println!("crypto kernel bench ({mode} mode)");

    let reports: Vec<AlgoReport> = [Algorithm::Aes128Ctr, Algorithm::ChaCha20]
        .into_iter()
        .map(|algo| bench_algorithm(algo, cfg.smoke))
        .collect();

    for r in &reports {
        println!("  {} cipher_init: {:.0} ns/call", r.display, r.init_ns);
        for ((size, batched), (_, scalar)) in r.batched.iter().zip(r.scalar.iter()) {
            println!(
                "  {} xor_at {:>7} B: batched {:>8.1} MiB/s, scalar {:>8.1} MiB/s ({:.2}x)",
                r.display,
                size,
                batched,
                scalar,
                batched / scalar
            );
        }
    }

    let json = report_json(mode, &reports);
    if let Err(e) = std::fs::write(&cfg.out, &json) {
        eprintln!("failed to write {}: {e}", cfg.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", cfg.out);

    if cfg.smoke {
        let mut ok = true;
        for r in &reports {
            let min = match r.slug {
                "aes128ctr" => AES_MIN_SPEEDUP,
                _ => CHACHA_MIN_SPEEDUP,
            };
            if r.speedup_4096 < min {
                eprintln!(
                    "FAIL: {} batched/scalar speedup on 4 KiB is {:.2}x, below the {min:.1}x gate",
                    r.display, r.speedup_4096
                );
                ok = false;
            } else {
                println!(
                    "ok: {} batched/scalar speedup on 4 KiB = {:.2}x (gate {min:.1}x)",
                    r.display, r.speedup_4096
                );
            }
        }
        if !ok {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
