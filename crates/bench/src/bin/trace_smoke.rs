//! Flight-recorder smoke gate — `verify.sh`'s trace tier.
//!
//! ```text
//! trace_smoke [--out PATH]     # default PATH: TRACE_smoke.json
//! ```
//!
//! Five checks, any failure exits non-zero:
//!
//! 1. **Disabled-tracing overhead** — one `trace::span()` call with no
//!    op active (the exact hook the hot paths now carry) must cost
//!    < 2% of encrypting one 4 KiB chunk, so compiled-in tracing is
//!    free until someone turns it on.
//! 2. **Trace engagement** — a cold SHIELD `multi_get(64)` over a
//!    simulated remote env must yield exactly one trace whose root is
//!    the op, carrying ≥ 2 batched `read_window` spans whose durations
//!    sum to ≤ the op's wall time.
//! 3. **Slow-op capture** — with `slow_op_threshold` = 2 ms and a 10 ms
//!    injected env delay on SST reads, a cold get must land in the
//!    slow-op ring with its span tree and PerfContext, and emit a
//!    `slow_op` event.
//! 4. **Watchdog** — with `watchdog_deadline` = 40 ms and an always-on
//!    300 ms read delay, the stall watchdog must flag the running op
//!    (exactly once) with a live span stack naming it.
//! 5. **Debug bundle** — `Db::debug_bundle()` must parse as one JSON
//!    document carrying metrics/windows/slow_ops/trace_spans/log_tail.

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use shield::{open_shield, ReadOptions, ShieldDb, ShieldOptions, WriteOptions};
use shield_core::{json, trace, Event, EventListener, JsonBuilder};
use shield_crypto::{Algorithm, CipherContext, Dek, NONCE_LEN};
use shield_env::{
    Env, FaultInjectionEnv, FaultOp, FileKind, MemEnv, NetworkModel, RemoteEnv,
};
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

/// Gate: a disabled `trace::span()` must stay under this fraction of
/// one 4 KiB chunk encryption.
const MAX_DISABLED_OVERHEAD: f64 = 0.02;

#[derive(Default)]
struct Capture {
    events: Mutex<Vec<Event>>,
}

impl EventListener for Capture {
    fn on_event(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

struct Fixture {
    env: Arc<dyn Env>,
    kds: Arc<LocalKds>,
}

impl Fixture {
    fn new(env: Arc<dyn Env>) -> Self {
        Fixture { env, kds: Arc::new(LocalKds::new(KdsConfig::default())) }
    }

    fn base_opts(&self) -> Options {
        let mut opts =
            Options::new(self.env.clone()).with_write_buffer_size(16 << 10);
        opts.block_size = 256;
        opts.compaction.l0_compaction_trigger = 2;
        opts
    }

    fn open(&self, opts: Options) -> ShieldDb {
        open_shield(
            opts,
            "db",
            ShieldOptions::new(self.kds.clone() as Arc<dyn Kds>, ServerId(1), b"ts"),
        )
        .expect("open shield")
    }

    fn populate(&self, n: u32) {
        let db = self.open(self.base_opts());
        let w = WriteOptions::default();
        for i in 0..n {
            let key = format!("key-{i:05}");
            db.put(&w, key.as_bytes(), format!("value-{i}").as_bytes()).expect("put");
        }
        db.compact_all().expect("compact_all");
    }
}

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:05}").into_bytes()
}

fn main() -> ExitCode {
    let mut out = "TRACE_smoke.json".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = p.clone(),
                    None => return die("--out needs a path"),
                }
            }
            other => return die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let mut failed = false;
    let mut j = JsonBuilder::new();
    j.open_obj_item();
    j.field_str("schema", "shield_trace_smoke_v1");

    // 1. Disabled-tracing overhead gate.
    let span_ns = measure_disabled_span_ns();
    let chunk_ns = measure_chunk_encrypt_ns();
    let ratio = span_ns / chunk_ns;
    println!(
        "disabled trace::span: {span_ns:.2} ns, 4 KiB encrypt: {chunk_ns:.0} ns, ratio {:.3}%",
        ratio * 100.0
    );
    j.field_f64("disabled_span_ns", span_ns);
    j.field_f64("chunk_encrypt_ns", chunk_ns);
    j.field_f64("disabled_overhead_ratio", ratio);
    if ratio >= MAX_DISABLED_OVERHEAD {
        println!(
            "FAIL: disabled trace::span costs {:.2}% of a 4 KiB chunk (gate {:.0}%)",
            ratio * 100.0,
            MAX_DISABLED_OVERHEAD * 100.0
        );
        failed = true;
    }

    // 2. Trace engagement: cold multi_get(64) over remote storage.
    {
        let net = NetworkModel {
            rtt: Duration::from_micros(200),
            bandwidth_bytes_per_sec: Some(125_000_000),
            write_packet_bytes: 64 * 1024,
        };
        let fx = Fixture::new(Arc::new(RemoteEnv::new(Arc::new(MemEnv::new()), net)));
        fx.populate(256);
        let db = fx.open(fx.base_opts().with_tracing());
        let keys: Vec<Vec<u8>> = (0..256).step_by(4).take(64).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        for slot in db.multi_get(&ReadOptions::new(), &refs) {
            if slot.expect("multi_get slot").is_none() {
                println!("FAIL: multi_get lost a key");
                failed = true;
            }
        }
        let spans = db.trace_spans();
        let roots: Vec<_> =
            spans.iter().filter(|s| s.parent_id == 0 && s.name == "multi_get").collect();
        let windows: Vec<_> = roots
            .first()
            .map(|root| {
                spans
                    .iter()
                    .filter(|s| s.trace_id == root.trace_id && s.name == "read_window")
                    .collect()
            })
            .unwrap_or_default();
        let window_nanos: u64 = windows.iter().map(|s| s.dur_nanos).sum();
        let wall_nanos = roots.first().map_or(0, |r| r.dur_nanos);
        println!(
            "trace: {} multi_get root(s), {} read_window span(s), {window_nanos} ns \
             windows / {wall_nanos} ns wall",
            roots.len(),
            windows.len()
        );
        j.field_u64("multi_get_traces", roots.len() as u64);
        j.field_u64("read_window_spans", windows.len() as u64);
        j.field_u64("window_nanos", window_nanos);
        j.field_u64("op_wall_nanos", wall_nanos);
        if roots.len() != 1 {
            println!("FAIL: expected exactly one multi_get trace");
            failed = true;
        }
        if windows.len() < 2 {
            println!("FAIL: expected >= 2 batched read_window spans");
            failed = true;
        }
        if window_nanos > wall_nanos {
            println!("FAIL: window spans exceed the op's wall time");
            failed = true;
        }
    }

    // 3. Slow-op capture under an injected 10 ms delay.
    {
        let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
        let fx = Fixture::new(Arc::new(fenv.clone()));
        fx.populate(128);
        let capture = Arc::new(Capture::default());
        let db = fx.open(
            fx.base_opts()
                .with_slow_op_threshold(Duration::from_millis(2))
                .with_event_listener(capture.clone()),
        );
        fenv.delay_n_times(FileKind::Sst, FaultOp::Read, Duration::from_millis(10), 8);
        let got = db.get(&ReadOptions::new(), &key(17)).expect("get");
        fenv.disarm_all();
        let slow = db.slow_ops();
        let captured = got.is_some() && slow.iter().any(|s| s.op == "get" && !s.spans.is_empty());
        let event = capture.events.lock().unwrap().iter().any(|e| e.name() == "slow_op");
        println!("slow-op: {} capture(s), event={event}", slow.len());
        j.field_u64("slow_ops_captured", slow.len() as u64);
        j.field_bool("slow_op_event", event);
        if !captured || !event {
            println!("FAIL: 10 ms-delayed get not captured as a slow op");
            failed = true;
        }
    }

    // 4. Watchdog fires while a read is stuck.
    {
        let fenv = FaultInjectionEnv::new(Arc::new(MemEnv::new()));
        let fx = Fixture::new(Arc::new(fenv.clone()));
        fx.populate(128);
        let capture = Arc::new(Capture::default());
        let db = fx.open(
            fx.base_opts()
                .with_watchdog_deadline(Duration::from_millis(40))
                .with_event_listener(capture.clone()),
        );
        fenv.delay_always(FileKind::Sst, FaultOp::Read, Duration::from_millis(300));
        let got = db.get(&ReadOptions::new(), &key(31)).expect("get");
        fenv.disarm_all();
        let flagged = capture
            .events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| matches!(e, Event::Watchdog { op: "get", .. }))
            .count();
        println!("watchdog: flagged {flagged} time(s)");
        j.field_u64("watchdog_flags", flagged as u64);
        if got.is_none() || flagged != 1 {
            println!("FAIL: watchdog must flag the stuck get exactly once");
            failed = true;
        }

        // 5. Debug bundle parses, on the same (traced, eventful) DB.
        let bundle = db.debug_bundle();
        match json::parse(&bundle) {
            Ok(doc) => {
                for section in ["metrics", "windows", "slow_ops", "trace_spans", "log_tail"] {
                    if doc.get(section).is_none() {
                        println!("FAIL: debug bundle missing section {section}");
                        failed = true;
                    }
                }
                j.field_bool("debug_bundle_parses", true);
            }
            Err(e) => {
                println!("FAIL: debug bundle does not parse: {e}");
                j.field_bool("debug_bundle_parses", false);
                failed = true;
            }
        }
    }

    j.close_obj();
    if let Err(e) = std::fs::write(&out, format!("{}\n", j.finish())) {
        println!("FAIL: writing {out}: {e}");
        failed = true;
    } else {
        println!("trace smoke report → {out}");
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("trace-smoke ok");
        ExitCode::SUCCESS
    }
}

/// Best-of-3 cost of one `trace::span()` call with no op active — the
/// exact hook the WAL, fetcher, and compaction paths now carry.
fn measure_disabled_span_ns() -> f64 {
    const ITERS: u32 = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            let s = trace::span(black_box("bench"));
            black_box(&s);
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

/// Best-of-3 cost of encrypting one 4 KiB chunk with the paper-default
/// cipher.
fn measure_chunk_encrypt_ns() -> f64 {
    const ITERS: u32 = 2_000;
    let dek = Dek::generate(Algorithm::Aes128Ctr);
    let mut nonce = [0u8; NONCE_LEN];
    shield_crypto::secure_random(&mut nonce);
    let ctx = CipherContext::new(&dek, &nonce);
    let mut buf = vec![0xa5u8; 4096];
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            ctx.xor_at(0, black_box(&mut buf));
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(ITERS));
    }
    best
}

fn die(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}
