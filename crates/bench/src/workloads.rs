//! Workload generators: db_bench-style micro benchmarks, Mixgraph, and
//! YCSB core workloads A–F (paper §6.1).
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible and multi-threaded runs partition the seed space.

use crate::rng::{Latest, Rng, Zipfian};

/// One database operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Insert/overwrite.
    Put { key: Vec<u8>, value: Vec<u8> },
    /// Point read.
    Get { key: Vec<u8> },
    /// Range scan of `len` keys.
    Scan { key: Vec<u8>, len: usize },
    /// Read-modify-write (YCSB-F).
    ReadModifyWrite { key: Vec<u8>, value: Vec<u8> },
}

/// Which workload to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// db_bench `fillrandom`: uniform random puts.
    FillRandom,
    /// db_bench `readrandom`: uniform random gets.
    ReadRandom,
    /// db_bench `readrandomwriterandom` with the given read percentage.
    Mixed {
        /// Percentage of reads (0–100).
        read_pct: u32,
    },
    /// Mixgraph-like: zipfian keys, small skewed values,
    /// get/put/scan ≈ 83/14/3 (Cao et al., FAST'20).
    Mixgraph,
    /// YCSB-A: 50% read / 50% update, zipfian.
    YcsbA,
    /// YCSB-B: 95% read / 5% update, zipfian.
    YcsbB,
    /// YCSB-C: 100% read, zipfian.
    YcsbC,
    /// YCSB-D: 95% read-latest / 5% insert.
    YcsbD,
    /// YCSB-E: 95% scan / 5% insert.
    YcsbE,
    /// YCSB-F: 50% read / 50% read-modify-write, zipfian.
    YcsbF,
}

impl Workload {
    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            Workload::FillRandom => "fillrandom".into(),
            Workload::ReadRandom => "readrandom".into(),
            Workload::Mixed { read_pct } => format!("mixed-r{read_pct}"),
            Workload::Mixgraph => "mixgraph".into(),
            Workload::YcsbA => "ycsb-a".into(),
            Workload::YcsbB => "ycsb-b".into(),
            Workload::YcsbC => "ycsb-c".into(),
            Workload::YcsbD => "ycsb-d".into(),
            Workload::YcsbE => "ycsb-e".into(),
            Workload::YcsbF => "ycsb-f".into(),
        }
    }
}

/// Workload shape parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// The operation mix.
    pub workload: Workload,
    /// Number of distinct keys addressed.
    pub key_space: u64,
    /// Key size in bytes (db_bench default 16).
    pub key_size: usize,
    /// Value size in bytes (db_bench default 100).
    pub value_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// db_bench-like defaults: 16-byte keys, 100-byte values.
    #[must_use]
    pub fn new(workload: Workload, key_space: u64) -> Self {
        WorkloadConfig { workload, key_space, key_size: 16, value_size: 100, seed: 0x5eed }
    }
}

/// Formats key id `n` as a fixed-width db_bench-style key.
#[must_use]
pub fn key_bytes(n: u64, key_size: usize) -> Vec<u8> {
    let digits = format!("{n:016}");
    let mut key = vec![b'0'; key_size];
    let copy = digits.len().min(key_size);
    key[key_size - copy..].copy_from_slice(&digits.as_bytes()[digits.len() - copy..]);
    key
}

/// A deterministic stream of operations for one thread.
pub struct OpGenerator {
    cfg: WorkloadConfig,
    rng: Rng,
    zipf: Option<Zipfian>,
    latest: Option<Latest>,
    /// Key ids inserted by this generator (for D/E insert growth);
    /// allocated from a disjoint per-thread range above `key_space`.
    insert_base: u64,
    inserted: u64,
}

impl OpGenerator {
    /// Creates the generator for `thread_index` of `total_threads`.
    #[must_use]
    pub fn new(cfg: &WorkloadConfig, thread_index: u64) -> Self {
        let needs_zipf = matches!(
            cfg.workload,
            Workload::Mixgraph
                | Workload::YcsbA
                | Workload::YcsbB
                | Workload::YcsbC
                | Workload::YcsbE
                | Workload::YcsbF
        );
        let needs_latest = matches!(cfg.workload, Workload::YcsbD);
        OpGenerator {
            cfg: cfg.clone(),
            rng: Rng::new(cfg.seed ^ (thread_index.wrapping_mul(0x9e3779b97f4a7c15) | 1)),
            zipf: needs_zipf.then(|| Zipfian::new(cfg.key_space.max(1))),
            latest: needs_latest.then(|| Latest::new(cfg.key_space.max(1))),
            insert_base: cfg.key_space + thread_index * (1 << 30),
            inserted: 0,
        }
    }

    fn key(&self, id: u64) -> Vec<u8> {
        key_bytes(id, self.cfg.key_size)
    }

    fn value(&mut self, size: usize) -> Vec<u8> {
        let mut v = vec![0u8; size];
        self.rng.fill(&mut v);
        // Keep values printable-ish and compress-resistant.
        for b in &mut v {
            *b = b'a' + (*b % 26);
        }
        v
    }

    fn uniform_key(&mut self) -> Vec<u8> {
        let id = self.rng.next_below(self.cfg.key_space.max(1));
        self.key(id)
    }

    fn zipf_key(&mut self) -> Vec<u8> {
        let z = self.zipf.as_ref().expect("zipfian configured");
        let id = z.sample(&mut self.rng);
        self.key(id)
    }

    /// Mixgraph value sizes: Pareto-ish, mean ≈ 37 bytes as reported for
    /// the Facebook traces, clamped to [8, 1024].
    fn mixgraph_value_size(&mut self) -> usize {
        let u = self.rng.next_f64().max(1e-9);
        let size = 16.0 / u.powf(0.45);
        (size as usize).clamp(8, 1024)
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Op {
        match self.cfg.workload {
            Workload::FillRandom => {
                let key = self.uniform_key();
                let value = self.value(self.cfg.value_size);
                Op::Put { key, value }
            }
            Workload::ReadRandom => Op::Get { key: self.uniform_key() },
            Workload::Mixed { read_pct } => {
                if self.rng.next_below(100) < u64::from(read_pct) {
                    Op::Get { key: self.uniform_key() }
                } else {
                    let key = self.uniform_key();
                    let value = self.value(self.cfg.value_size);
                    Op::Put { key, value }
                }
            }
            Workload::Mixgraph => {
                let p = self.rng.next_below(100);
                if p < 83 {
                    Op::Get { key: self.zipf_key() }
                } else if p < 97 {
                    let key = self.zipf_key();
                    let size = self.mixgraph_value_size();
                    let value = self.value(size);
                    Op::Put { key, value }
                } else {
                    let len = 1 + self.rng.next_below(100) as usize;
                    Op::Scan { key: self.zipf_key(), len }
                }
            }
            Workload::YcsbA | Workload::YcsbB | Workload::YcsbC => {
                let read_pct = match self.cfg.workload {
                    Workload::YcsbA => 50,
                    Workload::YcsbB => 95,
                    _ => 100,
                };
                if self.rng.next_below(100) < read_pct {
                    Op::Get { key: self.zipf_key() }
                } else {
                    let key = self.zipf_key();
                    let value = self.value(self.cfg.value_size);
                    Op::Put { key, value }
                }
            }
            Workload::YcsbD => {
                if self.rng.next_below(100) < 95 {
                    let max = self.cfg.key_space + self.inserted;
                    let id = self.latest.as_ref().expect("latest").sample(&mut self.rng, max);
                    // Recent inserts live in this thread's range.
                    let id = if id >= self.cfg.key_space {
                        self.insert_base + (id - self.cfg.key_space)
                    } else {
                        id
                    };
                    Op::Get { key: self.key(id) }
                } else {
                    let id = self.insert_base + self.inserted;
                    self.inserted += 1;
                    let value = self.value(self.cfg.value_size);
                    Op::Put { key: self.key(id), value }
                }
            }
            Workload::YcsbE => {
                if self.rng.next_below(100) < 95 {
                    let len = 1 + self.rng.next_below(100) as usize;
                    Op::Scan { key: self.zipf_key(), len }
                } else {
                    let id = self.insert_base + self.inserted;
                    self.inserted += 1;
                    let value = self.value(self.cfg.value_size);
                    Op::Put { key: self.key(id), value }
                }
            }
            Workload::YcsbF => {
                if self.rng.next_below(100) < 50 {
                    Op::Get { key: self.zipf_key() }
                } else {
                    let key = self.zipf_key();
                    let value = self.value(self.cfg.value_size);
                    Op::ReadModifyWrite { key, value }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bytes_fixed_width_sortable() {
        assert_eq!(key_bytes(0, 16), b"0000000000000000".to_vec());
        assert_eq!(key_bytes(42, 16), b"0000000000000042".to_vec());
        assert!(key_bytes(9, 16) < key_bytes(10, 16));
        assert_eq!(key_bytes(123, 8).len(), 8);
    }

    #[test]
    fn fillrandom_produces_puts_with_right_sizes() {
        let cfg = WorkloadConfig::new(Workload::FillRandom, 1000);
        let mut g = OpGenerator::new(&cfg, 0);
        for _ in 0..100 {
            match g.next_op() {
                Op::Put { key, value } => {
                    assert_eq!(key.len(), 16);
                    assert_eq!(value.len(), 100);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_respects_ratio_roughly() {
        let cfg = WorkloadConfig::new(Workload::Mixed { read_pct: 80 }, 1000);
        let mut g = OpGenerator::new(&cfg, 0);
        let mut reads = 0;
        let total = 10_000;
        for _ in 0..total {
            if matches!(g.next_op(), Op::Get { .. }) {
                reads += 1;
            }
        }
        let pct = reads * 100 / total;
        assert!((75..=85).contains(&pct), "read pct {pct}");
    }

    #[test]
    fn ycsb_c_is_read_only() {
        let cfg = WorkloadConfig::new(Workload::YcsbC, 1000);
        let mut g = OpGenerator::new(&cfg, 0);
        for _ in 0..1000 {
            assert!(matches!(g.next_op(), Op::Get { .. }));
        }
    }

    #[test]
    fn ycsb_d_inserts_fresh_keys() {
        let cfg = WorkloadConfig::new(Workload::YcsbD, 1000);
        let mut g = OpGenerator::new(&cfg, 0);
        let mut inserts = Vec::new();
        for _ in 0..2000 {
            if let Op::Put { key, .. } = g.next_op() {
                inserts.push(key);
            }
        }
        assert!(!inserts.is_empty());
        // Inserted keys are unique and outside the preload space.
        let mut sorted = inserts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), inserts.len());
        for k in &inserts {
            assert!(k > &key_bytes(999, 16));
        }
    }

    #[test]
    fn ycsb_e_scans() {
        let cfg = WorkloadConfig::new(Workload::YcsbE, 1000);
        let mut g = OpGenerator::new(&cfg, 0);
        let mut scans = 0;
        for _ in 0..1000 {
            if let Op::Scan { len, .. } = g.next_op() {
                assert!((1..=100).contains(&len));
                scans += 1;
            }
        }
        assert!(scans > 900);
    }

    #[test]
    fn mixgraph_value_sizes_are_small_and_varied() {
        let cfg = WorkloadConfig::new(Workload::Mixgraph, 1000);
        let mut g = OpGenerator::new(&cfg, 0);
        let mut sizes = Vec::new();
        for _ in 0..20_000 {
            if let Op::Put { value, .. } = g.next_op() {
                sizes.push(value.len());
            }
        }
        assert!(!sizes.is_empty());
        let mean: f64 = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(mean > 15.0 && mean < 120.0, "mean value size {mean}");
        assert!(sizes.iter().any(|&s| s != sizes[0]), "sizes should vary");
    }

    #[test]
    fn threads_generate_disjoint_streams() {
        let cfg = WorkloadConfig::new(Workload::FillRandom, 1000);
        let mut a = OpGenerator::new(&cfg, 0);
        let mut b = OpGenerator::new(&cfg, 1);
        assert_ne!(a.next_op(), b.next_op());
    }
}
