//! Executes workloads against a database with N client threads, recording
//! throughput and a latency histogram.

use std::time::{Duration, Instant};

use shield_lsm::{Db, ReadOptions, WriteOptions};

use crate::hist::Histogram;
use crate::workloads::{key_bytes, Op, OpGenerator, WorkloadConfig};

/// Driver parameters.
#[derive(Clone)]
pub struct DriverConfig {
    /// Total operations across all threads.
    pub ops: u64,
    /// Client (writer/reader) threads.
    pub threads: usize,
    /// What to run.
    pub workload: WorkloadConfig,
    /// Sync every write (off by default, as in db_bench).
    pub sync_writes: bool,
}

impl DriverConfig {
    /// Single-threaded run of `ops` operations.
    #[must_use]
    pub fn new(workload: WorkloadConfig, ops: u64) -> Self {
        DriverConfig { ops, threads: 1, workload, sync_writes: false }
    }

    /// Sets the thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Outcome of a workload run.
pub struct RunResult {
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// Per-operation latencies.
    pub hist: Histogram,
    /// Gets that found a value (sanity signal for read workloads).
    pub found: u64,
}

impl RunResult {
    /// Operations per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `cfg` against `db`, spreading operations over threads.
pub fn run_workload(db: &Db, cfg: &DriverConfig) -> RunResult {
    let start = Instant::now();
    let per_thread = cfg.ops / cfg.threads as u64;
    let results: Vec<(Histogram, u64)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(cfg.threads);
        for t in 0..cfg.threads {
            let workload = cfg.workload.clone();
            let sync = cfg.sync_writes;
            handles.push(scope.spawn(move || {
                let mut generator = OpGenerator::new(&workload, t as u64);
                let mut hist = Histogram::new();
                let mut found = 0u64;
                let wopts = WriteOptions { sync };
                let ropts = ReadOptions::new();
                for _ in 0..per_thread {
                    let op = generator.next_op();
                    let t0 = Instant::now();
                    match op {
                        Op::Put { key, value } => {
                            db.put(&wopts, &key, &value).expect("put");
                        }
                        Op::Get { key } => {
                            if db.get(&ropts, &key).expect("get").is_some() {
                                found += 1;
                            }
                        }
                        Op::Scan { key, len } => {
                            let got = db.scan(&ropts, &key, len).expect("scan");
                            found += got.len() as u64;
                        }
                        Op::ReadModifyWrite { key, value } => {
                            if db.get(&ropts, &key).expect("get").is_some() {
                                found += 1;
                            }
                            db.put(&wopts, &key, &value).expect("put");
                        }
                    }
                    hist.record(t0.elapsed().as_nanos() as u64);
                }
                (hist, found)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });
    let elapsed = start.elapsed();
    let mut hist = Histogram::new();
    let mut found = 0;
    for (h, f) in &results {
        hist.merge(h);
        found += f;
    }
    // Every run leaves the engine's own view of what happened in the
    // sidecar queue; `paper` writes it next to the experiment's CSV.
    crate::report::record_metrics_json(db.metrics_report().to_json());
    RunResult { ops: per_thread * cfg.threads as u64, elapsed, hist, found }
}

/// Loads keys `0..key_space` so that read workloads hit existing data,
/// then flushes and lets compactions settle.
pub fn preload(db: &Db, key_space: u64, key_size: usize, value_size: usize) {
    let wopts = WriteOptions::default();
    let mut rng = crate::rng::Rng::new(0x10ad);
    let mut value = vec![0u8; value_size];
    let mut batch = shield_lsm::WriteBatch::new();
    for id in 0..key_space {
        rng.fill(&mut value);
        for b in &mut value {
            *b = b'a' + (*b % 26);
        }
        batch.put(&key_bytes(id, key_size), &value);
        if batch.count() >= 256 {
            db.write(&wopts, std::mem::take(&mut batch)).expect("preload write");
        }
    }
    if !batch.is_empty() {
        db.write(&wopts, batch).expect("preload write");
    }
    db.compact_all().expect("preload settle");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use shield_lsm::Options;
    use std::sync::Arc;

    fn open() -> Db {
        let env = shield_env::MemEnv::new();
        Db::open(Options::new(Arc::new(env)), "db").unwrap()
    }

    #[test]
    fn fillrandom_runs_and_counts() {
        let db = open();
        let cfg = DriverConfig::new(
            WorkloadConfig::new(Workload::FillRandom, 1000),
            2000,
        );
        let r = run_workload(&db, &cfg);
        assert_eq!(r.ops, 2000);
        assert!(r.throughput() > 0.0);
        assert_eq!(r.hist.count(), 2000);
    }

    #[test]
    fn preload_then_readrandom_finds_keys() {
        let db = open();
        preload(&db, 500, 16, 50);
        let cfg = DriverConfig::new(
            WorkloadConfig::new(Workload::ReadRandom, 500),
            1000,
        );
        let r = run_workload(&db, &cfg);
        assert_eq!(r.found, 1000, "all uniform reads over preloaded space must hit");
    }

    #[test]
    fn multithreaded_run_completes() {
        let db = open();
        let cfg = DriverConfig::new(
            WorkloadConfig::new(Workload::FillRandom, 1000),
            2000,
        )
        .with_threads(4);
        let r = run_workload(&db, &cfg);
        assert_eq!(r.ops, 2000);
        assert_eq!(db.statistics().snapshot().writes, 2000);
    }

    #[test]
    fn ycsb_f_read_modify_write() {
        let db = open();
        preload(&db, 200, 16, 50);
        let cfg = DriverConfig::new(WorkloadConfig::new(Workload::YcsbF, 200), 500);
        let r = run_workload(&db, &cfg);
        assert!(r.found > 0);
    }

    #[test]
    fn scans_work_through_driver() {
        let db = open();
        preload(&db, 300, 16, 50);
        let cfg = DriverConfig::new(WorkloadConfig::new(Workload::YcsbE, 300), 200);
        let r = run_workload(&db, &cfg);
        assert!(r.found > 0, "scans should return rows");
    }
}
