//! Result tables: aligned console rendering plus CSV export, one file per
//! experiment, mirroring the paper's tables/figures — plus the engine
//! metrics sidecar every experiment run carries.

use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

fn sidecar_queue() -> &'static Mutex<Vec<String>> {
    static SIDECAR: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    SIDECAR.get_or_init(|| Mutex::new(Vec::new()))
}

/// Queues one engine metrics report (a `shield_metrics_v1` JSON document,
/// from `Db::metrics_report().to_json()`) for the running experiment's
/// sidecar. The driver calls this after every workload run.
pub fn record_metrics_json(json: String) {
    if let Ok(mut q) = sidecar_queue().lock() {
        q.push(json);
    }
}

/// Drains every queued metrics report, in run order.
pub fn drain_metrics_json() -> Vec<String> {
    sidecar_queue().lock().map(|mut q| std::mem::take(&mut *q)).unwrap_or_default()
}

/// Writes `<dir>/<id>.metrics.json` — a JSON array of all engine metrics
/// reports queued since the last drain — and returns its path, or `None`
/// when nothing was queued (e.g. an experiment that never ran a workload).
pub fn save_metrics_sidecar(dir: &str, id: &str) -> std::io::Result<Option<String>> {
    let reports = drain_metrics_json();
    if reports.is_empty() {
        return Ok(None);
    }
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/{id}.metrics.json");
    std::fs::write(&path, format!("[{}]\n", reports.join(",")))?;
    Ok(Some(path))
}

/// A result table for one experiment.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "fig7" or "table2".
    pub id: String,
    /// Human title, e.g. the figure caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Renders an aligned console table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// CSV serialization.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes `<dir>/<id>.csv` (creating the directory) and returns the
    /// path.
    pub fn save_csv(&self, dir: &str) -> std::io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/{}.csv", self.id);
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a throughput.
#[must_use]
pub fn fmt_ops(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Formats the overhead of `x` against `base` as the paper does
/// ("-32.8%" means x is 32.8% slower than base).
#[must_use]
pub fn fmt_overhead(base: f64, x: f64) -> String {
    if base <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (x - base) / base * 100.0)
}

/// Formats bytes as GiB with three decimals.
#[must_use]
pub fn fmt_gib(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / (1u64 << 30) as f64)
}

/// Formats bytes as MiB with two decimals.
#[must_use]
pub fn fmt_mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("fig0", "demo", &["system", "ops/s"]);
        t.push_row(vec!["RocksDB".into(), "100k".into()]);
        t.push_row(vec!["SHIELD".into(), "90k".into()]);
        let rendered = t.render();
        assert!(rendered.contains("fig0"));
        assert!(rendered.contains("RocksDB"));
        let csv = t.to_csv();
        assert!(csv.starts_with("system,ops/s\n"));
        assert!(csv.contains("SHIELD,90k"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", "t", &["a"]);
        t.push_row(vec!["v1,v2".into()]);
        assert!(t.to_csv().contains("\"v1,v2\""));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ops(1234.0), "1.2k");
        assert_eq!(fmt_ops(2_500_000.0), "2.50M");
        assert_eq!(fmt_ops(10.0), "10");
        assert_eq!(fmt_overhead(100.0, 68.0), "-32.0%");
        assert_eq!(fmt_overhead(0.0, 5.0), "n/a");
        assert_eq!(fmt_gib(1 << 30), "1.000");
        assert_eq!(fmt_mib(1 << 20), "1.00");
    }
}
