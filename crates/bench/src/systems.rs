//! Builders for the five systems the paper compares (§6.1):
//! unencrypted baseline, EncFS ± WAL-Buf, SHIELD ± WAL-Buf.

use std::sync::Arc;

use shield::{open_encfs, open_plain, open_shield, EncFsDb, ShieldDb, ShieldOptions};
use shield_crypto::{Algorithm, Dek};
use shield_env::Env;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::compaction::{CompactionExecutor, CompactionStyle};
use shield_lsm::{Db, Options, Result};

/// The five configurations of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemKind {
    /// Unencrypted baseline ("unencrypted RocksDB").
    Plain,
    /// Instance-level encryption, per-append WAL encryption.
    EncFs,
    /// Instance-level encryption + the §5.3 WAL buffer.
    EncFsBuf,
    /// SHIELD with an unbuffered WAL.
    Shield,
    /// SHIELD + the §5.3 WAL buffer (the full design).
    ShieldBuf,
}

impl SystemKind {
    /// All five, in the paper's plotting order.
    pub const ALL: [SystemKind; 5] = [
        SystemKind::Plain,
        SystemKind::EncFs,
        SystemKind::EncFsBuf,
        SystemKind::Shield,
        SystemKind::ShieldBuf,
    ];

    /// Display label matching the paper's legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Plain => "RocksDB",
            SystemKind::EncFs => "EncFS",
            SystemKind::EncFsBuf => "EncFS+WAL-Buf",
            SystemKind::Shield => "SHIELD",
            SystemKind::ShieldBuf => "SHIELD+WAL-Buf",
        }
    }
}

/// Engine + encryption tuning shared by an experiment.
#[derive(Clone)]
pub struct Tuning {
    /// Memtable size.
    pub write_buffer_size: usize,
    /// Background worker threads.
    pub background_jobs: usize,
    /// Block cache bytes.
    pub block_cache_bytes: usize,
    /// Compaction policy.
    pub compaction_style: CompactionStyle,
    /// L0 trigger for leveled compaction.
    pub l0_compaction_trigger: usize,
    /// Run-count trigger for universal compaction.
    pub universal_run_trigger: usize,
    /// Output file size cap.
    pub target_file_size: u64,
    /// FIFO total-size budget.
    pub fifo_max_bytes: u64,
    /// §5.3 WAL buffer bytes for the *Buf variants.
    pub wal_buffer_size: usize,
    /// Chunked-encryption chunk size.
    pub chunk_size: usize,
    /// Chunked-encryption threads.
    pub encryption_threads: usize,
    /// KDS latency profile (used when `kds` is not supplied).
    pub kds_config: KdsConfig,
    /// Pre-built KDS to share with other components (e.g. an offloaded
    /// compactor); a fresh [`LocalKds`] is created when `None`.
    pub kds: Option<Arc<LocalKds>>,
    /// Offloaded compaction executor, if any.
    pub compaction_executor: Option<Arc<dyn CompactionExecutor>>,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            write_buffer_size: 4 * 1024 * 1024,
            background_jobs: 4,
            block_cache_bytes: 32 * 1024 * 1024,
            compaction_style: CompactionStyle::Leveled,
            l0_compaction_trigger: 4,
            universal_run_trigger: 8,
            target_file_size: 2 * 1024 * 1024,
            fifo_max_bytes: 64 * 1024 * 1024,
            wal_buffer_size: 512,
            chunk_size: 4096,
            encryption_threads: 1,
            kds_config: KdsConfig::default(),
            kds: None,
            compaction_executor: None,
        }
    }
}

enum SystemDb {
    Plain(Db),
    EncFs(EncFsDb),
    Shield(ShieldDb),
}

/// An opened system under test.
pub struct SystemHandle {
    /// Which configuration this is.
    pub kind: SystemKind,
    /// The KDS backing SHIELD variants.
    pub kds: Option<Arc<LocalKds>>,
    inner: SystemDb,
}

impl SystemHandle {
    /// The engine handle.
    #[must_use]
    pub fn db(&self) -> &Db {
        match &self.inner {
            SystemDb::Plain(db) => db,
            SystemDb::EncFs(db) => &db.db,
            SystemDb::Shield(db) => &db.db,
        }
    }

    /// Cipher-context constructions performed so far (0 for Plain).
    #[must_use]
    pub fn cipher_inits(&self) -> u64 {
        match &self.inner {
            SystemDb::Plain(_) => 0,
            SystemDb::EncFs(db) => db.env.cipher_inits(),
            SystemDb::Shield(db) => db.encryption.cipher_inits(),
        }
    }

    /// The SHIELD handle, when applicable.
    #[must_use]
    pub fn shield(&self) -> Option<&ShieldDb> {
        match &self.inner {
            SystemDb::Shield(db) => Some(db),
            _ => None,
        }
    }
}

fn base_options(env: Arc<dyn Env>, tuning: &Tuning) -> Options {
    let mut opts = Options::new(env)
        .with_write_buffer_size(tuning.write_buffer_size)
        .with_background_jobs(tuning.background_jobs)
        .with_compaction_style(tuning.compaction_style);
    opts.block_cache_bytes = tuning.block_cache_bytes;
    opts.compaction.l0_compaction_trigger = tuning.l0_compaction_trigger;
    opts.compaction.universal_run_trigger = tuning.universal_run_trigger;
    opts.compaction.target_file_size = tuning.target_file_size;
    opts.compaction.fifo_max_bytes = tuning.fifo_max_bytes;
    opts.compaction_executor = tuning.compaction_executor.clone();
    opts
}

/// Opens `kind` at `path` over `env`.
pub fn build_system(
    kind: SystemKind,
    env: Arc<dyn Env>,
    path: &str,
    tuning: &Tuning,
) -> Result<SystemHandle> {
    let opts = base_options(env, tuning);
    let (inner, kds) = match kind {
        SystemKind::Plain => (SystemDb::Plain(open_plain(opts, path)?), None),
        SystemKind::EncFs | SystemKind::EncFsBuf => {
            let dek = Dek::generate(Algorithm::Aes128Ctr);
            let buf = if kind == SystemKind::EncFsBuf { tuning.wal_buffer_size } else { 0 };
            (SystemDb::EncFs(open_encfs(opts, path, dek, buf)?), None)
        }
        SystemKind::Shield | SystemKind::ShieldBuf => {
            let kds = tuning
                .kds
                .clone()
                .unwrap_or_else(|| Arc::new(LocalKds::new(tuning.kds_config.clone())));
            let mut shield_opts =
                ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"bench-passkey");
            shield_opts.wal_buffer_size =
                if kind == SystemKind::ShieldBuf { tuning.wal_buffer_size } else { 0 };
            shield_opts.chunk_size = tuning.chunk_size;
            shield_opts.encryption_threads = tuning.encryption_threads;
            (SystemDb::Shield(open_shield(opts, path, shield_opts)?), Some(kds))
        }
    };
    Ok(SystemHandle { kind, kds, inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield::{ReadOptions, WriteOptions};
    use shield_env::MemEnv;

    #[test]
    fn all_five_systems_roundtrip() {
        for kind in SystemKind::ALL {
            let env = MemEnv::new();
            let sys =
                build_system(kind, Arc::new(env), "db", &Tuning::default()).unwrap();
            sys.db().put(&WriteOptions::default(), b"k", b"v").unwrap();
            assert_eq!(
                sys.db().get(&ReadOptions::new(), b"k").unwrap(),
                Some(b"v".to_vec()),
                "{}",
                kind.label()
            );
        }
    }

    #[test]
    fn encrypted_systems_count_inits() {
        for kind in [SystemKind::EncFs, SystemKind::Shield] {
            let env = MemEnv::new();
            let sys =
                build_system(kind, Arc::new(env), "db", &Tuning::default()).unwrap();
            for i in 0..50u32 {
                sys.db()
                    .put(&WriteOptions::default(), format!("{i}").as_bytes(), b"v")
                    .unwrap();
            }
            assert!(sys.cipher_inits() > 0, "{}", kind.label());
        }
        let env = MemEnv::new();
        let sys = build_system(SystemKind::Plain, Arc::new(env), "db", &Tuning::default())
            .unwrap();
        assert_eq!(sys.cipher_inits(), 0);
    }
}
