//! Disaggregated-storage experiments (paper §6.3–§6.4): KDS latency,
//! dataset growth, resource sensitivity, and the DS / offloaded-compaction
//! benchmark suites (Figures 16–24).

use std::time::Duration;

use shield_kds::Kds as _;
use shield_kds::KdsConfig;

use crate::driver::{preload, run_workload, DriverConfig};
use crate::experiments::common::{bench_network, deploy, DeployKind, Scale};
use crate::experiments::monolith::ycsb_suite;
use crate::report::{fmt_ops, fmt_overhead, Table};
use crate::systems::{SystemKind, Tuning};
use crate::workloads::{Workload, WorkloadConfig};

/// Systems compared in DS experiments (the paper excludes EncFS here).
const DS_SYSTEMS: [SystemKind; 3] =
    [SystemKind::Plain, SystemKind::Shield, SystemKind::ShieldBuf];

/// Figure 16: SHIELD throughput/p99 as KDS latency grows.
pub fn fig16(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "fig16",
        "KDS latency sweep (SHIELD, offloaded compaction)",
        &["kds latency", "fillrandom", "p99 µs", "DEKs generated"],
    );
    for millis in [0u64, 1, 3, 5, 10, 20] {
        let mut tuning = Tuning::default();
        tuning.write_buffer_size = 1 << 20;
        tuning.kds_config = KdsConfig {
            generation_latency: Duration::from_millis(millis),
            fetch_latency: Duration::from_millis(millis),
            ..KdsConfig::default()
        };
        let d = deploy(SystemKind::ShieldBuf, DeployKind::DsOffloaded, &tuning, "fig16");
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.ds_key_space());
        let r = run_workload(d.db(), &DriverConfig::new(cfg, scale.ds_write_ops()));
        let generated = d.sys.kds.as_ref().map_or(0, |k| k.stats().generated);
        table.push_row(vec![
            format!("{millis} ms"),
            fmt_ops(r.throughput()),
            format!("{:.0}", r.hist.p99_us()),
            generated.to_string(),
        ]);
    }
    vec![table]
}

/// Figure 17: overhead stays bounded as the dataset grows (DS setup).
pub fn fig17(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "fig17",
        "Dataset-size stress in DS (fillrandom, 240 B values)",
        &["kv pairs", "RocksDB", "SHIELD+Buf", "overhead"],
    );
    for mult in [1u64, 2, 4, 8] {
        let keys = scale.ds_key_space() * mult;
        let ops = scale.ds_write_ops() * mult;
        let mut results = Vec::new();
        for kind in [SystemKind::Plain, SystemKind::ShieldBuf] {
            let tuning = Tuning::default();
            let d = deploy(kind, DeployKind::Ds, &tuning, "fig17");
            let mut cfg = WorkloadConfig::new(Workload::FillRandom, keys);
            cfg.value_size = 240; // the paper's stress-test value size
            results.push(run_workload(d.db(), &DriverConfig::new(cfg, ops)).throughput());
        }
        table.push_row(vec![
            keys.to_string(),
            fmt_ops(results[0]),
            fmt_ops(results[1]),
            fmt_overhead(results[0], results[1]),
        ]);
    }
    vec![table]
}

/// Figure 18: sensitivity to compute threads (CPU), memory budget (RAM),
/// and network bandwidth (B/W) — SHIELD with offloaded compaction.
pub fn fig18(scale: &Scale) -> Vec<Table> {
    let run = |tuning: &Tuning, bandwidth: Option<u64>| -> f64 {
        let d = deploy(SystemKind::ShieldBuf, DeployKind::DsOffloaded, tuning, "fig18");
        if let Some(bw) = bandwidth {
            let mut model = bench_network();
            model.bandwidth_bytes_per_sec = Some(bw);
            d.remote.as_ref().unwrap().set_model(model);
        }
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.ds_key_space());
        run_workload(d.db(), &DriverConfig::new(cfg, scale.ds_write_ops())).throughput()
    };

    let mut cpu = Table::new(
        "fig18a",
        "CPU sensitivity: threads (writer+background) vs throughput",
        &["threads", "fillrandom"],
    );
    for threads in [1usize, 2, 4, 8] {
        let mut tuning = Tuning::default();
        tuning.background_jobs = threads;
        cpu.push_row(vec![threads.to_string(), fmt_ops(run(&tuning, None))]);
    }

    let mut ram = Table::new(
        "fig18b",
        "Memory sensitivity: memtable + cache budget vs throughput",
        &["budget", "fillrandom"],
    );
    for (mem, cache, label) in [
        (512 << 10, 1 << 20, "0.5+1 MiB"),
        (1 << 20, 4 << 20, "1+4 MiB"),
        (4 << 20, 16 << 20, "4+16 MiB"),
        (8 << 20, 64 << 20, "8+64 MiB"),
    ] {
        let mut tuning = Tuning::default();
        tuning.write_buffer_size = mem;
        tuning.block_cache_bytes = cache;
        ram.push_row(vec![label.to_string(), fmt_ops(run(&tuning, None))]);
    }

    let mut bw = Table::new(
        "fig18c",
        "Bandwidth sensitivity: network bandwidth vs throughput",
        &["bandwidth", "fillrandom"],
    );
    for (bytes_per_sec, label) in [
        (12_500_000u64, "100 Mbps"),
        (62_500_000, "500 Mbps"),
        (125_000_000, "1 Gbps"),
        (1_250_000_000, "10 Gbps"),
    ] {
        let tuning = Tuning::default();
        bw.push_row(vec![label.to_string(), fmt_ops(run(&tuning, Some(bytes_per_sec)))]);
    }
    vec![cpu, ram, bw]
}

/// Shared micro suite for fig19 (DS) and fig22 (offloaded).
fn micro_suite(id: &str, title: &str, scale: &Scale, deployment: DeployKind) -> Vec<Table> {
    let tuning = Tuning::default();
    let mut table = Table::new(
        id,
        title,
        &["system", "fillrandom", "Δ", "readrandom", "Δ", "mixgraph", "Δ"],
    );
    let mut baseline: Option<(f64, f64, f64)> = None;
    for kind in DS_SYSTEMS {
        let fill = {
            let d = deploy(kind, deployment, &tuning, id);
            let cfg = WorkloadConfig::new(Workload::FillRandom, scale.ds_key_space());
            run_workload(d.db(), &DriverConfig::new(cfg, scale.ds_write_ops())).throughput()
        };
        let (read, mixgraph) = {
            let d = deploy(kind, deployment, &tuning, id);
            preload(d.db(), scale.ds_key_space(), 16, 100);
            let cfg = WorkloadConfig::new(Workload::ReadRandom, scale.ds_key_space());
            let read =
                run_workload(d.db(), &DriverConfig::new(cfg, scale.ds_read_ops())).throughput();
            let cfg = WorkloadConfig::new(Workload::Mixgraph, scale.ds_key_space());
            let mix = run_workload(d.db(), &DriverConfig::new(cfg, scale.ds_read_ops()))
                .throughput();
            (read, mix)
        };
        let base = *baseline.get_or_insert((fill, read, mixgraph));
        table.push_row(vec![
            kind.label().to_string(),
            fmt_ops(fill),
            fmt_overhead(base.0, fill),
            fmt_ops(read),
            fmt_overhead(base.1, read),
            fmt_ops(mixgraph),
            fmt_overhead(base.2, mixgraph),
        ]);
    }
    vec![table]
}

/// Shared ratio suite for fig20 (DS) and fig23 (offloaded).
fn ratio_suite(id: &str, title: &str, scale: &Scale, deployment: DeployKind) -> Vec<Table> {
    let tuning = Tuning::default();
    let mut tput = Table::new(
        &format!("{id}_throughput"),
        &format!("{title}: throughput"),
        &["read%", "RocksDB", "SHIELD", "SHIELD+Buf"],
    );
    let mut p99 = Table::new(
        &format!("{id}_p99"),
        &format!("{title}: p99 latency (µs)"),
        &["read%", "RocksDB", "SHIELD", "SHIELD+Buf"],
    );
    for ratio in [10u32, 50, 90] {
        let mut tput_row = vec![ratio.to_string()];
        let mut p99_row = vec![ratio.to_string()];
        for kind in DS_SYSTEMS {
            let d = deploy(kind, deployment, &tuning, id);
            preload(d.db(), scale.ds_key_space(), 16, 100);
            let cfg =
                WorkloadConfig::new(Workload::Mixed { read_pct: ratio }, scale.ds_key_space());
            let r = run_workload(d.db(), &DriverConfig::new(cfg, scale.ds_read_ops()));
            tput_row.push(fmt_ops(r.throughput()));
            p99_row.push(format!("{:.0}", r.hist.p99_us()));
        }
        tput.push_row(tput_row);
        p99.push_row(p99_row);
    }
    vec![tput, p99]
}

/// Figure 19: DS micro benchmarks.
pub fn fig19(scale: &Scale) -> Vec<Table> {
    micro_suite("fig19", "Disaggregated storage: micro benchmarks", scale, DeployKind::Ds)
}

/// Figure 20: DS read/write ratios.
pub fn fig20(scale: &Scale) -> Vec<Table> {
    ratio_suite("fig20", "Disaggregated storage ratios", scale, DeployKind::Ds)
}

/// Figure 21: DS YCSB.
pub fn fig21(scale: &Scale) -> Vec<Table> {
    ycsb_suite("fig21", "YCSB (disaggregated storage)", scale, DeployKind::Ds, &DS_SYSTEMS)
}

/// Figure 22: offloaded-compaction micro benchmarks.
pub fn fig22(scale: &Scale) -> Vec<Table> {
    micro_suite(
        "fig22",
        "Offloaded compaction: micro benchmarks",
        scale,
        DeployKind::DsOffloaded,
    )
}

/// Figure 23: offloaded-compaction read/write ratios.
pub fn fig23(scale: &Scale) -> Vec<Table> {
    ratio_suite("fig23", "Offloaded compaction ratios", scale, DeployKind::DsOffloaded)
}

/// Figure 24: offloaded-compaction YCSB.
pub fn fig24(scale: &Scale) -> Vec<Table> {
    ycsb_suite(
        "fig24",
        "YCSB (offloaded compaction)",
        scale,
        DeployKind::DsOffloaded,
        &DS_SYSTEMS,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_smoke() {
        // Only the two cheapest latency points at tiny scale.
        let tables = fig16(&Scale::new(0.02));
        assert_eq!(tables[0].rows.len(), 6);
        // DEKs were actually generated through the KDS.
        let generated: u64 = tables[0].rows[0][3].parse().unwrap();
        assert!(generated > 0);
    }
}
