//! Compaction-focused experiments: Figure 13 (chunk sizes × encryption
//! threads), Figure 15 (compaction policies with offloaded compaction) and
//! Table 3 (I/O distribution per node).

use crate::driver::{run_workload, DriverConfig};
use shield_env::Env as _;
use crate::experiments::common::{deploy, DeployKind, Scale};
use crate::report::{fmt_mib, fmt_ops, Table};
use crate::systems::{SystemKind, Tuning};
use crate::workloads::{Workload, WorkloadConfig};
use shield_lsm::CompactionStyle;

/// Figure 13: total compaction time as the encryption chunk size and
/// thread count vary, against the unencrypted and EncFS baselines.
pub fn fig13(scale: &Scale) -> Vec<Table> {
    let ops = scale.write_ops();
    let mut table = Table::new(
        "fig13",
        "Compaction time (ms) vs encryption chunk size and threads",
        &["configuration", "compaction ms", "cipher inits"],
    );

    let run_one = |kind: SystemKind, chunk: usize, threads: usize| -> (f64, u64) {
        let mut tuning = Tuning::default();
        tuning.chunk_size = chunk;
        tuning.encryption_threads = threads;
        tuning.l0_compaction_trigger = 2;
        tuning.write_buffer_size = 1 << 20;
        let d = deploy(kind, DeployKind::Monolith, &tuning, "fig13");
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.key_space());
        run_workload(d.db(), &DriverConfig::new(cfg, ops));
        d.db().compact_all().expect("compact");
        let micros = d.db().statistics().snapshot().compaction_micros;
        (micros as f64 / 1000.0, d.sys.cipher_inits())
    };

    let (plain_ms, _) = run_one(SystemKind::Plain, 4096, 1);
    table.push_row(vec!["RocksDB (no encryption)".into(), format!("{plain_ms:.0}"), "0".into()]);
    let (encfs_ms, encfs_inits) = run_one(SystemKind::EncFsBuf, 4096, 1);
    table.push_row(vec![
        "EncFS".into(),
        format!("{encfs_ms:.0}"),
        encfs_inits.to_string(),
    ]);
    for chunk in [4096usize, 65_536, 262_144, 1 << 20, 2 << 20] {
        for threads in [1usize, 2, 4] {
            let (ms, inits) = run_one(SystemKind::ShieldBuf, chunk, threads);
            table.push_row(vec![
                format!("SHIELD chunk={}KiB threads={threads}", chunk / 1024),
                format!("{ms:.0}"),
                inits.to_string(),
            ]);
        }
    }
    vec![table]
}

/// Runs one (policy, system) pair in the offloaded-compaction deployment
/// and returns (fill ops/s, read ops/s, deployed-run artifacts for Table 3).
struct PolicyRun {
    fill_tput: f64,
    read_tput: f64,
    /// (compute read, compute write, storage-side read, storage-side
    /// write) in bytes. Compute = traffic over the simulated network;
    /// storage-side = compaction I/O executed locally on the storage node.
    io: (u64, u64, u64, u64),
}

fn run_policy(scale: &Scale, style: CompactionStyle, kind: SystemKind) -> PolicyRun {
    let mut tuning = Tuning::default();
    tuning.compaction_style = style;
    tuning.write_buffer_size = 256 << 10;
    tuning.l0_compaction_trigger = 2;
    tuning.universal_run_trigger = 3;
    tuning.fifo_max_bytes = 6 << 20;
    let d = deploy(kind, DeployKind::DsOffloaded, &tuning, "fig15");

    let key_space = scale.ds_key_space();
    let fill_cfg = WorkloadConfig::new(Workload::FillRandom, key_space);
    let fill = run_workload(d.db(), &DriverConfig::new(fill_cfg, scale.ds_write_ops()));
    let _ = d.db().compact_all();

    let read_cfg = WorkloadConfig::new(Workload::ReadRandom, key_space);
    let read = run_workload(d.db(), &DriverConfig::new(read_cfg, scale.ds_read_ops()));

    let compute = d.remote.as_ref().unwrap().io_stats().unwrap().snapshot();
    let total = d.storage_stats.as_ref().unwrap().snapshot();
    // The backing store sees compute traffic + storage-local compaction;
    // the difference attributes compaction I/O to the storage node.
    let storage_read = total.total_read().saturating_sub(compute.total_read());
    let storage_write = total.total_written().saturating_sub(compute.total_written());
    PolicyRun {
        fill_tput: fill.throughput(),
        read_tput: read.throughput(),
        io: (compute.total_read(), compute.total_written(), storage_read, storage_write),
    }
}

const POLICIES: [(CompactionStyle, &str); 3] = [
    (CompactionStyle::Leveled, "leveled"),
    (CompactionStyle::Universal, "universal"),
    (CompactionStyle::Fifo, "FIFO"),
];

/// Figure 15: fillrandom + readrandom throughput per compaction policy,
/// RocksDB vs SHIELD, with offloaded compaction.
pub fn fig15(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "fig15",
        "Compaction policies with offloaded compaction",
        &["policy", "system", "fillrandom", "readrandom"],
    );
    for (style, name) in POLICIES {
        for kind in [SystemKind::Plain, SystemKind::ShieldBuf] {
            let r = run_policy(scale, style, kind);
            // The paper omits FIFO readrandom (early keys were evicted and
            // misses return instantly, skewing ops/sec upward).
            let read = if style == CompactionStyle::Fifo {
                "n/a (FIFO evicts)".to_string()
            } else {
                fmt_ops(r.read_tput)
            };
            table.push_row(vec![
                name.to_string(),
                kind.label().to_string(),
                fmt_ops(r.fill_tput),
                read,
            ]);
        }
    }
    vec![table]
}

/// Table 3: read/write I/O (GiB) split between the compute server and the
/// compaction (storage) server per policy, for SHIELD.
pub fn table3(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "table3",
        "I/O distribution (MiB) per compaction style (SHIELD, offloaded; paper reports GiB at 50M-op scale)",
        &["policy", "compute R (MiB)", "compute W (MiB)", "compaction R (MiB)", "compaction W (MiB)"],
    );
    for (style, name) in POLICIES {
        let r = run_policy(scale, style, SystemKind::ShieldBuf);
        let (cr, cw, sr, sw) = r.io;
        table.push_row(vec![
            name.to_string(),
            fmt_mib(cr),
            fmt_mib(cw),
            fmt_mib(sr),
            fmt_mib(sw),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_run_produces_io_attribution() {
        let r = run_policy(&Scale::new(0.05), CompactionStyle::Leveled, SystemKind::ShieldBuf);
        assert!(r.fill_tput > 0.0);
        assert!(r.read_tput > 0.0);
        let (cr, cw, _sr, sw) = r.io;
        assert!(cw > 0, "compute must have written over the network");
        assert!(cr > 0, "reads must have travelled over the network");
        assert!(sw > 0, "offloaded compaction must have written storage-locally");
    }
}
