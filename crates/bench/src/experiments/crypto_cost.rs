//! Figure 4: the cost anatomy that motivates the WAL buffer (§3.2).
//!
//! (a) encryption cost vs file-write cost across payload sizes — the paper
//! finds encryption ≈ 9× cheaper than writing the same bytes, *but* the
//! init cost is fixed per call;
//! (b) the share of a WAL write spent on encryption as KV size varies —
//! large for small KV pairs, amortized away for large ones.

use std::time::Instant;

use shield_crypto::{Algorithm, CipherContext, Dek, NONCE_LEN};
use shield_env::{Env, FileKind, PosixEnv};

use crate::experiments::common::{Scale, TempDir};
use crate::report::Table;

fn time_encrypt(dek: &Dek, nonce: &[u8; NONCE_LEN], payload: &mut [u8], iters: u32) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        // A fresh context per call models OpenSSL's per-call EVP init.
        let ctx = CipherContext::new(dek, nonce);
        ctx.encrypt_at(0, payload);
    }
    t0.elapsed().as_secs_f64() / f64::from(iters) * 1e6
}

fn time_file_write(env: &PosixEnv, dir: &str, payload: &[u8], iters: u32) -> f64 {
    let path = shield_env::join_path(dir, "write-probe");
    let mut f = env.new_writable_file(&path, FileKind::Other).expect("open");
    let t0 = Instant::now();
    for _ in 0..iters {
        f.append(payload).expect("append");
        f.flush().expect("flush");
    }
    let per = t0.elapsed().as_secs_f64() / f64::from(iters) * 1e6;
    let _ = env.remove_file(&path);
    per
}

/// Runs both Figure 4 panels.
pub fn fig4(scale: &Scale) -> Vec<Table> {
    let iters = ((100.0 * scale.factor) as u32).clamp(10, 1000);
    let tmp = TempDir::new("fig4");
    let env = PosixEnv::new();
    let dek = Dek::generate(Algorithm::Aes128Ctr);
    let nonce = [7u8; NONCE_LEN];

    // (a) encryption vs file write across sizes.
    let mut a = Table::new(
        "fig4a",
        "Encryption vs file-write cost (µs per op)",
        &["size (B)", "encrypt µs", "file write µs", "write/encrypt ratio"],
    );
    for size in [64usize, 512, 4096, 65_536, 1 << 20, 4 << 20] {
        let mut payload = vec![0xabu8; size];
        let enc = time_encrypt(&dek, &nonce, &mut payload, iters);
        let wr = time_file_write(&env, &tmp.path(), &payload, iters);
        a.push_row(vec![
            size.to_string(),
            format!("{enc:.2}"),
            format!("{wr:.2}"),
            format!("{:.2}x", wr / enc.max(1e-9)),
        ]);
    }

    // (b) encryption share of an (unbuffered) encrypted WAL write.
    let mut b = Table::new(
        "fig4b",
        "Encryption share of a WAL write vs KV-pair size",
        &["kv size (B)", "encrypt µs", "write µs", "encrypt share"],
    );
    for size in [16usize, 50, 116, 516, 1040, 4096] {
        let mut payload = vec![0x5au8; size];
        let enc = time_encrypt(&dek, &nonce, &mut payload, iters * 4);
        let wr = time_file_write(&env, &tmp.path(), &payload, iters * 4);
        let share = enc / (enc + wr) * 100.0;
        b.push_row(vec![
            size.to_string(),
            format!("{enc:.2}"),
            format!("{wr:.2}"),
            format!("{share:.1}%"),
        ]);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_produces_both_panels() {
        let tables = fig4(&Scale::new(0.05));
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 6);
        assert_eq!(tables[1].rows.len(), 6);
        // Larger payloads must not be cheaper to encrypt than smaller ones
        // by orders of magnitude (sanity of the measurement loop).
        let first: f64 = tables[0].rows[0][1].parse().unwrap();
        let last: f64 = tables[0].rows[5][1].parse().unwrap();
        assert!(last > first, "4MB encrypt ({last}) should cost more than 64B ({first})");
    }
}
