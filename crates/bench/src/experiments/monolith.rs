//! Monolithic-deployment experiments (paper §6.2–§6.3): Table 2 and
//! Figures 7–12, 14.

use std::sync::Arc;

use shield::{open_plain, open_shield, ShieldOptions};
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

use crate::driver::{preload, run_workload, DriverConfig, RunResult};
use crate::experiments::common::{deploy, DeployKind, Scale, TempDir};
use crate::report::{fmt_ops, fmt_overhead, Table};
use crate::systems::{SystemKind, Tuning};
use crate::workloads::{Workload, WorkloadConfig};

/// Runs `workload` on a fresh monolithic deployment of `kind`.
#[allow(clippy::too_many_arguments)]
fn run_fresh(
    kind: SystemKind,
    tuning: &Tuning,
    workload: Workload,
    ops: u64,
    threads: usize,
    key_space: u64,
    value_size: usize,
    preload_keys: bool,
) -> RunResult {
    let d = deploy(kind, DeployKind::Monolith, tuning, "mono");
    if preload_keys {
        preload(d.db(), key_space, 16, value_size);
    }
    let mut cfg = WorkloadConfig::new(workload, key_space);
    cfg.value_size = value_size;
    run_workload(d.db(), &DriverConfig::new(cfg, ops).with_threads(threads))
}

/// Builds a table with one row per system and `(name, throughput)` columns
/// plus overhead-vs-baseline columns.
fn systems_table(
    id: &str,
    title: &str,
    col_names: &[&str],
    results: &[(SystemKind, Vec<f64>)],
) -> Table {
    let mut headers = vec!["system".to_string()];
    for c in col_names {
        headers.push(format!("{c} (ops/s)"));
        headers.push(format!("{c} Δ"));
    }
    let mut table = Table {
        id: id.to_string(),
        title: title.to_string(),
        headers,
        rows: Vec::new(),
    };
    let baseline = &results[0].1;
    for (kind, vals) in results {
        let mut row = vec![kind.label().to_string()];
        for (i, v) in vals.iter().enumerate() {
            row.push(fmt_ops(*v));
            row.push(fmt_overhead(baseline[i], *v));
        }
        table.push_row(row);
    }
    table
}

/// Table 2: fillrandom with no encryption / SST-only / SST+WAL.
pub fn table2(scale: &Scale) -> Vec<Table> {
    let ops = scale.write_ops();

    let run_shield = |encrypt_wal: bool| -> f64 {
        let tmp = TempDir::new("table2");
        let env = Arc::new(PosixEnv::new());
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let mut sopts =
            ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"pk");
        sopts.wal_buffer_size = 0; // Table 2 measures unbuffered encryption
        sopts.encrypt_wal = encrypt_wal;
        let sdb = open_shield(
            Options::new(env),
            &shield_env::join_path(&tmp.path(), "db"),
            sopts,
        )
        .expect("open");
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.key_space());
        run_workload(&sdb.db, &DriverConfig::new(cfg, ops)).throughput()
    };

    let plain = {
        let tmp = TempDir::new("table2");
        let env = Arc::new(PosixEnv::new());
        let db = open_plain(Options::new(env), &shield_env::join_path(&tmp.path(), "db"))
            .expect("open");
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.key_space());
        run_workload(&db, &DriverConfig::new(cfg, ops)).throughput()
    };
    let sst_only = run_shield(false);
    let all = run_shield(true);

    let mut t = Table::new(
        "table2",
        "Impact of Encryption for WAL-Writes (fillrandom)",
        &["configuration", "throughput (ops/s)", "difference"],
    );
    t.push_row(vec!["No Encryption".into(), fmt_ops(plain), String::new()]);
    t.push_row(vec![
        "Encrypted SST".into(),
        fmt_ops(sst_only),
        fmt_overhead(plain, sst_only),
    ]);
    t.push_row(vec![
        "Encrypted All (SST & WAL)".into(),
        fmt_ops(all),
        fmt_overhead(plain, all),
    ]);
    vec![t]
}

/// Figure 7: fillrandom / readrandom / mixgraph across the five systems.
pub fn fig7(scale: &Scale) -> Vec<Table> {
    let tuning = Tuning::default();
    let mut results = Vec::new();
    for kind in SystemKind::ALL {
        let fill = run_fresh(
            kind,
            &tuning,
            Workload::FillRandom,
            scale.write_ops(),
            1,
            scale.key_space(),
            100,
            false,
        )
        .throughput();
        let read = run_fresh(
            kind,
            &tuning,
            Workload::ReadRandom,
            scale.read_ops(),
            1,
            scale.key_space(),
            100,
            true,
        )
        .throughput();
        let mixgraph = run_fresh(
            kind,
            &tuning,
            Workload::Mixgraph,
            scale.macro_ops(),
            1,
            scale.key_space(),
            100,
            true,
        )
        .throughput();
        results.push((kind, vec![fill, read, mixgraph]));
    }
    vec![systems_table(
        "fig7",
        "Monolith baseline: micro + Mixgraph",
        &["fillrandom", "readrandom", "mixgraph"],
        &results,
    )]
}

/// Figure 8: mixed read/write ratios — throughput and p99 latency.
pub fn fig8(scale: &Scale) -> Vec<Table> {
    let tuning = Tuning::default();
    let ratios = [10u32, 30, 50, 70, 90];
    let mut tput = Table::new(
        "fig8_throughput",
        "Mixed read/write ratios: throughput (rows = read %)",
        &["read%", "RocksDB", "EncFS", "EncFS+Buf", "SHIELD", "SHIELD+Buf"],
    );
    let mut p99 = Table::new(
        "fig8_p99",
        "Mixed read/write ratios: p99 latency µs (rows = read %)",
        &["read%", "RocksDB", "EncFS", "EncFS+Buf", "SHIELD", "SHIELD+Buf"],
    );
    for ratio in ratios {
        let mut tput_row = vec![ratio.to_string()];
        let mut p99_row = vec![ratio.to_string()];
        for kind in SystemKind::ALL {
            let r = run_fresh(
                kind,
                &tuning,
                Workload::Mixed { read_pct: ratio },
                scale.read_ops(),
                1,
                scale.key_space(),
                100,
                true,
            );
            tput_row.push(fmt_ops(r.throughput()));
            p99_row.push(format!("{:.0}", r.hist.p99_us()));
        }
        tput.push_row(tput_row);
        p99.push_row(p99_row);
    }
    vec![tput, p99]
}

/// Figure 9: YCSB A–F on the five systems.
pub fn fig9(scale: &Scale) -> Vec<Table> {
    ycsb_suite("fig9", "YCSB (monolith)", scale, DeployKind::Monolith, &SystemKind::ALL)
}

/// Shared YCSB runner for fig9 / fig21 / fig24.
pub fn ycsb_suite(
    id: &str,
    title: &str,
    scale: &Scale,
    deployment: DeployKind,
    systems: &[SystemKind],
) -> Vec<Table> {
    let tuning = Tuning::default();
    let workloads = [
        Workload::YcsbA,
        Workload::YcsbB,
        Workload::YcsbC,
        Workload::YcsbD,
        Workload::YcsbE,
        Workload::YcsbF,
    ];
    // YCSB uses large (1 KiB) values, so the preloaded keyspace is kept
    // smaller than the micro benchmarks' to bound preload time.
    let (key_space, ops) = match deployment {
        DeployKind::Monolith => (scale.key_space() / 4, scale.macro_ops()),
        _ => (scale.ds_key_space() / 4, scale.ds_read_ops()),
    };
    // YCSB uses 1 KiB values (the paper contrasts this with Mixgraph's
    // ~37 B).
    let value_size = 1024;
    let mut results = Vec::new();
    for &kind in systems {
        let d = deploy(kind, deployment, &tuning, id);
        preload(d.db(), key_space, 16, value_size);
        let mut row = Vec::new();
        for w in workloads {
            let mut cfg = WorkloadConfig::new(w, key_space);
            cfg.value_size = value_size;
            // Scans are expensive; keep E comparable in wall time.
            let ops = if w == Workload::YcsbE { ops / 4 } else { ops };
            let r = run_workload(d.db(), &DriverConfig::new(cfg, ops.max(100)));
            row.push(r.throughput());
        }
        results.push((kind, row));
    }
    vec![systems_table(id, title, &["A", "B", "C", "D", "E", "F"], &results)]
}

/// Figure 10: value-size sensitivity (fillrandom).
pub fn fig10(scale: &Scale) -> Vec<Table> {
    let tuning = Tuning::default();
    let sizes = [50usize, 100, 250, 500, 1000];
    let mut table = Table::new(
        "fig10",
        "Value-size sensitivity: fillrandom throughput (rows = value bytes)",
        &["value", "RocksDB", "EncFS", "EncFS+Buf", "SHIELD", "SHIELD+Buf"],
    );
    for size in sizes {
        // Keep total data volume roughly constant across sizes.
        let ops = (scale.write_ops() * 100 / size as u64).max(1000);
        let mut row = vec![size.to_string()];
        for kind in SystemKind::ALL {
            let r = run_fresh(
                kind,
                &tuning,
                Workload::FillRandom,
                ops,
                1,
                scale.key_space(),
                size,
                false,
            );
            row.push(fmt_ops(r.throughput()));
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figure 11: writer-thread sensitivity (16 background jobs).
pub fn fig11(scale: &Scale) -> Vec<Table> {
    let mut tuning = Tuning::default();
    tuning.background_jobs = 16;
    let mut table = Table::new(
        "fig11",
        "Writer threads: fillrandom throughput (16 bg jobs; rows = writers)",
        &["writers", "RocksDB", "EncFS", "EncFS+Buf", "SHIELD", "SHIELD+Buf"],
    );
    for threads in [1usize, 2, 4, 8] {
        let mut row = vec![threads.to_string()];
        for kind in SystemKind::ALL {
            let r = run_fresh(
                kind,
                &tuning,
                Workload::FillRandom,
                scale.write_ops(),
                threads,
                scale.key_space(),
                100,
                false,
            );
            row.push(fmt_ops(r.throughput()));
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figure 12: background-thread sensitivity (4 writers).
pub fn fig12(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "fig12",
        "Background jobs: fillrandom throughput (4 writers; rows = bg jobs)",
        &["bg jobs", "RocksDB", "EncFS", "EncFS+Buf", "SHIELD", "SHIELD+Buf"],
    );
    for jobs in [2usize, 4, 8] {
        let mut tuning = Tuning::default();
        tuning.background_jobs = jobs;
        let mut row = vec![jobs.to_string()];
        for kind in SystemKind::ALL {
            let r = run_fresh(
                kind,
                &tuning,
                Workload::FillRandom,
                scale.write_ops(),
                4,
                scale.key_space(),
                100,
                false,
            );
            row.push(fmt_ops(r.throughput()));
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figure 14: WAL-buffer-size sensitivity.
pub fn fig14(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "fig14",
        "WAL buffer sizes: fillrandom throughput (rows = buffer bytes)",
        &["buffer", "RocksDB", "EncFS", "Δ", "SHIELD", "Δ"],
    );
    let plain = run_fresh(
        SystemKind::Plain,
        &Tuning::default(),
        Workload::FillRandom,
        scale.write_ops(),
        1,
        scale.key_space(),
        100,
        false,
    )
    .throughput();
    for buffer in [0usize, 128, 256, 512, 1024, 2048] {
        let mut tuning = Tuning::default();
        tuning.wal_buffer_size = buffer;
        // buffer == 0 is the unbuffered variant of each design.
        let (encfs_kind, shield_kind) = if buffer == 0 {
            (SystemKind::EncFs, SystemKind::Shield)
        } else {
            (SystemKind::EncFsBuf, SystemKind::ShieldBuf)
        };
        let encfs = run_fresh(
            encfs_kind,
            &tuning,
            Workload::FillRandom,
            scale.write_ops(),
            1,
            scale.key_space(),
            100,
            false,
        )
        .throughput();
        let shield = run_fresh(
            shield_kind,
            &tuning,
            Workload::FillRandom,
            scale.write_ops(),
            1,
            scale.key_space(),
            100,
            false,
        )
        .throughput();
        table.push_row(vec![
            buffer.to_string(),
            fmt_ops(plain),
            fmt_ops(encfs),
            fmt_overhead(plain, encfs),
            fmt_ops(shield),
            fmt_overhead(plain, shield),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-run the cheapest monolith experiment end to end at a tiny
    /// scale; shape checks live in EXPERIMENTS.md at full scale.
    #[test]
    fn table2_smoke() {
        let tables = table2(&Scale::new(0.02));
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 3);
        assert!(tables[0].rows[2][2].contains('%'));
    }

    #[test]
    fn fig14_smoke() {
        let tables = fig14(&Scale::new(0.02));
        assert_eq!(tables[0].rows.len(), 6);
    }
}
