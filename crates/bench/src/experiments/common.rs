//! Shared experiment machinery: scaling, temp directories, and the three
//! deployments (monolith / disaggregated storage / offloaded compaction).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shield::deploy::{DisaggregatedStorage, OffloadedCompactor};
use shield_crypto::Algorithm;
use shield_env::{Env, IoStats, NetworkModel, PosixEnv, RemoteEnv};
use shield_kds::{DekResolver, Kds, LocalKds, SecureDekCache, ServerId};
use shield_lsm::encryption::EncryptionConfig;

use crate::systems::{build_system, SystemHandle, SystemKind, Tuning};

/// Scales every experiment relative to the paper's 50 M-op runs.
///
/// The default (factor 1.0) uses ~200 k-op write workloads — small enough
/// that the full suite finishes on one machine, large enough to exercise
/// multiple flushes and compactions per run.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Multiplier over the harness defaults.
    pub factor: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { factor: 1.0 }
    }
}

impl Scale {
    /// Creates a scale; factors ≤ 0 are clamped to a minimum.
    #[must_use]
    pub fn new(factor: f64) -> Self {
        Scale { factor: factor.max(0.01) }
    }

    fn scaled(&self, base: u64) -> u64 {
        ((base as f64 * self.factor) as u64).max(100)
    }

    /// Pure-write micro benchmark ops (paper: 50 M).
    #[must_use]
    pub fn write_ops(&self) -> u64 {
        self.scaled(200_000)
    }

    /// Read / mixed micro benchmark ops (paper: 10 M).
    #[must_use]
    pub fn read_ops(&self) -> u64 {
        self.scaled(60_000)
    }

    /// Macro (YCSB / Mixgraph) ops (paper: 1–10 M).
    #[must_use]
    pub fn macro_ops(&self) -> u64 {
        self.scaled(40_000)
    }

    /// Keys preloaded before read workloads.
    #[must_use]
    pub fn key_space(&self) -> u64 {
        self.scaled(100_000)
    }

    /// Write ops for network-modeled (DS) runs, reduced because every
    /// flush pays simulated latency.
    #[must_use]
    pub fn ds_write_ops(&self) -> u64 {
        self.scaled(30_000)
    }

    /// Read ops for DS runs.
    #[must_use]
    pub fn ds_read_ops(&self) -> u64 {
        self.scaled(15_000)
    }

    /// Preload size for DS runs.
    #[must_use]
    pub fn ds_key_space(&self) -> u64 {
        self.scaled(30_000)
    }
}

/// The network profile used for DS experiments. The paper's testbed is a
/// 1 Gbps switch with ~500 µs intra-DC RTT; the harness scales the RTT
/// down 5× (100 µs) so runs finish in minutes, preserving the
/// latency-dominates-encryption effect.
#[must_use]
pub fn bench_network() -> NetworkModel {
    NetworkModel {
        rtt: std::time::Duration::from_micros(100),
        bandwidth_bytes_per_sec: Some(125_000_000),
        write_packet_bytes: 64 * 1024,
    }
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A self-deleting scratch directory.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/shield-bench-<pid>/<tag>-<n>`.
    #[must_use]
    pub fn new(tag: &str) -> Self {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("shield-bench-{}", std::process::id()))
            .join(format!("{tag}-{n}"));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path as a string.
    #[must_use]
    pub fn path(&self) -> String {
        self.path.to_str().expect("utf-8 temp path").to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Where the system runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeployKind {
    /// Compute and storage on one node (paper §6.2).
    Monolith,
    /// SSTs/WALs on network-modeled disaggregated storage (paper §6.4).
    Ds,
    /// DS plus compaction executed on the storage server (paper §5.6).
    DsOffloaded,
}

/// A system deployed for one experiment run.
pub struct Deployed {
    /// The opened system.
    pub sys: SystemHandle,
    /// Compute-side remote mount (I/O stats + runtime model knob).
    pub remote: Option<Arc<RemoteEnv>>,
    /// Storage-node-local I/O stats.
    pub storage_stats: Option<Arc<IoStats>>,
    /// The offloaded compactor, when deployed.
    pub compactor: Option<Arc<OffloadedCompactor>>,
    _tmp: TempDir,
}

impl Deployed {
    /// The engine handle.
    #[must_use]
    pub fn db(&self) -> &shield_lsm::Db {
        self.sys.db()
    }
}

/// Deploys `kind` under `deploy` with the given tuning.
///
/// # Panics
/// Panics if an EncFS variant is requested in a DS deployment — the paper
/// excludes EncFS there (§6.4), as its single-DEK env cannot share keys
/// with other servers.
#[must_use]
pub fn deploy(kind: SystemKind, deploy: DeployKind, tuning: &Tuning, tag: &str) -> Deployed {
    let tmp = TempDir::new(tag);
    let backing: Arc<dyn Env> = Arc::new(PosixEnv::new());
    let db_path = shield_env::join_path(&tmp.path(), "db");
    match deploy {
        DeployKind::Monolith => {
            let sys = build_system(kind, backing, &db_path, tuning).expect("open system");
            Deployed { sys, remote: None, storage_stats: None, compactor: None, _tmp: tmp }
        }
        DeployKind::Ds | DeployKind::DsOffloaded => {
            assert!(
                !matches!(kind, SystemKind::EncFs | SystemKind::EncFsBuf),
                "EncFS is not deployable on disaggregated storage (paper §6.4)"
            );
            let ds = DisaggregatedStorage::new(backing.clone(), bench_network());
            let mut tuning = tuning.clone();
            let mut compactor = None;
            if deploy == DeployKind::DsOffloaded {
                // The compactor runs on the storage server with its own
                // identity, cache, and *storage-local* I/O.
                let storage_env = ds.storage_local();
                let encryption = match kind {
                    SystemKind::Plain => None,
                    _ => {
                        let kds = tuning
                            .kds
                            .get_or_insert_with(|| {
                                Arc::new(LocalKds::new(tuning.kds_config.clone()))
                            })
                            .clone();
                        let cache_path = shield_env::join_path(&tmp.path(), "compactor.cache");
                        let cache = SecureDekCache::open(
                            storage_env.clone(),
                            &cache_path,
                            b"compactor-pass",
                        )
                        .expect("compactor cache");
                        let resolver = Arc::new(DekResolver::new(
                            kds as Arc<dyn Kds>,
                            Some(Arc::new(cache)),
                            ServerId(2),
                            Algorithm::Aes128Ctr,
                        ));
                        Some(
                            EncryptionConfig::new(resolver)
                                .with_chunks(tuning.chunk_size, tuning.encryption_threads),
                        )
                    }
                };
                let c = OffloadedCompactor::new(storage_env, &db_path, encryption);
                tuning.compaction_executor = Some(c.clone());
                compactor = Some(c);
            }
            let remote = ds.remote().clone();
            let sys = build_system(kind, ds.compute_mount(), &db_path, &tuning)
                .expect("open system");
            Deployed {
                sys,
                remote: Some(remote),
                storage_stats: backing.io_stats(),
                compactor,
                _tmp: tmp,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield::{ReadOptions, WriteOptions};

    #[test]
    fn scale_clamps_and_scales() {
        let s = Scale::new(0.0);
        assert!(s.write_ops() >= 100);
        let s = Scale::new(2.0);
        assert_eq!(s.write_ops(), 400_000);
    }

    #[test]
    fn temp_dirs_are_unique_and_cleaned() {
        let p1;
        {
            let t1 = TempDir::new("x");
            let t2 = TempDir::new("x");
            assert_ne!(t1.path(), t2.path());
            p1 = t1.path();
            assert!(std::path::Path::new(&p1).exists());
        }
        assert!(!std::path::Path::new(&p1).exists());
    }

    #[test]
    fn monolith_deploy_roundtrip() {
        let d = deploy(SystemKind::Plain, DeployKind::Monolith, &Tuning::default(), "t");
        d.db().put(&WriteOptions::default(), b"k", b"v").unwrap();
        assert_eq!(d.db().get(&ReadOptions::new(), b"k").unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn offloaded_deploy_wires_compactor() {
        let mut tuning = Tuning::default();
        tuning.write_buffer_size = 8 << 10;
        tuning.l0_compaction_trigger = 2;
        let d = deploy(SystemKind::ShieldBuf, DeployKind::DsOffloaded, &tuning, "t");
        for i in 0..2000u32 {
            d.db()
                .put(&WriteOptions::default(), format!("k{i:05}").as_bytes(), &[b'v'; 32])
                .unwrap();
        }
        d.db().compact_all().unwrap();
        assert!(d.compactor.as_ref().unwrap().jobs_executed() >= 1);
        assert!(d.remote.as_ref().unwrap().io_stats().unwrap().snapshot().total_written() > 0);
    }

    #[test]
    #[should_panic(expected = "EncFS is not deployable")]
    fn encfs_rejected_in_ds() {
        let _ = deploy(SystemKind::EncFs, DeployKind::Ds, &Tuning::default(), "t");
    }
}
