//! Ablations of SHIELD's design choices beyond the paper's figures:
//!
//! * the secure DEK cache (§5.2): restart cost with and without it, under
//!   realistic KDS latency;
//! * the cipher choice (§6.1): AES-128-CTR vs ChaCha20 end to end;
//! * KDS generation latency on the write path: DEK provisioning touches
//!   the foreground only at WAL rotation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use shield::{open_shield, ShieldOptions};
use shield_crypto::Algorithm;
use shield_env::PosixEnv;
use shield_kds::{Kds, KdsConfig, LocalKds, ServerId};
use shield_lsm::Options;

use crate::driver::{run_workload, DriverConfig};
use crate::experiments::common::{Scale, TempDir};
use crate::report::{fmt_ops, Table};
use crate::workloads::{Workload, WorkloadConfig};

/// Secure-cache ablation: restart latency and KDS traffic with the cache
/// enabled vs disabled, at SSToolkit-like KDS latency.
pub fn ablation_cache(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "ablation_cache",
        "Secure DEK cache ablation: restart cost (SSToolkit-like KDS latency)",
        &["configuration", "restart (ms)", "KDS fetches on restart", "first-read ok"],
    );
    for use_cache in [true, false] {
        let tmp = TempDir::new("ablation");
        let env = Arc::new(PosixEnv::new());
        let kds = Arc::new(LocalKds::new(KdsConfig::sstoolkit_like()));
        let db_path = shield_env::join_path(&tmp.path(), "db");
        let mut sopts =
            ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk");
        if !use_cache {
            sopts.passkey = None;
        }
        // Build a database with many live files (small memtables, no
        // compaction) — the restart then needs one DEK per file.
        let make_base = || {
            let mut base = Options::new(env.clone()).with_write_buffer_size(32 << 10);
            base.compaction.l0_compaction_trigger = 10_000; // keep L0 files
            base.l0_slowdown_trigger = usize::MAX; // no backpressure either
            base.l0_stop_trigger = usize::MAX;
            base
        };
        {
            let db = open_shield(make_base(), &db_path, sopts.clone()).expect("open");
            let cfg = WorkloadConfig::new(Workload::FillRandom, scale.key_space());
            run_workload(&db.db, &DriverConfig::new(cfg, scale.write_ops() / 2));
            db.flush().expect("flush");
        }
        // Measure restart + first read across all files.
        let fetched_before = kds.stats().fetched;
        let t0 = Instant::now();
        let db = open_shield(make_base(), &db_path, sopts).expect("reopen");
        let cfg = WorkloadConfig::new(Workload::ReadRandom, scale.key_space());
        let read = run_workload(&db.db, &DriverConfig::new(cfg, 2000));
        let restart = t0.elapsed();
        table.push_row(vec![
            if use_cache { "secure cache ON" } else { "secure cache OFF" }.to_string(),
            format!("{:.1}", restart.as_secs_f64() * 1000.0),
            (kds.stats().fetched - fetched_before).to_string(),
            format!("{}/{} hits", read.found, read.ops),
        ]);
    }
    vec![table]
}

/// Cipher ablation: AES-128-CTR vs ChaCha20 through the whole write path.
pub fn ablation_cipher(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "ablation_cipher",
        "Cipher choice: fillrandom throughput (SHIELD+WAL-Buf)",
        &["cipher", "fillrandom", "p99 µs"],
    );
    for algorithm in [Algorithm::Aes128Ctr, Algorithm::ChaCha20] {
        let tmp = TempDir::new("cipher");
        let env = Arc::new(PosixEnv::new());
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let mut sopts =
            ShieldOptions::new(kds as Arc<dyn Kds>, ServerId(1), b"pk");
        sopts.algorithm = algorithm;
        let db = open_shield(
            Options::new(env),
            &shield_env::join_path(&tmp.path(), "db"),
            sopts,
        )
        .expect("open");
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.key_space());
        let r = run_workload(&db.db, &DriverConfig::new(cfg, scale.write_ops()));
        table.push_row(vec![
            algorithm.to_string(),
            fmt_ops(r.throughput()),
            format!("{:.0}", r.hist.p99_us()),
        ]);
    }
    vec![table]
}

/// KDS generation-latency visibility: how long DEK provisioning stays off
/// the critical path (file creations are background events except the WAL
/// rotation).
pub fn ablation_kds_path(scale: &Scale) -> Vec<Table> {
    let mut table = Table::new(
        "ablation_kds_path",
        "Where KDS latency lands: throughput vs per-key generation latency (monolith)",
        &["generation latency", "fillrandom", "DEKs generated"],
    );
    for micros in [0u64, 500, 2750, 10_000] {
        let tmp = TempDir::new("kdspath");
        let env = Arc::new(PosixEnv::new());
        let kds = Arc::new(LocalKds::new(KdsConfig {
            generation_latency: Duration::from_micros(micros),
            ..KdsConfig::default()
        }));
        let db = open_shield(
            Options::new(env).with_write_buffer_size(256 << 10),
            &shield_env::join_path(&tmp.path(), "db"),
            ShieldOptions::new(kds.clone() as Arc<dyn Kds>, ServerId(1), b"pk"),
        )
        .expect("open");
        let cfg = WorkloadConfig::new(Workload::FillRandom, scale.key_space());
        let r = run_workload(&db.db, &DriverConfig::new(cfg, scale.write_ops() / 2));
        table.push_row(vec![
            format!("{micros} µs"),
            fmt_ops(r.throughput()),
            kds.stats().generated.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_ablation_shows_fetch_difference() {
        let tables = ablation_cache(&Scale::new(0.05));
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 2);
        let with_cache: u64 = rows[0][2].parse().unwrap();
        let without: u64 = rows[1][2].parse().unwrap();
        assert!(
            without > with_cache,
            "cacheless restart must fetch more from the KDS ({without} vs {with_cache})"
        );
    }
}
