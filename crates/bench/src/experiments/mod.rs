//! One experiment per table/figure of the paper's evaluation (§6).
//!
//! Every experiment is a function `fn(&Scale) -> Vec<Table>`; the `paper`
//! binary runs them by id and writes CSVs. See `DESIGN.md` for the
//! experiment ↔ module index and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub mod ablation;
pub mod common;
pub mod compaction;
pub mod crypto_cost;
pub mod ds;
pub mod monolith;

pub use common::Scale;

use crate::report::Table;

/// A runnable experiment.
pub struct Experiment {
    /// Id used on the command line and for CSV files ("fig7", "table2").
    pub id: &'static str,
    /// What the paper artifact shows.
    pub title: &'static str,
    /// Runs the experiment at the given scale.
    pub run: fn(&Scale) -> Vec<Table>,
}

/// Every experiment, in paper order.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig4",
            title: "Encryption vs file-write cost; encryption share of WAL writes",
            run: crypto_cost::fig4,
        },
        Experiment {
            id: "table2",
            title: "Impact of encryption for WAL-writes (none / SST-only / all)",
            run: monolith::table2,
        },
        Experiment {
            id: "fig7",
            title: "Monolith micro benchmarks: fillrandom / readrandom / mixgraph",
            run: monolith::fig7,
        },
        Experiment {
            id: "fig8",
            title: "Monolith mixed read/write ratios: throughput and p99",
            run: monolith::fig8,
        },
        Experiment {
            id: "fig9",
            title: "Monolith YCSB A-F",
            run: monolith::fig9,
        },
        Experiment {
            id: "fig10",
            title: "Sensitivity: value sizes",
            run: monolith::fig10,
        },
        Experiment {
            id: "fig11",
            title: "Sensitivity: writer threads",
            run: monolith::fig11,
        },
        Experiment {
            id: "fig12",
            title: "Sensitivity: background threads",
            run: monolith::fig12,
        },
        Experiment {
            id: "fig13",
            title: "Sensitivity: encryption chunk sizes and threads (compaction time)",
            run: compaction::fig13,
        },
        Experiment {
            id: "fig14",
            title: "Sensitivity: WAL buffer sizes",
            run: monolith::fig14,
        },
        Experiment {
            id: "fig15",
            title: "Compaction policies with offloaded compaction",
            run: compaction::fig15,
        },
        Experiment {
            id: "table3",
            title: "R/W I/O distribution (GiB) per compaction style and node",
            run: compaction::table3,
        },
        Experiment {
            id: "fig16",
            title: "Sensitivity: KDS latency",
            run: ds::fig16,
        },
        Experiment {
            id: "fig17",
            title: "Stress: increasing dataset sizes in DS",
            run: ds::fig17,
        },
        Experiment {
            id: "fig18",
            title: "Sensitivity: CPU / memory / network bandwidth",
            run: ds::fig18,
        },
        Experiment {
            id: "fig19",
            title: "Disaggregated storage: micro benchmarks",
            run: ds::fig19,
        },
        Experiment {
            id: "fig20",
            title: "Disaggregated storage: read/write ratios",
            run: ds::fig20,
        },
        Experiment {
            id: "fig21",
            title: "Disaggregated storage: YCSB",
            run: ds::fig21,
        },
        Experiment {
            id: "fig22",
            title: "Offloaded compaction: micro benchmarks",
            run: ds::fig22,
        },
        Experiment {
            id: "fig23",
            title: "Offloaded compaction: read/write ratios",
            run: ds::fig23,
        },
        Experiment {
            id: "fig24",
            title: "Offloaded compaction: YCSB",
            run: ds::fig24,
        },
        Experiment {
            id: "ablation_cache",
            title: "Ablation: secure DEK cache vs cacheless restart",
            run: ablation::ablation_cache,
        },
        Experiment {
            id: "ablation_cipher",
            title: "Ablation: AES-128-CTR vs ChaCha20",
            run: ablation::ablation_cipher,
        },
        Experiment {
            id: "ablation_kds_path",
            title: "Ablation: KDS generation latency on the write path",
            run: ablation::ablation_kds_path,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let exps = all_experiments();
        let mut ids: Vec<&str> = exps.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), exps.len());
    }

    #[test]
    fn covers_every_paper_artifact() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for required in [
            "fig4", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
            "fig14", "fig15", "table3", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22", "fig23", "fig24",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
