//! Log-bucketed latency histogram (nanosecond resolution, microsecond
//! reporting), cheap enough to record every operation.

/// A histogram over latencies in nanoseconds.
///
/// Buckets grow geometrically (×2 per bucket from 1 µs), bounded memory,
/// ~5% quantile error — plenty for p50/p99 reporting.
#[derive(Clone)]
pub struct Histogram {
    /// buckets[i] counts latencies in [bound(i-1), bound(i)).
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

const NUM_BUCKETS: usize = 48;

fn bucket_bound(i: usize) -> u64 {
    // 250ns, 500ns, 1µs, 2µs, … doubling.
    250u64 << i
}

fn bucket_for(ns: u64) -> usize {
    for i in 0..NUM_BUCKETS {
        if ns < bucket_bound(i) {
            return i;
        }
    }
    NUM_BUCKETS - 1
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { buckets: vec![0; NUM_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Records one latency.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_for(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram (e.g. from another thread).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds.
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 / self.count as f64 / 1000.0
    }

    /// Approximate quantile (0.0–1.0) in microseconds.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Midpoint of the bucket, capped at the observed max.
                let hi = bucket_bound(i);
                let lo = if i == 0 { 0 } else { bucket_bound(i - 1) };
                return ((lo + hi) / 2).min(self.max_ns) as f64 / 1000.0;
            }
        }
        self.max_ns as f64 / 1000.0
    }

    /// p99 latency in microseconds.
    #[must_use]
    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000); // 1µs … 1000µs
        }
        assert_eq!(h.count(), 1000);
        let mean = h.mean_us();
        assert!((mean - 500.5).abs() < 1.0, "mean {mean}");
        let p50 = h.quantile_us(0.5);
        assert!(p50 > 300.0 && p50 < 800.0, "p50 {p50}");
        let p99 = h.p99_us();
        assert!(p99 > 700.0, "p99 {p99}");
        assert!(p99 >= p50);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1000);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        // Log-bucketed: the 1 ms sample lands in the [524µs, 1048µs)
        // bucket, so the reported max is its midpoint (≥ 500 µs).
        assert!(a.quantile_us(1.0) >= 500.0);
    }

    #[test]
    fn empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.p99_us(), 0.0);
    }

    #[test]
    fn huge_latency_clamped_to_last_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5) > 0.0);
    }
}
