//! Latency histogram for the bench harness.
//!
//! The implementation was promoted into the dependency-free `shield-core`
//! crate (`shield_core::hist`) so the *engine* records per-op latencies
//! with the very same buckets the harness reports (×2 per bucket starting
//! at 250 ns, 48 buckets). This module re-exports it for the harness's
//! existing call sites.

pub use shield_core::{AtomicHistogram, Histogram, HistogramSummary};

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness-facing contract the experiments rely on.
    #[test]
    fn harness_facing_api_is_intact() {
        let mut h = Histogram::new();
        for ns in [300u64, 900, 12_000, 1_000_000] {
            h.record(ns);
        }
        let mut other = Histogram::new();
        other.record(500);
        h.merge(&other);
        assert_eq!(h.count(), 5);
        assert!(h.mean_us() > 0.0);
        assert!(h.p99_us() >= h.quantile_us(0.5));
    }
}
