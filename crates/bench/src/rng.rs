//! Deterministic random number generation for reproducible workloads.

/// xorshift64* — fast, deterministic, good enough for workload shaping.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a non-zero seed (0 is remapped).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fills `buf` with deterministic bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

/// Zipfian distribution over `[0, n)` (YCSB's generator, Gray et al.).
///
/// Hot items are the *scrambled* low ranks, as in YCSB's
/// `ScrambledZipfianGenerator`, so popularity is spread over the keyspace.
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

impl Zipfian {
    /// Standard YCSB constant θ = 0.99, scrambled.
    #[must_use]
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99, true)
    }

    /// Custom skew; `scramble` maps ranks through a hash.
    #[must_use]
    pub fn with_theta(n: u64, theta: f64, scramble: bool) -> Self {
        assert!(n > 0);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            scramble,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; capped for large n by sampling tail mass is not
        // needed at benchmark scales (n ≤ a few million).
        let mut sum = 0.0;
        for i in 1..=n.min(10_000_000) {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Draws an item in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            // FNV-style scramble, then clamp into range.
            rank.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) % self.n
        } else {
            rank
        }
    }
}

/// YCSB-D's "latest" distribution: recency-skewed over a growing keyspace.
pub struct Latest {
    zipf: Zipfian,
}

impl Latest {
    /// Over a window of `n` most-recent items.
    #[must_use]
    pub fn new(n: u64) -> Self {
        Latest { zipf: Zipfian::with_theta(n, 0.99, false) }
    }

    /// Draws an offset back from `max_key` (0 = the newest key).
    pub fn sample(&self, rng: &mut Rng, max_key: u64) -> u64 {
        let back = self.zipf.sample(rng);
        max_key.saturating_sub(back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_is_deterministic() {
        let mut a = [0u8; 13];
        let mut b = [0u8; 13];
        Rng::new(5).fill(&mut a);
        Rng::new(5).fill(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 13]);
    }

    #[test]
    fn zipfian_is_skewed() {
        let z = Zipfian::with_theta(1000, 0.99, false);
        let mut rng = Rng::new(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 must dominate rank 500 heavily.
        assert!(counts[0] > counts[500] * 10, "{} vs {}", counts[0], counts[500]);
        // All samples in range (implicitly, via indexing).
    }

    #[test]
    fn scrambled_zipfian_spreads_hotspots() {
        let z = Zipfian::new(1000);
        let mut rng = Rng::new(1);
        let mut max_item = 0;
        for _ in 0..10_000 {
            max_item = max_item.max(z.sample(&mut rng));
        }
        // Scrambling should reach deep into the keyspace.
        assert!(max_item > 500);
    }

    #[test]
    fn latest_prefers_recent() {
        let l = Latest::new(1000);
        let mut rng = Rng::new(3);
        let mut recent = 0;
        let total = 10_000;
        for _ in 0..total {
            if l.sample(&mut rng, 10_000) > 9_900 {
                recent += 1;
            }
        }
        // Far more than the uniform 1% should land in the newest 1%.
        assert!(recent > total / 20, "recent = {recent}");
    }
}
