//! Internal iterator abstraction and the k-way merging iterator that
//! powers reads, flushes, and compactions.

use std::cmp::Ordering;

use crate::error::Result;
use crate::memtable::MemTableIterator;
use crate::types::internal_key_cmp;

/// Forward iterator over `(internal key, value)` entries.
///
/// All positioning methods leave the iterator either on an entry
/// (`valid()`) or exhausted. Errors encountered while loading data are
/// reported through [`InternalIterator::status`] and render the iterator
/// invalid.
pub trait InternalIterator: Send {
    /// True if positioned on an entry.
    fn valid(&self) -> bool;
    /// Positions on the first entry.
    fn seek_to_first(&mut self);
    /// Positions on the first entry with internal key >= `target`.
    fn seek(&mut self, target: &[u8]);
    /// Advances to the next entry. Requires `valid()`.
    fn next(&mut self);
    /// Current internal key. Requires `valid()`.
    fn key(&self) -> &[u8];
    /// Current value. Requires `valid()`.
    fn value(&self) -> &[u8];
    /// First error encountered, if any.
    fn status(&self) -> Result<()> {
        Ok(())
    }
}

impl InternalIterator for MemTableIterator {
    fn valid(&self) -> bool {
        MemTableIterator::valid(self)
    }
    fn seek_to_first(&mut self) {
        MemTableIterator::seek_to_first(self);
    }
    fn seek(&mut self, target: &[u8]) {
        MemTableIterator::seek(self, target);
    }
    fn next(&mut self) {
        MemTableIterator::next(self);
    }
    fn key(&self) -> &[u8] {
        MemTableIterator::key(self)
    }
    fn value(&self) -> &[u8] {
        MemTableIterator::value(self)
    }
}

/// Merges several sorted children into one sorted stream.
///
/// Ties on identical internal keys are broken by child order, so callers
/// should list newer sources first (memtables before L0 before L1 …).
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    current: Option<usize>,
}

impl MergingIterator {
    /// Creates a merging iterator over `children` (may be empty).
    #[must_use]
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> Self {
        MergingIterator { children, current: None }
    }

    fn find_smallest(&mut self) {
        let mut best: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    if internal_key_cmp(child.key(), self.children[b].key()) == Ordering::Less {
                        best = Some(i);
                    }
                }
            }
        }
        self.current = best;
    }
}

impl InternalIterator for MergingIterator {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for c in &mut self.children {
            c.seek_to_first();
        }
        self.find_smallest();
    }

    fn seek(&mut self, target: &[u8]) {
        for c in &mut self.children {
            c.seek(target);
        }
        self.find_smallest();
    }

    fn next(&mut self) {
        let cur = self.current.expect("next on invalid iterator");
        self.children[cur].next();
        self.find_smallest();
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("key on invalid iterator")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("value on invalid iterator")].value()
    }

    fn status(&self) -> Result<()> {
        for c in &self.children {
            c.status()?;
        }
        Ok(())
    }
}

/// An iterator over an in-memory vector of entries; used in tests and as
/// the recovery path's batch view.
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    started: bool,
}

impl VecIterator {
    /// Creates an iterator over `entries`, which must already be sorted by
    /// internal key.
    #[must_use]
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(entries
            .windows(2)
            .all(|w| internal_key_cmp(&w[0].0, &w[1].0) != Ordering::Greater));
        VecIterator { entries, pos: 0, started: false }
    }
}

impl InternalIterator for VecIterator {
    fn valid(&self) -> bool {
        self.started && self.pos < self.entries.len()
    }
    fn seek_to_first(&mut self) {
        self.pos = 0;
        self.started = true;
    }
    fn seek(&mut self, target: &[u8]) {
        self.started = true;
        self.pos = self
            .entries
            .partition_point(|(k, _)| internal_key_cmp(k, target) == Ordering::Less);
    }
    fn next(&mut self) {
        self.pos += 1;
    }
    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }
    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};

    fn ik(k: &str, seq: u64) -> Vec<u8> {
        make_internal_key(k.as_bytes(), seq, ValueType::Value)
    }

    fn vec_iter(keys: &[(&str, u64, &str)]) -> Box<dyn InternalIterator> {
        let mut entries: Vec<(Vec<u8>, Vec<u8>)> = keys
            .iter()
            .map(|(k, s, v)| (ik(k, *s), v.as_bytes().to_vec()))
            .collect();
        entries.sort_by(|a, b| internal_key_cmp(&a.0, &b.0));
        Box::new(VecIterator::new(entries))
    }

    fn drain(it: &mut dyn InternalIterator) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        it.seek_to_first();
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        out
    }

    #[test]
    fn merge_two_sources_in_order() {
        let a = vec_iter(&[("a", 1, "1"), ("c", 1, "3")]);
        let b = vec_iter(&[("b", 1, "2"), ("d", 1, "4")]);
        let mut m = MergingIterator::new(vec![a, b]);
        let out = drain(&mut m);
        let keys: Vec<Vec<u8>> =
            out.iter().map(|(k, _)| crate::types::extract_user_key(k).to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn merge_prefers_newer_sequence_first() {
        // Same user key at different sequences across sources: newest first.
        let newer = vec_iter(&[("k", 9, "new")]);
        let older = vec_iter(&[("k", 2, "old")]);
        let mut m = MergingIterator::new(vec![newer, older]);
        let out = drain(&mut m);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, b"new");
        assert_eq!(out[1].1, b"old");
    }

    #[test]
    fn merge_seek() {
        let a = vec_iter(&[("a", 1, "1"), ("m", 1, "2"), ("z", 1, "3")]);
        let b = vec_iter(&[("g", 1, "4"), ("q", 1, "5")]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek(&crate::types::make_lookup_key(b"h", u64::MAX >> 8));
        assert!(m.valid());
        assert_eq!(crate::types::extract_user_key(m.key()), b"m");
    }

    #[test]
    fn merge_empty_children() {
        let mut m = MergingIterator::new(vec![vec_iter(&[]), vec_iter(&[])]);
        m.seek_to_first();
        assert!(!m.valid());
        let mut m = MergingIterator::new(vec![]);
        m.seek_to_first();
        assert!(!m.valid());
    }

    #[test]
    fn vec_iterator_seek_past_end() {
        let mut it = vec_iter(&[("a", 1, "1")]);
        it.seek(&ik("b", 1));
        assert!(!it.valid());
    }
}
