//! Error type shared across the engine.

use std::fmt;

use shield_env::EnvError;
use shield_kds::resolver::ResolverError;

/// Errors surfaced by database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Persistent data failed validation (checksums, format invariants).
    Corruption(String),
    /// Persistent data failed **authenticated** validation: an HMAC tag
    /// mismatch under [`crate::integrity::Integrity::Hmac`]. Distinct from
    /// [`Error::Corruption`] because a forged tag means *tampering*, not
    /// disk rot — operators must treat the medium as hostile, not merely
    /// broken.
    IntegrityViolation(String),
    /// Underlying storage failure.
    Io(EnvError),
    /// DEK resolution failed (KDS denied, cache corrupt, …).
    Encryption(String),
    /// The database is shutting down or already closed.
    Shutdown,
    /// The caller misused the API.
    InvalidArgument(String),
    /// A key was not found (only from APIs that promise existence).
    NotFound,
}

/// How bad an error is for the database as a whole — the taxonomy behind
/// background-job retries and [`crate::Db::resume`] (RocksDB's
/// soft/hard/fatal classification).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Likely transient (network blip, busy device). Background jobs
    /// retry these automatically with backoff.
    Soft,
    /// Not transient, but the database state is intact: reads keep
    /// working, and [`crate::Db::resume`] can clear it once the cause is
    /// fixed (e.g. a KDS outage ends).
    Hard,
    /// Persistent data is damaged (corruption). Never retried and never
    /// cleared by resume; requires operator intervention.
    Unrecoverable,
}

impl Error {
    /// Classifies this error for retry/resume policy.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            // Generic I/O failures are presumed transient: on local disks
            // they are EINTR/ENOSPC-style conditions, on disaggregated
            // storage they are network faults (the common case SHIELD's
            // DS deployment must ride out).
            Error::Io(EnvError::Io(_)) => Severity::Soft,
            // A missing or colliding file will not fix itself, but the
            // in-memory state is still good.
            Error::Io(EnvError::NotFound(_)) | Error::Io(EnvError::AlreadyExists(_)) => {
                Severity::Hard
            }
            // EnvError::Corruption is normally converted to
            // Error::Corruption; classify it the same way if one slips
            // through untranslated.
            Error::Io(EnvError::Corruption(_)) | Error::Corruption(_) => {
                Severity::Unrecoverable
            }
            // A failed MAC is deliberate damage until proven otherwise:
            // never retried, never cleared by resume().
            Error::IntegrityViolation(_) => Severity::Unrecoverable,
            // DEK resolution failures cover both KDS outages (come back on
            // their own) and cache corruption; neither is safe to hammer
            // with automatic retries at this layer — the resolver already
            // retried — but resume() may clear them once the KDS is back.
            Error::Encryption(_) => Severity::Hard,
            Error::Shutdown | Error::InvalidArgument(_) | Error::NotFound => Severity::Hard,
        }
    }

    /// True if background jobs should retry the operation automatically.
    #[must_use]
    pub fn retryable(&self) -> bool {
        self.severity() == Severity::Soft
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::IntegrityViolation(m) => write!(f, "integrity violation: {m}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Encryption(m) => write!(f, "encryption: {m}"),
            Error::Shutdown => write!(f, "database is shutting down"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::NotFound => write!(f, "not found"),
        }
    }
}

impl std::error::Error for Error {}

impl From<EnvError> for Error {
    fn from(e: EnvError) -> Self {
        match e {
            EnvError::Corruption(m) => Error::Corruption(m),
            other => Error::Io(other),
        }
    }
}

impl From<ResolverError> for Error {
    fn from(e: ResolverError) -> Self {
        Error::Encryption(e.to_string())
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_error_conversion() {
        let e: Error = EnvError::Corruption("bad".into()).into();
        assert!(matches!(e, Error::Corruption(_)));
        let e: Error = EnvError::NotFound("f".into()).into();
        assert!(matches!(e, Error::Io(EnvError::NotFound(_))));
    }

    #[test]
    fn display() {
        assert_eq!(Error::Shutdown.to_string(), "database is shutting down");
        assert!(Error::Corruption("x".into()).to_string().contains("x"));
    }

    #[test]
    fn severity_taxonomy() {
        assert_eq!(Error::Io(EnvError::Io("net".into())).severity(), Severity::Soft);
        assert!(Error::Io(EnvError::Io("net".into())).retryable());
        assert_eq!(Error::Io(EnvError::NotFound("f".into())).severity(), Severity::Hard);
        assert_eq!(Error::Corruption("bits".into()).severity(), Severity::Unrecoverable);
        assert_eq!(Error::Encryption("kds down".into()).severity(), Severity::Hard);
        assert!(!Error::Corruption("bits".into()).retryable());
        assert!(!Error::Shutdown.retryable());
    }

    #[test]
    fn integrity_violation_is_unrecoverable_and_distinct() {
        let e = Error::IntegrityViolation("tag mismatch".into());
        assert_eq!(e.severity(), Severity::Unrecoverable);
        assert!(!e.retryable());
        assert!(e.to_string().starts_with("integrity violation:"));
        // Must never be conflated with plain corruption.
        assert!(!matches!(e, Error::Corruption(_)));
        assert_ne!(e, Error::Corruption("tag mismatch".into()));
    }
}
