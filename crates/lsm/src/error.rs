//! Error type shared across the engine.

use std::fmt;

use shield_env::EnvError;
use shield_kds::resolver::ResolverError;

/// Errors surfaced by database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Persistent data failed validation (checksums, format invariants).
    Corruption(String),
    /// Underlying storage failure.
    Io(EnvError),
    /// DEK resolution failed (KDS denied, cache corrupt, …).
    Encryption(String),
    /// The database is shutting down or already closed.
    Shutdown,
    /// The caller misused the API.
    InvalidArgument(String),
    /// A key was not found (only from APIs that promise existence).
    NotFound,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::Io(e) => write!(f, "io: {e}"),
            Error::Encryption(m) => write!(f, "encryption: {m}"),
            Error::Shutdown => write!(f, "database is shutting down"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::NotFound => write!(f, "not found"),
        }
    }
}

impl std::error::Error for Error {}

impl From<EnvError> for Error {
    fn from(e: EnvError) -> Self {
        match e {
            EnvError::Corruption(m) => Error::Corruption(m),
            other => Error::Io(other),
        }
    }
}

impl From<ResolverError> for Error {
    fn from(e: ResolverError) -> Self {
        Error::Encryption(e.to_string())
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_error_conversion() {
        let e: Error = EnvError::Corruption("bad".into()).into();
        assert!(matches!(e, Error::Corruption(_)));
        let e: Error = EnvError::NotFound("f".into()).into();
        assert!(matches!(e, Error::Io(EnvError::NotFound(_))));
    }

    #[test]
    fn display() {
        assert_eq!(Error::Shutdown.to_string(), "database is shutting down");
        assert!(Error::Corruption("x".into()).to_string().contains("x"));
    }
}
