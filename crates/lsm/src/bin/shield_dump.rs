//! `shield_dump` — inspect database files, like RocksDB's `sst_dump` /
//! `ldb`. Works on plaintext files directly; encrypted files show their
//! plaintext metadata header (magic, algorithm, DEK-ID, nonce), which is
//! exactly what an attacker without the DEK can learn (paper §5.4).
//!
//! ```text
//! shield_dump manifest <path>   # replay a MANIFEST, print version edits
//! shield_dump sst <path>        # table properties + entry count
//! shield_dump wal <path>        # record sizes
//! shield_dump header <path>     # encryption header of any file
//! shield_dump dir <path>        # classify the files of a database dir
//! ```

use std::sync::Arc;

use shield_lsm::encryption::{FileHeader, FILE_HEADER_LEN};
use shield_lsm::iter::InternalIterator;
use shield_lsm::sst::Table;
use shield_lsm::types::{extract_seq_type, extract_user_key};
use shield_lsm::version::{parse_file_name, VersionEdit};
use shield_lsm::wal::LogReader;
use shield_env::{Env, FileKind, PosixEnv};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: shield_dump <manifest|sst|wal|header|dir> <path>");
            std::process::exit(2);
        }
    };
    let env = PosixEnv::new();
    let result = match cmd {
        "header" => dump_header(&env, path),
        "sst" => dump_sst(&env, path),
        "wal" => dump_wal(&env, path),
        "manifest" => dump_manifest(&env, path),
        "dir" => dump_dir(&env, path),
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type DynResult = Result<(), Box<dyn std::error::Error>>;

fn read_header(env: &PosixEnv, path: &str) -> Result<Option<FileHeader>, Box<dyn std::error::Error>> {
    let f = env.new_random_access_file(path, FileKind::Other)?;
    let head = f.read_at(0, FILE_HEADER_LEN)?;
    Ok(FileHeader::decode(&head)?)
}

fn dump_header(env: &PosixEnv, path: &str) -> DynResult {
    match read_header(env, path)? {
        Some(h) => {
            println!("encrypted file");
            println!("  algorithm: {}", h.algorithm);
            println!("  dek-id:    {}", h.dek_id);
            println!("  nonce:     {}", hex(&h.nonce));
            println!("  body:      {} bytes of ciphertext", env.file_size(path)?.saturating_sub(FILE_HEADER_LEN as u64));
        }
        None => println!("plaintext file ({} bytes)", env.file_size(path)?),
    }
    Ok(())
}

fn dump_sst(env: &PosixEnv, path: &str) -> DynResult {
    if let Some(h) = read_header(env, path)? {
        println!("encrypted SST — cannot read body without DEK {}", h.dek_id);
        return dump_header(env, path);
    }
    let file = env.new_random_access_file(path, FileKind::Sst)?;
    let table = Arc::new(Table::open(file, 0, None)?);
    let p = table.properties();
    println!("table properties:");
    println!("  entries:        {}", p.num_entries);
    println!("  data blocks:    {}", p.num_data_blocks);
    println!("  raw key bytes:  {}", p.raw_key_bytes);
    println!("  raw val bytes:  {}", p.raw_value_bytes);
    println!("  key range:      {:?} .. {:?}", lossy(&p.smallest_user_key), lossy(&p.largest_user_key));
    println!("  dek-id (info):  {}", p.dek_id.map_or("none".to_string(), |d| d.to_string()));
    let mut it = table.iter();
    it.seek_to_first();
    let mut shown = 0;
    println!("first entries:");
    while it.valid() && shown < 10 {
        let (seq, t) = extract_seq_type(it.key());
        println!(
            "  {:?} @ seq {} ({:?}) = {} bytes",
            lossy(extract_user_key(it.key())),
            seq,
            t,
            it.value().len()
        );
        shown += 1;
        it.next();
    }
    Ok(())
}

fn dump_wal(env: &PosixEnv, path: &str) -> DynResult {
    if let Some(h) = read_header(env, path)? {
        println!("encrypted WAL — cannot read records without DEK {}", h.dek_id);
        return dump_header(env, path);
    }
    let file = env.new_sequential_file(path, FileKind::Wal)?;
    let mut reader = LogReader::new(file);
    let mut n = 0u64;
    let mut bytes = 0u64;
    while let Some(rec) = reader.read_record()? {
        n += 1;
        bytes += rec.len() as u64;
        if n <= 10 {
            println!("record {n}: {} bytes", rec.len());
        }
    }
    println!("total: {n} records, {bytes} payload bytes");
    Ok(())
}

fn dump_manifest(env: &PosixEnv, path: &str) -> DynResult {
    if let Some(h) = read_header(env, path)? {
        println!("encrypted MANIFEST — cannot read edits without DEK {}", h.dek_id);
        return dump_header(env, path);
    }
    let file = env.new_sequential_file(path, FileKind::Manifest)?;
    let mut reader = LogReader::new(file);
    let mut n = 0;
    while let Some(rec) = reader.read_record()? {
        let edit = VersionEdit::decode(&rec)?;
        n += 1;
        println!("edit {n}:");
        if let Some(v) = edit.log_number {
            println!("  log_number: {v}");
        }
        if let Some(v) = edit.last_sequence {
            println!("  last_sequence: {v}");
        }
        for (level, number) in &edit.deleted_files {
            println!("  delete L{level} #{number}");
        }
        for (level, meta) in &edit.new_files {
            println!(
                "  add L{level} #{} ({} bytes, {:?}..{:?}, dek {})",
                meta.number,
                meta.file_size,
                lossy(meta.smallest_user_key()),
                lossy(meta.largest_user_key()),
                meta.dek_id.map_or("none".to_string(), |d| d.to_string()),
            );
        }
    }
    Ok(())
}

fn dump_dir(env: &PosixEnv, path: &str) -> DynResult {
    for name in env.list_dir(path)? {
        let full = shield_env::join_path(path, &name);
        let size = env.file_size(&full)?;
        let kind = parse_file_name(&name).map_or("?".to_string(), |k| format!("{k:?}"));
        let enc = match read_header(env, &full)? {
            Some(h) => format!("encrypted (dek {})", h.dek_id),
            None => "plaintext".to_string(),
        };
        println!("{name:24} {size:>10} B  {kind:18} {enc}");
    }
    Ok(())
}

fn hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02x}")).collect()
}

fn lossy(data: &[u8]) -> String {
    String::from_utf8_lossy(data).into_owned()
}
