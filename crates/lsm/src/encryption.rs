//! File-layer encryption for the engine (paper §5).
//!
//! Every encrypted file starts with a 64-byte **plaintext header** carrying
//! the magic, algorithm tag, DEK-ID, and per-file nonce — the "DEK-ID in
//! file metadata" mechanism of §5.4: metadata is read before data, letting
//! any authorized server resolve the DEK via its secure cache or the KDS.
//! The body is a single CTR/ChaCha20 stream, so blocks can be decrypted at
//! arbitrary offsets.
//!
//! Write-side cost model (§3.2): one [`CipherContext`] construction per
//! *encryption call* — the analogue of OpenSSL's per-call `EVP_EncryptInit`.
//! [`EncryptedWritableFile`] therefore exposes two knobs:
//!
//! * `buffer_capacity` — the application-managed WAL buffer (§5.3). Zero
//!   means every `append` is encrypted immediately with a fresh context
//!   (the expensive unbuffered path); a positive capacity defers and
//!   batches encryption, trading process-crash durability for throughput.
//! * `chunk_size` / `threads` — compaction-time chunked encryption (§5.2):
//!   buffered data is encrypted in `chunk_size` pieces, optionally across
//!   a scoped thread pool, one context per chunk.
//!
//! The keystream kernels *under* `CipherContext::xor_at` are batched
//! (multi-block AES-CTR/ChaCha20 with hardware dispatch — DESIGN.md §4d),
//! which raises per-byte throughput only; the per-call init cost this
//! module's buffering amortizes, and the `cipher_inits()` counters that
//! observe it, are untouched by that work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use shield_core::{perf, PerfCounter, PerfMetric};
use shield_crypto::{Algorithm, CipherContext, Dek, DekId, NONCE_LEN};
use shield_env::{
    Env, EnvResult, FileKind, RandomAccessFile, ReadRequest, SequentialFile, WritableFile,
};
use shield_kds::DekResolver;

use crate::error::{Error, Result};
use crate::integrity::derive_mac_subkey;

/// Length of the plaintext per-file metadata header.
pub const FILE_HEADER_LEN: usize = 64;

/// A writable file plus the identity of the DEK encrypting it and the MAC
/// subkey derived from that DEK (`None` when the file is plaintext).
pub type WritableWithMac = (Box<dyn WritableFile>, DekId, Option<[u8; 32]>);
/// A random-access file plus its DEK-derived MAC subkey (`None` when the
/// file is plaintext).
pub type RandomWithMac = (Arc<dyn RandomAccessFile>, Option<[u8; 32]>);
/// A sequential file plus its DEK-derived MAC subkey (`None` when the
/// file is plaintext).
pub type SequentialWithMac = (Box<dyn SequentialFile>, Option<[u8; 32]>);
const MAGIC: &[u8; 8] = b"SHLDENCF";
const HEADER_VERSION: u8 = 1;

/// The plaintext metadata prefix of every encrypted file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileHeader {
    /// Cipher used for the body.
    pub algorithm: Algorithm,
    /// Identifier of the DEK that encrypts the body (public).
    pub dek_id: DekId,
    /// Per-file nonce / initial counter block.
    pub nonce: [u8; NONCE_LEN],
}

impl FileHeader {
    /// Serializes to the fixed 64-byte header.
    #[must_use]
    pub fn encode(&self) -> [u8; FILE_HEADER_LEN] {
        let mut out = [0u8; FILE_HEADER_LEN];
        out[..8].copy_from_slice(MAGIC);
        out[8] = HEADER_VERSION;
        out[9] = self.algorithm.tag();
        out[16..32].copy_from_slice(&self.dek_id.to_bytes());
        out[32..32 + NONCE_LEN].copy_from_slice(&self.nonce);
        out
    }

    /// Parses a header; `Ok(None)` if the magic does not match (plaintext
    /// file), `Err` if the magic matches but the rest is invalid.
    pub fn decode(data: &[u8]) -> Result<Option<FileHeader>> {
        if data.len() < FILE_HEADER_LEN || &data[..8] != MAGIC {
            return Ok(None);
        }
        if data[8] != HEADER_VERSION {
            return Err(Error::Corruption(format!(
                "unsupported encryption header version {}",
                data[8]
            )));
        }
        let algorithm = Algorithm::from_tag(data[9])
            .ok_or_else(|| Error::Corruption(format!("bad algorithm tag {}", data[9])))?;
        let dek_id = DekId::from_bytes(data[16..32].try_into().unwrap());
        let nonce: [u8; NONCE_LEN] = data[32..32 + NONCE_LEN].try_into().unwrap();
        Ok(Some(FileHeader { algorithm, dek_id, nonce }))
    }
}

/// Engine-level encryption configuration (what [`crate::Options`] carries).
#[derive(Clone)]
pub struct EncryptionConfig {
    /// DEK source: per-file keys from the KDS through the secure cache.
    pub resolver: Arc<DekResolver>,
    /// WAL application-buffer size in bytes; 0 disables buffering (§5.3).
    /// The paper's default is 512 B.
    pub wal_buffer_size: usize,
    /// Chunk size for SST/compaction encryption (§5.2). Data is encrypted
    /// one chunk — one cipher init — at a time.
    pub chunk_size: usize,
    /// Worker threads for chunked encryption (1 = inline).
    pub encryption_threads: usize,
    /// When false, WAL files are left plaintext (the "Encrypted SST only"
    /// configuration of the paper's Table 2 — insecure, measurement only).
    pub encrypt_wal: bool,
    /// Cipher-context constructions performed, for the evaluation harness.
    inits: Arc<AtomicU64>,
}

impl EncryptionConfig {
    /// Creates a config with the paper's defaults: 512-byte WAL buffer,
    /// 4 KiB chunks, single-threaded chunk encryption.
    #[must_use]
    pub fn new(resolver: Arc<DekResolver>) -> Self {
        EncryptionConfig {
            resolver,
            wal_buffer_size: 512,
            chunk_size: 4096,
            encryption_threads: 1,
            encrypt_wal: true,
            inits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Disables WAL encryption (Table 2's "Encrypted SST" row). Insecure;
    /// exists to measure the WAL share of encryption overhead.
    #[must_use]
    pub fn with_plaintext_wal(mut self) -> Self {
        self.encrypt_wal = false;
        self
    }

    /// Sets the WAL buffer size (0 = unbuffered).
    #[must_use]
    pub fn with_wal_buffer(mut self, bytes: usize) -> Self {
        self.wal_buffer_size = bytes;
        self
    }

    /// Sets the chunked-encryption parameters.
    #[must_use]
    pub fn with_chunks(mut self, chunk_size: usize, threads: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self.encryption_threads = threads.max(1);
        self
    }

    /// Total cipher-context constructions so far.
    #[must_use]
    pub fn cipher_inits(&self) -> u64 {
        self.inits.load(Ordering::Relaxed)
    }

    /// Creates an encrypted writable file with a **fresh DEK** (unique DEK
    /// per file, §5.2), returning the file and the DEK id recorded in its
    /// header.
    pub fn new_writable(
        &self,
        env: &dyn Env,
        path: &str,
        kind: FileKind,
    ) -> Result<(Box<dyn WritableFile>, DekId)> {
        let (file, dek_id, _mac) = self.new_writable_with_mac(env, path, kind)?;
        Ok((file, dek_id))
    }

    /// Like [`new_writable`](Self::new_writable), also returning the MAC
    /// subkey derived from the file's DEK ([`derive_mac_subkey`]) for
    /// authenticated-integrity tagging — `None` when the file is plaintext
    /// (unencrypted WALs), in which case the caller falls back to the
    /// engine-wide integrity key.
    pub fn new_writable_with_mac(
        &self,
        env: &dyn Env,
        path: &str,
        kind: FileKind,
    ) -> Result<WritableWithMac> {
        if kind == FileKind::Wal && !self.encrypt_wal {
            let file = env.new_writable_file(path, kind)?;
            // No header, no DEK: the file is plaintext and self-describing.
            return Ok((file, DekId(0), None));
        }
        let dek = self.resolver.new_dek()?;
        let mut nonce = [0u8; NONCE_LEN];
        shield_crypto::secure_random(&mut nonce);
        let header = FileHeader { algorithm: dek.algorithm(), dek_id: dek.id(), nonce };
        let mut inner = env.new_writable_file(path, kind)?;
        inner.append(&header.encode())?;
        // Persist the metadata header immediately: readers (and the
        // deletion path's DEK revocation) must see it even if the body is
        // still buffered.
        inner.flush()?;
        let (buffer_capacity, chunk_size, threads) = match kind {
            FileKind::Wal => (self.wal_buffer_size, usize::MAX, 1),
            FileKind::Sst => (self.chunk_size, self.chunk_size, self.encryption_threads),
            _ => (0, usize::MAX, 1),
        };
        let dek_id = dek.id();
        let mac = derive_mac_subkey(dek.key_bytes());
        Ok((
            Box::new(EncryptedWritableFile::new(
                inner,
                dek,
                nonce,
                buffer_capacity,
                chunk_size,
                threads,
                self.inits.clone(),
            )),
            dek_id,
            Some(mac),
        ))
    }

    /// Opens an encrypted (or, transparently, plaintext) file for random
    /// access, resolving the DEK named in its header.
    pub fn open_random(
        &self,
        env: &dyn Env,
        path: &str,
        kind: FileKind,
    ) -> Result<Arc<dyn RandomAccessFile>> {
        let (file, _mac) = self.open_random_with_mac(env, path, kind)?;
        Ok(file)
    }

    /// Like [`open_random`](Self::open_random), also returning the MAC
    /// subkey derived from the file's DEK — `None` for plaintext files.
    pub fn open_random_with_mac(
        &self,
        env: &dyn Env,
        path: &str,
        kind: FileKind,
    ) -> Result<RandomWithMac> {
        let inner = env.new_random_access_file(path, kind)?;
        let head = inner.read_at(0, FILE_HEADER_LEN)?;
        match FileHeader::decode(&head)? {
            None => Ok((inner, None)),
            Some(header) => {
                let dek = self.resolver.resolve(header.dek_id)?;
                self.inits.fetch_add(1, Ordering::Relaxed);
                perf::incr(PerfCounter::CipherInits, 1);
                let mac = derive_mac_subkey(dek.key_bytes());
                let ctx = CipherContext::new(&dek, &header.nonce);
                Ok((Arc::new(EncryptedRandomAccessFile { inner, ctx }), Some(mac)))
            }
        }
    }

    /// Opens an encrypted (or plaintext) file for sequential reads.
    pub fn open_sequential(
        &self,
        env: &dyn Env,
        path: &str,
        kind: FileKind,
    ) -> Result<Box<dyn SequentialFile>> {
        let (file, _mac) = self.open_sequential_with_mac(env, path, kind)?;
        Ok(file)
    }

    /// Like [`open_sequential`](Self::open_sequential), also returning the
    /// MAC subkey derived from the file's DEK — `None` for plaintext files.
    pub fn open_sequential_with_mac(
        &self,
        env: &dyn Env,
        path: &str,
        kind: FileKind,
    ) -> Result<SequentialWithMac> {
        let mut inner = env.new_sequential_file(path, kind)?;
        let mut head = vec![0u8; FILE_HEADER_LEN];
        let mut filled = 0usize;
        while filled < FILE_HEADER_LEN {
            let n = inner.read(&mut head[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        head.truncate(filled);
        match FileHeader::decode(&head)? {
            None => {
                // Plaintext file: re-open to replay the consumed prefix.
                Ok((env.new_sequential_file(path, kind)?, None))
            }
            Some(header) => {
                let dek = self.resolver.resolve(header.dek_id)?;
                self.inits.fetch_add(1, Ordering::Relaxed);
                perf::incr(PerfCounter::CipherInits, 1);
                let mac = derive_mac_subkey(dek.key_bytes());
                let ctx = CipherContext::new(&dek, &header.nonce);
                Ok((Box::new(EncryptedSequentialFile { inner, ctx, offset: 0 }), Some(mac)))
            }
        }
    }

    /// Reads the DEK-ID out of a file header, if the file is encrypted.
    pub fn peek_dek_id(env: &dyn Env, path: &str, kind: FileKind) -> Result<Option<DekId>> {
        let inner = env.new_random_access_file(path, kind)?;
        let head = inner.read_at(0, FILE_HEADER_LEN)?;
        Ok(FileHeader::decode(&head)?.map(|h| h.dek_id))
    }

    /// Called before deleting `path`: prunes the cache entry and revokes
    /// the file's DEK at the KDS, so compaction doubles as key rotation —
    /// once the old files die, their DEKs die with them (§5.2).
    pub fn note_file_deleted(&self, env: &dyn Env, path: &str, kind: FileKind) -> Result<()> {
        match Self::peek_dek_id(env, path, kind) {
            Ok(Some(dek_id)) => {
                self.resolver.on_file_deleted(dek_id)?;
                Ok(())
            }
            // Missing or plaintext files have no key to revoke.
            Ok(None) | Err(_) => Ok(()),
        }
    }
}

impl std::fmt::Debug for EncryptionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptionConfig")
            .field("wal_buffer_size", &self.wal_buffer_size)
            .field("chunk_size", &self.chunk_size)
            .field("encryption_threads", &self.encryption_threads)
            .finish_non_exhaustive()
    }
}

/// A writable file whose body is encrypted before persistence.
pub struct EncryptedWritableFile {
    inner: Box<dyn WritableFile>,
    dek: Dek,
    nonce: [u8; NONCE_LEN],
    /// Plaintext awaiting encryption (the §5.3 application buffer).
    buffer: Vec<u8>,
    buffer_capacity: usize,
    chunk_size: usize,
    threads: usize,
    /// Byte offset in the encrypted stream of the first buffered byte.
    stream_offset: u64,
    logical_len: u64,
    inits: Arc<AtomicU64>,
}

impl EncryptedWritableFile {
    /// Wraps `inner` (whose encrypted-stream offset starts at 0, i.e. the
    /// plaintext header has already been written) for external users such
    /// as the instance-level EncFS environment.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn wrap(
        inner: Box<dyn WritableFile>,
        dek: Dek,
        nonce: [u8; NONCE_LEN],
        buffer_capacity: usize,
        chunk_size: usize,
        threads: usize,
        inits: Arc<AtomicU64>,
    ) -> Self {
        Self::new(inner, dek, nonce, buffer_capacity, chunk_size, threads, inits)
    }

    #[allow(clippy::too_many_arguments)]
    fn new(
        inner: Box<dyn WritableFile>,
        dek: Dek,
        nonce: [u8; NONCE_LEN],
        buffer_capacity: usize,
        chunk_size: usize,
        threads: usize,
        inits: Arc<AtomicU64>,
    ) -> Self {
        EncryptedWritableFile {
            inner,
            dek,
            nonce,
            buffer: Vec::with_capacity(buffer_capacity.min(1 << 20)),
            buffer_capacity,
            chunk_size: chunk_size.max(1),
            threads: threads.max(1),
            stream_offset: 0,
            logical_len: 0,
            inits,
        }
    }

    /// Encrypts `data` (starting at stream offset `offset`) in chunks,
    /// one fresh cipher context per chunk, optionally across threads.
    fn encrypt_payload(&self, offset: u64, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        // PerfContext: the whole chunked encryption is charged to the
        // calling thread (worker threads have their own, disabled,
        // context), as are all chunk cipher inits.
        let t = perf::timer();
        let chunk = self.chunk_size;
        let n_chunks = data.len().div_ceil(chunk.min(data.len().max(1)));
        perf::incr(PerfCounter::CipherInits, n_chunks as u64);
        if self.threads <= 1 || n_chunks <= 1 {
            let mut pos = 0usize;
            while pos < data.len() {
                let end = (pos + chunk).min(data.len());
                self.inits.fetch_add(1, Ordering::Relaxed);
                let ctx = CipherContext::new(&self.dek, &self.nonce);
                ctx.encrypt_at(offset + pos as u64, &mut data[pos..end]);
                pos = end;
            }
        } else {
            let threads = self.threads.min(n_chunks);
            let inits = &self.inits;
            let dek = &self.dek;
            let nonce = &self.nonce;
            std::thread::scope(|scope| {
                let mut rest = &mut data[..];
                let mut base = offset;
                let mut spawned = Vec::with_capacity(threads);
                // Split into `threads` contiguous shards of whole chunks.
                let chunks_per_thread = n_chunks.div_ceil(threads);
                for _ in 0..threads {
                    if rest.is_empty() {
                        break;
                    }
                    let take = (chunks_per_thread * chunk).min(rest.len());
                    let (shard, tail) = rest.split_at_mut(take);
                    rest = tail;
                    let shard_base = base;
                    base += take as u64;
                    spawned.push(scope.spawn(move || {
                        let mut pos = 0usize;
                        while pos < shard.len() {
                            let end = (pos + chunk).min(shard.len());
                            inits.fetch_add(1, Ordering::Relaxed);
                            let ctx = CipherContext::new(dek, nonce);
                            ctx.encrypt_at(shard_base + pos as u64, &mut shard[pos..end]);
                            pos = end;
                        }
                    }));
                }
                for h in spawned {
                    h.join().expect("encryption worker panicked");
                }
            });
        }
        perf::add_elapsed(PerfMetric::BlockEncrypt, t);
    }

    /// Encrypts and appends everything in the buffer.
    fn drain_buffer(&mut self) -> EnvResult<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let mut data = std::mem::take(&mut self.buffer);
        self.encrypt_payload(self.stream_offset, &mut data);
        self.stream_offset += data.len() as u64;
        self.inner.append(&data)
    }
}

impl WritableFile for EncryptedWritableFile {
    fn append(&mut self, data: &[u8]) -> EnvResult<()> {
        self.logical_len += data.len() as u64;
        if self.buffer_capacity == 0 {
            // Unbuffered: encrypt immediately — one init per call (§3.2).
            let mut owned = data.to_vec();
            self.encrypt_payload(self.stream_offset, &mut owned);
            self.stream_offset += owned.len() as u64;
            return self.inner.append(&owned);
        }
        self.buffer.extend_from_slice(data);
        if self.buffer.len() >= self.buffer_capacity {
            self.drain_buffer()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> EnvResult<()> {
        // Deliberately does NOT drain a non-empty application buffer: the
        // §5.3 design defers persistence to the buffer threshold, shifting
        // the durability point from the OS to the application. Only the
        // already-encrypted bytes are pushed down. `sync` (an explicit
        // durability request) drains.
        if self.buffer_capacity == 0 {
            self.drain_buffer()?;
        }
        self.inner.flush()
    }

    fn sync(&mut self) -> EnvResult<()> {
        self.drain_buffer()?;
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.logical_len
    }
}

/// Wraps an already-open random-access file whose body is encrypted under
/// `dek` with `nonce` (used by EncFS and read-only instances).
#[must_use]
pub fn wrap_random_access(
    inner: Arc<dyn RandomAccessFile>,
    dek: &Dek,
    nonce: &[u8; NONCE_LEN],
) -> Arc<dyn RandomAccessFile> {
    Arc::new(EncryptedRandomAccessFile { inner, ctx: CipherContext::new(dek, nonce) })
}

/// Wraps a sequential file positioned just past the plaintext header.
#[must_use]
pub fn wrap_sequential(
    inner: Box<dyn SequentialFile>,
    dek: &Dek,
    nonce: &[u8; NONCE_LEN],
) -> Box<dyn SequentialFile> {
    Box::new(EncryptedSequentialFile { inner, ctx: CipherContext::new(dek, nonce), offset: 0 })
}

struct EncryptedRandomAccessFile {
    inner: Arc<dyn RandomAccessFile>,
    ctx: CipherContext,
}

impl RandomAccessFile for EncryptedRandomAccessFile {
    fn read_at(&self, offset: u64, len: usize) -> EnvResult<Bytes> {
        let raw = self.inner.read_at(offset + FILE_HEADER_LEN as u64, len)?;
        let mut data = raw.to_vec();
        // block_read was charged by the inner (leaf) read above; only the
        // keystream XOR is block_decrypt, so the two never overlap.
        let t = perf::timer();
        self.ctx.decrypt_at(offset, &mut data);
        perf::add_elapsed(PerfMetric::BlockDecrypt, t);
        Ok(Bytes::from(data))
    }

    fn len(&self) -> EnvResult<u64> {
        Ok(self.inner.len()?.saturating_sub(FILE_HEADER_LEN as u64))
    }

    fn read_at_many(&self, requests: &[ReadRequest]) -> Vec<EnvResult<Bytes>> {
        // Pass the batch through so a remote env underneath charges one
        // round trip for all of it; each slot then decrypts at its own
        // logical offset (CTR keystreams are position-, not read-, based).
        let shifted: Vec<ReadRequest> = requests
            .iter()
            .map(|r| ReadRequest { offset: r.offset + FILE_HEADER_LEN as u64, len: r.len })
            .collect();
        let raw = self.inner.read_at_many(&shifted);
        raw.into_iter()
            .zip(requests.iter())
            .map(|(res, req)| {
                let mut data = res?.to_vec();
                let t = perf::timer();
                self.ctx.decrypt_at(req.offset, &mut data);
                perf::add_elapsed(PerfMetric::BlockDecrypt, t);
                Ok(Bytes::from(data))
            })
            .collect()
    }
}

struct EncryptedSequentialFile {
    inner: Box<dyn SequentialFile>,
    ctx: CipherContext,
    offset: u64,
}

impl SequentialFile for EncryptedSequentialFile {
    fn read(&mut self, buf: &mut [u8]) -> EnvResult<usize> {
        let n = self.inner.read(buf)?;
        let t = perf::timer();
        self.ctx.decrypt_at(self.offset, &mut buf[..n]);
        perf::add_elapsed(PerfMetric::BlockDecrypt, t);
        self.offset += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_crypto::Algorithm;
    use shield_env::MemEnv;
    use shield_kds::{KdsConfig, LocalKds, ServerId};

    fn config() -> (EncryptionConfig, Arc<LocalKds>) {
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let resolver = Arc::new(DekResolver::new(
            kds.clone(),
            None,
            ServerId(1),
            Algorithm::Aes128Ctr,
        ));
        (EncryptionConfig::new(resolver), kds)
    }

    #[test]
    fn header_roundtrip() {
        let h = FileHeader {
            algorithm: Algorithm::ChaCha20,
            dek_id: DekId(777),
            nonce: [9u8; NONCE_LEN],
        };
        let enc = h.encode();
        assert_eq!(FileHeader::decode(&enc).unwrap(), Some(h));
        // Plaintext data doesn't decode as a header.
        assert_eq!(FileHeader::decode(b"some plaintext data that is long enough to hold a header....." ).unwrap(), None);
        assert_eq!(FileHeader::decode(b"short").unwrap(), None);
    }

    #[test]
    fn write_read_roundtrip_random_access() {
        let (cfg, _) = config();
        let env = MemEnv::new();
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        {
            let (mut f, _) = cfg.new_writable(&env, "f.sst", FileKind::Sst).unwrap();
            f.append(&payload).unwrap();
            f.sync().unwrap();
            assert_eq!(f.len(), payload.len() as u64);
        }
        let r = cfg.open_random(&env, "f.sst", FileKind::Sst).unwrap();
        assert_eq!(r.len().unwrap(), payload.len() as u64);
        assert_eq!(&r.read_at(0, 100).unwrap()[..], &payload[..100]);
        assert_eq!(&r.read_at(5000, 2500).unwrap()[..], &payload[5000..7500]);
    }

    #[test]
    fn concurrent_random_reads_decrypt_consistently() {
        // The block fetcher's prefetch workers decrypt through the same
        // shared `EncryptedRandomAccessFile` as foreground reads; heavily
        // interleaved offsets must never corrupt either side's plaintext.
        let (cfg, _) = config();
        let env = MemEnv::new();
        let payload: Vec<u8> =
            (0..128 * 1024u32).map(|i| (i.wrapping_mul(2_654_435_761) >> 7) as u8).collect();
        {
            let (mut f, _) = cfg.new_writable(&env, "f.sst", FileKind::Sst).unwrap();
            f.append(&payload).unwrap();
            f.sync().unwrap();
        }
        let r = cfg.open_random(&env, "f.sst", FileKind::Sst).unwrap();
        let payload = Arc::new(payload);
        let joins: Vec<_> = (0..8u64)
            .map(|t| {
                let r = r.clone();
                let payload = payload.clone();
                std::thread::spawn(move || {
                    let mut x = t.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                    for _ in 0..200 {
                        x ^= x >> 12;
                        x ^= x << 25;
                        x ^= x >> 27;
                        let off = (x % (payload.len() as u64 - 4096)) as usize;
                        let len = 1 + (x % 4096) as usize;
                        let got = r.read_at(off as u64, len).unwrap();
                        assert_eq!(&got[..], &payload[off..off + len], "offset {off} len {len}");
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (cfg, _) = config();
        let env = MemEnv::new();
        let secret = b"extremely secret client data that must never appear on disk";
        {
            let (mut f, _) = cfg.new_writable(&env, "f", FileKind::Sst).unwrap();
            f.append(secret).unwrap();
            f.sync().unwrap();
        }
        let raw = env.raw_content("f").unwrap();
        assert!(!raw.windows(16).any(|w| secret.windows(16).any(|s| s == w)));
        // But the header magic is plaintext.
        assert_eq!(&raw[..8], MAGIC);
    }

    #[test]
    fn sequential_read_roundtrip() {
        let (cfg, _) = config();
        let env = MemEnv::new();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i * 7 % 256) as u8).collect();
        {
            let (mut f, _) = cfg.new_writable(&env, "f.log", FileKind::Wal).unwrap();
            f.append(&payload).unwrap();
            f.sync().unwrap();
        }
        let mut s = cfg.open_sequential(&env, "f.log", FileKind::Wal).unwrap();
        let mut out = Vec::new();
        let mut buf = [0u8; 333];
        loop {
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, payload);
    }

    #[test]
    fn plaintext_files_pass_through() {
        let (cfg, _) = config();
        let env = MemEnv::new();
        {
            let mut f = env.new_writable_file("plain", FileKind::Other).unwrap();
            f.append(b"hello plaintext world, long enough to exceed header length....")
                .unwrap();
            f.sync().unwrap();
        }
        let r = cfg.open_random(&env, "plain", FileKind::Other).unwrap();
        assert_eq!(&r.read_at(0, 5).unwrap()[..], b"hello");
        let mut s = cfg.open_sequential(&env, "plain", FileKind::Other).unwrap();
        let mut buf = [0u8; 5];
        s.read(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn unique_dek_per_file() {
        let (cfg, _) = config();
        let env = MemEnv::new();
        let (_, id1) = cfg.new_writable(&env, "a", FileKind::Sst).unwrap();
        let (_, id2) = cfg.new_writable(&env, "b", FileKind::Sst).unwrap();
        assert_ne!(id1, id2);
        assert_eq!(
            EncryptionConfig::peek_dek_id(&env, "a", FileKind::Sst).unwrap(),
            Some(id1)
        );
    }

    #[test]
    fn unbuffered_wal_pays_one_init_per_append() {
        let (cfg, _) = config();
        let cfg = cfg.with_wal_buffer(0);
        let env = MemEnv::new();
        let before = cfg.cipher_inits();
        let (mut f, _) = cfg.new_writable(&env, "w", FileKind::Wal).unwrap();
        for _ in 0..50 {
            f.append(&[1u8; 20]).unwrap();
        }
        f.flush().unwrap();
        assert_eq!(cfg.cipher_inits() - before, 50);
    }

    #[test]
    fn buffered_wal_amortizes_inits() {
        let (cfg, _) = config();
        let cfg = cfg.with_wal_buffer(512);
        let env = MemEnv::new();
        let before = cfg.cipher_inits();
        let (mut f, _) = cfg.new_writable(&env, "w", FileKind::Wal).unwrap();
        for _ in 0..50 {
            f.append(&[1u8; 20]).unwrap(); // 1000 bytes total
        }
        // flush() does not drain the buffer (deferred persistence); sync()
        // does.
        f.flush().unwrap();
        f.sync().unwrap();
        // 1000 bytes through a 512-byte buffer: one drain at ≥512 plus the
        // final sync — far fewer than 50 inits.
        let inits = cfg.cipher_inits() - before;
        assert!(inits <= 3, "inits = {inits}");
        // And the data still round-trips.
        let mut s = cfg.open_sequential(&env, "w", FileKind::Wal).unwrap();
        let mut buf = vec![0u8; 2000];
        let mut total = 0;
        loop {
            let n = s.read(&mut buf[total..]).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 1000);
        assert!(buf[..1000].iter().all(|&b| b == 1));
    }

    #[test]
    fn buffered_wal_loses_unflushed_tail_on_process_crash() {
        let (cfg, _) = config();
        let cfg = cfg.with_wal_buffer(1 << 20); // large: nothing auto-drains
        let env = MemEnv::new();
        let (mut f, _) = cfg.new_writable(&env, "w", FileKind::Wal).unwrap();
        f.append(b"never flushed").unwrap();
        drop(f); // process crash: the application buffer is simply lost
        let raw = env.raw_content("w").unwrap();
        // Only the header could have reached storage.
        assert!(raw.len() <= FILE_HEADER_LEN);
    }

    #[test]
    fn multithreaded_chunks_match_single_thread() {
        let env = MemEnv::new();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        // Write with 4 threads / 4 KiB chunks…
        let (cfg_mt, _) = config();
        let cfg_mt = cfg_mt.with_chunks(4096, 4);
        {
            let (mut f, _) = cfg_mt.new_writable(&env, "mt", FileKind::Sst).unwrap();
            f.append(&payload).unwrap();
            f.sync().unwrap();
        }
        let r = cfg_mt.open_random(&env, "mt", FileKind::Sst).unwrap();
        let round = r.read_at(0, payload.len()).unwrap();
        assert_eq!(&round[..], &payload[..]);
        // Chunked inits: ~ len/chunk.
        assert!(cfg_mt.cipher_inits() >= (payload.len() / 4096) as u64);
    }

    #[test]
    fn deleted_file_revokes_dek() {
        let (cfg, kds) = config();
        let env = MemEnv::new();
        let (mut f, dek_id) = cfg.new_writable(&env, "f", FileKind::Sst).unwrap();
        f.append(b"data").unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(kds.has_dek(dek_id));
        cfg.note_file_deleted(&env, "f", FileKind::Sst).unwrap();
        env.remove_file("f").unwrap();
        assert!(!kds.has_dek(dek_id), "DEK must die with its file");
    }
}
