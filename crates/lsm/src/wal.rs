//! Write-ahead-log record format (the LevelDB/RocksDB block log format).
//!
//! The log is a sequence of 32 KiB blocks; each record carries a masked
//! CRC32C, a length, and a fragment type (full/first/middle/last) so records
//! may span blocks. A torn tail — the normal aftermath of a crash — is
//! detected by checksum/length validation and treated as end-of-log, while
//! corruption in the middle of the file is surfaced to the caller.
//!
//! Encryption is **not** this module's concern: in SHIELD mode the
//! [`crate::encryption`] layer wraps the underlying file, so the log writer
//! produces plaintext records that are encrypted (and, with the WAL buffer,
//! batched) just before persistence — exactly the paper's "encryption right
//! before persistence" placement for WAL writes (§5.2).

use std::sync::Arc;

use shield_core::EventDispatcher;
use shield_crypto::{crc32c, crc32c_masked, crc32c_unmask};
use shield_env::{SequentialFile, WritableFile};

use crate::error::{Error, Result};
use crate::integrity::{record_tag, IntegrityCtx, BLOCK_TAG_LEN, CONTEXT_LEN};
use crate::statistics::Statistics;

/// Log block size (32 KiB, as in RocksDB).
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Record header: crc (4) + length (2) + type (1).
pub const HEADER_SIZE: usize = 7;
/// Record header in authenticated logs: the legacy header plus a
/// truncated HMAC tag.
pub const HMAC_HEADER_SIZE: usize = HEADER_SIZE + BLOCK_TAG_LEN;
/// Magic opening an authenticated log's preamble ("SHLDLOG2").
pub const HMAC_LOG_MAGIC: [u8; 8] = *b"SHLDLOG2";
/// Authenticated-log preamble: magic (8) + per-file context (16) +
/// reserved zeros (8). Counted *within* block 0, so block framing on
/// both sides stays 32 KiB-aligned.
pub const LOG_PREAMBLE_LEN: usize = 32;

const FULL: u8 = 1;
const FIRST: u8 = 2;
const MIDDLE: u8 = 3;
const LAST: u8 = 4;

/// Write-side integrity state: the key, the file's minted context, and
/// the monotonic fragment counter every tag binds (so replayed, spliced,
/// or reordered records verify against the wrong position and fail).
struct WriterIntegrity {
    key: [u8; 32],
    context: [u8; CONTEXT_LEN],
    counter: u64,
}

/// Appends length-delimited, checksummed records to a writable file.
pub struct LogWriter {
    dest: Box<dyn WritableFile>,
    block_offset: usize,
    integrity: Option<WriterIntegrity>,
}

impl LogWriter {
    /// Creates a legacy (CRC-only) writer positioned at the start of
    /// `dest`.
    #[must_use]
    pub fn new(dest: Box<dyn WritableFile>) -> Self {
        LogWriter { dest, block_offset: 0, integrity: None }
    }

    /// Creates a writer at the start of `dest`; with `Some(mac_key)` the
    /// log is authenticated: a preamble with a fresh random context opens
    /// the file and every record header carries an HMAC tag.
    pub fn with_integrity(
        dest: Box<dyn WritableFile>,
        mac_key: Option<[u8; 32]>,
    ) -> Result<Self> {
        let Some(key) = mac_key else { return Ok(Self::new(dest)) };
        let mut context = [0u8; CONTEXT_LEN];
        shield_crypto::secure_random(&mut context);
        let mut writer = LogWriter {
            dest,
            block_offset: LOG_PREAMBLE_LEN,
            integrity: Some(WriterIntegrity { key, context, counter: 0 }),
        };
        let mut preamble = [0u8; LOG_PREAMBLE_LEN];
        preamble[..8].copy_from_slice(&HMAC_LOG_MAGIC);
        preamble[8..8 + CONTEXT_LEN].copy_from_slice(&context);
        writer.dest.append(&preamble)?;
        Ok(writer)
    }

    /// True if this writer produces an authenticated log.
    #[must_use]
    pub fn is_hmac(&self) -> bool {
        self.integrity.is_some()
    }

    fn header_size(&self) -> usize {
        if self.integrity.is_some() { HMAC_HEADER_SIZE } else { HEADER_SIZE }
    }

    /// Appends one record (atomically recoverable as a unit).
    pub fn add_record(&mut self, payload: &[u8]) -> Result<()> {
        // PerfContext wal_append covers fragmenting + buffering (and, in
        // SHIELD mode, the encryption wrapper's work inside `append`).
        let t = shield_core::perf::timer();
        let mut span = shield_core::trace::span("wal_append");
        span.attr("bytes", payload.len() as u64);
        let result = self.add_record_inner(payload);
        drop(span);
        shield_core::perf::add_elapsed(shield_core::PerfMetric::WalAppend, t);
        result
    }

    fn add_record_inner(&mut self, payload: &[u8]) -> Result<()> {
        let header_size = self.header_size();
        let mut left = payload;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < header_size {
                // Pad the block tail with zeros and start a new block.
                if leftover > 0 {
                    self.dest.append(&[0u8; HMAC_HEADER_SIZE - 1][..leftover])?;
                }
                self.block_offset = 0;
            }
            let available = BLOCK_SIZE - self.block_offset - header_size;
            let fragment_len = left.len().min(available);
            let end = fragment_len == left.len();
            let record_type = match (begin, end) {
                (true, true) => FULL,
                (true, false) => FIRST,
                (false, true) => LAST,
                (false, false) => MIDDLE,
            };
            self.emit(record_type, &left[..fragment_len])?;
            left = &left[fragment_len..];
            begin = false;
            if end {
                break;
            }
        }
        Ok(())
    }

    fn emit(&mut self, record_type: u8, fragment: &[u8]) -> Result<()> {
        debug_assert!(fragment.len() <= 0xffff);
        let mut header = [0u8; HEADER_SIZE];
        let crc = crc32c_masked(crc32c(&{
            let mut buf = Vec::with_capacity(1 + fragment.len());
            buf.push(record_type);
            buf.extend_from_slice(fragment);
            buf
        }));
        header[..4].copy_from_slice(&crc.to_le_bytes());
        header[4..6].copy_from_slice(&(fragment.len() as u16).to_le_bytes());
        header[6] = record_type;
        self.dest.append(&header)?;
        if let Some(integrity) = &mut self.integrity {
            let tag = record_tag(
                &integrity.key,
                &integrity.context,
                integrity.counter,
                record_type,
                fragment,
            );
            integrity.counter += 1;
            self.dest.append(&tag)?;
        }
        self.dest.append(fragment)?;
        self.block_offset += self.header_size() + fragment.len();
        Ok(())
    }

    /// Flushes buffered bytes towards the OS.
    pub fn flush(&mut self) -> Result<()> {
        let t = shield_core::perf::timer();
        let result = self.dest.flush();
        shield_core::perf::add_elapsed(shield_core::PerfMetric::WalAppend, t);
        result?;
        Ok(())
    }

    /// Makes the log durable.
    pub fn sync(&mut self) -> Result<()> {
        let t = shield_core::perf::timer();
        let span = shield_core::trace::span("wal_sync");
        let result = self.dest.sync();
        drop(span);
        shield_core::perf::add_elapsed(shield_core::PerfMetric::WalSync, t);
        result?;
        Ok(())
    }

    /// Logical bytes written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.dest.len()
    }

    /// True if no records have been written (an authenticated log's
    /// preamble alone does not count).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let floor = if self.integrity.is_some() { LOG_PREAMBLE_LEN as u64 } else { 0 };
        self.len() <= floor
    }
}

/// Log format, detected from the first block's bytes.
enum ReaderMode {
    /// Nothing read yet.
    Unknown,
    /// Classic CRC-only log.
    Legacy,
    /// Authenticated log: preamble seen, every fragment's tag verified
    /// against the monotonic counter.
    Hmac { ctx: IntegrityCtx, counter: u64 },
}

/// Reads records written by [`LogWriter`].
pub struct LogReader {
    src: Box<dyn SequentialFile>,
    block: Vec<u8>,
    block_len: usize,
    pos: usize,
    eof: bool,
    /// True once a mid-file corruption (not a torn tail) was seen.
    corruption: Option<String>,
    /// MAC key for authenticated logs (engine key or DEK subkey).
    key: Option<[u8; 32]>,
    mode: ReaderMode,
    /// Observability identity/sinks for violation reporting.
    file_number: u64,
    stats: Option<Arc<Statistics>>,
    events: Option<Arc<EventDispatcher>>,
}

impl LogReader {
    /// Creates a legacy reader over `src`; authenticated logs are
    /// rejected (no key to verify them with).
    #[must_use]
    pub fn new(src: Box<dyn SequentialFile>) -> Self {
        Self::with_integrity(src, None)
    }

    /// Creates a reader that auto-detects the log format: a `SHLDLOG2`
    /// preamble switches on per-record tag verification with `key`.
    #[must_use]
    pub fn with_integrity(src: Box<dyn SequentialFile>, key: Option<[u8; 32]>) -> Self {
        LogReader {
            src,
            block: vec![0u8; BLOCK_SIZE],
            block_len: 0,
            pos: 0,
            eof: false,
            corruption: None,
            key,
            mode: ReaderMode::Unknown,
            file_number: 0,
            stats: None,
            events: None,
        }
    }

    /// Attaches the file number and observability sinks used when a
    /// violation is reported. Must be called before the first read.
    #[must_use]
    pub fn with_sinks(
        mut self,
        file_number: u64,
        stats: Option<Arc<Statistics>>,
        events: Option<Arc<EventDispatcher>>,
    ) -> Self {
        self.file_number = file_number;
        self.stats = stats;
        self.events = events;
        self
    }

    /// True once the log was identified as authenticated.
    #[must_use]
    pub fn is_hmac(&self) -> bool {
        matches!(self.mode, ReaderMode::Hmac { .. })
    }

    /// True once the log was identified as a legacy (CRC-only) log.
    #[must_use]
    pub fn is_legacy(&self) -> bool {
        matches!(self.mode, ReaderMode::Legacy)
    }

    fn header_size(&self) -> usize {
        match self.mode {
            ReaderMode::Hmac { .. } => HMAC_HEADER_SIZE,
            _ => HEADER_SIZE,
        }
    }

    /// Reads the next record, or `Ok(None)` at end-of-log. A torn tail
    /// (truncated fragment, zeroed header) ends the log silently, matching
    /// crash-recovery semantics; checksum mismatches are corruption.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let Some((record_type, fragment)) = self.read_fragment()? else {
                // Torn mid-record tail: discard the partial prefix.
                return Ok(None);
            };
            match record_type {
                FULL => {
                    if assembled.is_some() {
                        return Err(self.fail("FULL record inside fragmented record"));
                    }
                    return Ok(Some(fragment));
                }
                FIRST => {
                    if assembled.is_some() {
                        return Err(self.fail("FIRST record inside fragmented record"));
                    }
                    assembled = Some(fragment);
                }
                MIDDLE => match assembled.as_mut() {
                    Some(buf) => buf.extend_from_slice(&fragment),
                    None => return Err(self.fail("MIDDLE record without FIRST")),
                },
                LAST => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&fragment);
                        return Ok(Some(buf));
                    }
                    None => return Err(self.fail("LAST record without FIRST")),
                },
                other => return Err(self.fail(&format!("unknown record type {other}"))),
            }
        }
    }

    fn fail(&mut self, msg: &str) -> Error {
        let m = format!("log corruption: {msg}");
        self.corruption = Some(m.clone());
        Error::Corruption(m)
    }

    /// Reads one fragment; `Ok(None)` means clean or torn end of log.
    fn read_fragment(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        loop {
            let header_size = self.header_size();
            if self.block_len - self.pos < header_size {
                if !self.refill()? {
                    return Ok(None);
                }
                continue;
            }
            let h = &self.block[self.pos..self.pos + HEADER_SIZE];
            let stored_crc = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
            let len = u16::from_le_bytes([h[4], h[5]]) as usize;
            let record_type = h[6];
            if record_type == 0 && len == 0 && stored_crc == 0 {
                // Zero padding (or pre-allocated tail): skip to next block.
                self.pos = self.block_len;
                continue;
            }
            if self.pos + header_size + len > self.block_len {
                // A fragment can never legitimately overrun its block. In
                // the final block this is a torn tail; earlier it means the
                // length field itself is corrupt.
                if !self.eof {
                    return Err(self.fail("bad record length"));
                }
                return Ok(None);
            }
            let fragment =
                self.block[self.pos + header_size..self.pos + header_size + len].to_vec();
            let mut check = Vec::with_capacity(1 + len);
            check.push(record_type);
            check.extend_from_slice(&fragment);
            let crc_ok = crc32c_unmask(stored_crc) == crc32c(&check);
            if !crc_ok && self.eof {
                // A bad checksum in the last block is a torn tail — the
                // normal aftermath of a crash, indistinguishable from (and
                // treated like) a truncated write.
                return Ok(None);
            }
            if let ReaderMode::Hmac { ctx, counter } = &mut self.mode {
                // Authenticated logs verify the tag before classifying a
                // CRC mismatch: mid-file damage under Hmac is reported as
                // a violation, and a valid-CRC fragment whose tag binds
                // the wrong counter/context (replay, reorder, splice) is
                // caught even in the final block.
                let tag_start = self.pos + HEADER_SIZE;
                let stored_tag = &self.block[tag_start..tag_start + BLOCK_TAG_LEN];
                ctx.verify_record(*counter, record_type, &fragment, stored_tag)?;
                *counter += 1;
            }
            if !crc_ok {
                return Err(self.fail("checksum mismatch"));
            }
            self.pos += header_size + len;
            return Ok(Some((record_type, fragment)));
        }
    }

    /// Loads the next block; returns false at end of file. The first
    /// block also decides the log format: a `SHLDLOG2` preamble selects
    /// authenticated mode (requiring a key), anything else is legacy.
    fn refill(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        // Move any unread tail (shorter than a header) to the front: it can
        // only be padding, so drop it — blocks are fixed-size.
        self.pos = 0;
        self.block_len = 0;
        let mut filled = 0usize;
        while filled < BLOCK_SIZE {
            let n = self.src.read(&mut self.block[filled..])?;
            if n == 0 {
                self.eof = true;
                break;
            }
            filled += n;
        }
        self.block_len = filled;
        if matches!(self.mode, ReaderMode::Unknown) {
            if filled >= HMAC_LOG_MAGIC.len() && self.block[..8] == HMAC_LOG_MAGIC {
                if filled < LOG_PREAMBLE_LEN {
                    // Torn preamble: a crash during log creation. No
                    // record can have been acknowledged — empty log.
                    return Ok(false);
                }
                let Some(key) = self.key else {
                    return Err(self.fail("authenticated log but no MAC key"));
                };
                let mut context = [0u8; CONTEXT_LEN];
                context.copy_from_slice(&self.block[8..8 + CONTEXT_LEN]);
                let mut ctx = IntegrityCtx::new(key, context, self.file_number);
                ctx.stats = self.stats.clone();
                ctx.events = self.events.clone();
                self.mode = ReaderMode::Hmac { ctx, counter: 0 };
                self.pos = LOG_PREAMBLE_LEN;
            } else {
                self.mode = ReaderMode::Legacy;
            }
        }
        Ok(filled >= HEADER_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_env::{Env, FileKind, MemEnv};

    fn write_records(env: &MemEnv, path: &str, records: &[Vec<u8>]) {
        let file = env.new_writable_file(path, FileKind::Wal).unwrap();
        let mut w = LogWriter::new(file);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
    }

    fn read_all(env: &MemEnv, path: &str) -> Vec<Vec<u8>> {
        let file = env.new_sequential_file(path, FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        let mut out = Vec::new();
        while let Some(rec) = r.read_record().unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn roundtrip_small_records() {
        let env = MemEnv::new();
        let records = vec![b"one".to_vec(), b"two".to_vec(), Vec::new(), b"four".to_vec()];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    #[test]
    fn roundtrip_spanning_records() {
        let env = MemEnv::new();
        // Records larger than one block must fragment and reassemble.
        let records = vec![
            vec![1u8; BLOCK_SIZE / 2],
            vec![2u8; BLOCK_SIZE * 2 + 17],
            vec![3u8; 10],
            vec![4u8; BLOCK_SIZE * 5],
        ];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    #[test]
    fn exact_block_boundary() {
        let env = MemEnv::new();
        // Payload that exactly fills a block's available space.
        let records = vec![vec![9u8; BLOCK_SIZE - HEADER_SIZE], b"next".to_vec()];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    #[test]
    fn torn_tail_is_silent_end() {
        let env = MemEnv::new();
        write_records(&env, "log", &[b"keep-me".to_vec(), b"will-be-torn".to_vec()]);
        let raw = env.raw_content("log").unwrap();
        // Chop mid-way through the second record.
        let cut = raw.len() - 5;
        {
            let mut f = env.new_writable_file("log", FileKind::Wal).unwrap();
            f.append(&raw[..cut]).unwrap();
            f.sync().unwrap();
        }
        assert_eq!(read_all(&env, "log"), vec![b"keep-me".to_vec()]);
    }

    #[test]
    fn mid_file_corruption_is_error() {
        let env = MemEnv::new();
        // Several blocks' worth of records, then corrupt one early
        // fragment (corruption in the *final* block is treated as a torn
        // tail, so the file must span multiple blocks).
        let records: Vec<Vec<u8>> = (0..4000).map(|i| format!("record-{i:05}").into_bytes()).collect();
        write_records(&env, "log", &records);
        let mut raw = env.raw_content("log").unwrap();
        raw[100] ^= 0xff; // flip payload byte of an early record
        {
            let mut f = env.new_writable_file("log", FileKind::Wal).unwrap();
            f.append(&raw).unwrap();
            f.sync().unwrap();
        }
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        let mut err = None;
        loop {
            match r.read_record() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(Error::Corruption(_))));
    }

    #[test]
    fn empty_log() {
        let env = MemEnv::new();
        write_records(&env, "log", &[]);
        assert!(read_all(&env, "log").is_empty());
    }

    #[test]
    fn block_padding_skipped() {
        let env = MemEnv::new();
        // A record that leaves < HEADER_SIZE bytes in the block forces
        // padding before the next record.
        let first_len = BLOCK_SIZE - HEADER_SIZE - HEADER_SIZE + 1; // leaves 6 bytes
        let records = vec![vec![7u8; first_len], b"after-padding".to_vec()];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    // ---- authenticated (HMAC) log format ----

    const KEY: [u8; 32] = [0x5a; 32];

    fn write_records_hmac(env: &MemEnv, path: &str, records: &[Vec<u8>]) {
        let file = env.new_writable_file(path, FileKind::Wal).unwrap();
        let mut w = LogWriter::with_integrity(file, Some(KEY)).unwrap();
        assert!(w.is_hmac());
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
    }

    fn read_all_hmac(env: &MemEnv, path: &str) -> Result<Vec<Vec<u8>>> {
        let file = env.new_sequential_file(path, FileKind::Wal).unwrap();
        let mut r = LogReader::with_integrity(file, Some(KEY));
        let mut out = Vec::new();
        while let Some(rec) = r.read_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    fn rewrite(env: &MemEnv, path: &str, raw: &[u8]) {
        env.set_raw_content(path, raw.to_vec()).unwrap();
    }

    #[test]
    fn hmac_roundtrip_and_format_detection() {
        let env = MemEnv::new();
        let records = vec![
            b"one".to_vec(),
            Vec::new(),
            vec![2u8; BLOCK_SIZE * 2 + 17],                  // spans blocks
            vec![9u8; BLOCK_SIZE - LOG_PREAMBLE_LEN],        // forces fragmentation
            b"tail".to_vec(),
        ];
        write_records_hmac(&env, "log", &records);
        let raw = env.raw_content("log").unwrap();
        assert_eq!(&raw[..8], &HMAC_LOG_MAGIC);
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::with_integrity(file, Some(KEY));
        let mut out = Vec::new();
        while let Some(rec) = r.read_record().unwrap() {
            out.push(rec);
        }
        assert_eq!(out, records);
        assert!(r.is_hmac());
        assert!(!r.is_legacy());
    }

    #[test]
    fn hmac_block_padding_and_exact_boundary() {
        let env = MemEnv::new();
        // First block holds the 32-byte preamble; fill its available
        // space exactly, then leave a sub-header tail to force padding.
        let exact = BLOCK_SIZE - LOG_PREAMBLE_LEN - HMAC_HEADER_SIZE;
        let pad_forcer = BLOCK_SIZE - HMAC_HEADER_SIZE - HMAC_HEADER_SIZE + 1;
        let records = vec![vec![1u8; exact], vec![2u8; pad_forcer], b"after".to_vec()];
        write_records_hmac(&env, "log", &records);
        assert_eq!(read_all_hmac(&env, "log").unwrap(), records);
    }

    #[test]
    fn hmac_torn_tail_is_still_silent_end() {
        let env = MemEnv::new();
        write_records_hmac(&env, "log", &[b"keep-me".to_vec(), b"will-be-torn".to_vec()]);
        let raw = env.raw_content("log").unwrap();
        rewrite(&env, "log", &raw[..raw.len() - 5]);
        assert_eq!(read_all_hmac(&env, "log").unwrap(), vec![b"keep-me".to_vec()]);
    }

    #[test]
    fn hmac_torn_preamble_is_empty_log() {
        let env = MemEnv::new();
        write_records_hmac(&env, "log", &[b"rec".to_vec()]);
        let raw = env.raw_content("log").unwrap();
        rewrite(&env, "log", &raw[..10]); // magic present, context torn
        assert!(read_all_hmac(&env, "log").unwrap().is_empty());
    }

    #[test]
    fn hmac_log_without_key_is_rejected() {
        let env = MemEnv::new();
        write_records_hmac(&env, "log", &[b"rec".to_vec()]);
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        assert!(matches!(r.read_record(), Err(Error::Corruption(_))));
    }

    #[test]
    fn hmac_mid_file_flip_is_integrity_violation() {
        let env = MemEnv::new();
        let records: Vec<Vec<u8>> =
            (0..4000).map(|i| format!("record-{i:05}").into_bytes()).collect();
        write_records_hmac(&env, "log", &records);
        let mut raw = env.raw_content("log").unwrap();
        raw[100] ^= 0xff; // payload byte of an early record
        rewrite(&env, "log", &raw);
        let err = read_all_hmac(&env, "log").unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }

    #[test]
    fn hmac_record_swap_is_integrity_violation() {
        let env = MemEnv::new();
        // Two same-length FULL records: swapping their bytes keeps every
        // CRC valid, but each tag binds the fragment counter.
        write_records_hmac(&env, "log", &[b"aaaa".to_vec(), b"bbbb".to_vec()]);
        let mut raw = env.raw_content("log").unwrap();
        let rec_len = HMAC_HEADER_SIZE + 4;
        let a = LOG_PREAMBLE_LEN;
        let b = a + rec_len;
        let (first, second) = raw.split_at_mut(b);
        first[a..b].swap_with_slice(&mut second[..rec_len]);
        rewrite(&env, "log", &raw);
        let err = read_all_hmac(&env, "log").unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }

    #[test]
    fn hmac_replayed_record_is_integrity_violation() {
        let env = MemEnv::new();
        // Duplicate the first record right after itself: a replay with a
        // perfectly valid CRC, detected because the tag binds counter 0.
        write_records_hmac(&env, "log", &[b"pay-bob-$5".to_vec()]);
        let mut raw = env.raw_content("log").unwrap();
        let rec = raw[LOG_PREAMBLE_LEN..].to_vec();
        raw.extend_from_slice(&rec);
        rewrite(&env, "log", &raw);
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::with_integrity(file, Some(KEY));
        assert_eq!(r.read_record().unwrap().unwrap(), b"pay-bob-$5".to_vec());
        let err = r.read_record().unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }

    #[test]
    fn hmac_cross_log_splice_is_integrity_violation() {
        let env = MemEnv::new();
        // Same key, same payload, two logs: each log's random context
        // makes a record from one unverifiable in the other.
        write_records_hmac(&env, "a", &[b"same-payload".to_vec()]);
        write_records_hmac(&env, "b", &[b"same-payload".to_vec()]);
        let donor = env.raw_content("b").unwrap();
        let mut raw = env.raw_content("a").unwrap();
        raw[LOG_PREAMBLE_LEN..].copy_from_slice(&donor[LOG_PREAMBLE_LEN..]);
        rewrite(&env, "a", &raw);
        let err = read_all_hmac(&env, "a").unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }

    #[test]
    fn legacy_log_reads_fine_under_integrity_reader() {
        let env = MemEnv::new();
        let records = vec![b"old".to_vec(), b"format".to_vec()];
        write_records(&env, "log", &records);
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::with_integrity(file, Some(KEY));
        let mut out = Vec::new();
        while let Some(rec) = r.read_record().unwrap() {
            out.push(rec);
        }
        assert_eq!(out, records);
        assert!(r.is_legacy());
        assert!(!r.is_hmac());
    }

    #[test]
    fn hmac_empty_writer_reports_empty() {
        let env = MemEnv::new();
        let file = env.new_writable_file("log", FileKind::Wal).unwrap();
        let mut w = LogWriter::with_integrity(file, Some(KEY)).unwrap();
        assert!(w.is_empty());
        w.add_record(b"x").unwrap();
        assert!(!w.is_empty());
        w.sync().unwrap();
        assert_eq!(read_all_hmac(&env, "log").unwrap(), vec![b"x".to_vec()]);
    }
}
