//! Write-ahead-log record format (the LevelDB/RocksDB block log format).
//!
//! The log is a sequence of 32 KiB blocks; each record carries a masked
//! CRC32C, a length, and a fragment type (full/first/middle/last) so records
//! may span blocks. A torn tail — the normal aftermath of a crash — is
//! detected by checksum/length validation and treated as end-of-log, while
//! corruption in the middle of the file is surfaced to the caller.
//!
//! Encryption is **not** this module's concern: in SHIELD mode the
//! [`crate::encryption`] layer wraps the underlying file, so the log writer
//! produces plaintext records that are encrypted (and, with the WAL buffer,
//! batched) just before persistence — exactly the paper's "encryption right
//! before persistence" placement for WAL writes (§5.2).

use shield_crypto::{crc32c, crc32c_masked, crc32c_unmask};
use shield_env::{SequentialFile, WritableFile};

use crate::error::{Error, Result};

/// Log block size (32 KiB, as in RocksDB).
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Record header: crc (4) + length (2) + type (1).
pub const HEADER_SIZE: usize = 7;

const FULL: u8 = 1;
const FIRST: u8 = 2;
const MIDDLE: u8 = 3;
const LAST: u8 = 4;

/// Appends length-delimited, checksummed records to a writable file.
pub struct LogWriter {
    dest: Box<dyn WritableFile>,
    block_offset: usize,
}

impl LogWriter {
    /// Creates a writer positioned at the start of `dest`.
    #[must_use]
    pub fn new(dest: Box<dyn WritableFile>) -> Self {
        LogWriter { dest, block_offset: 0 }
    }

    /// Appends one record (atomically recoverable as a unit).
    pub fn add_record(&mut self, payload: &[u8]) -> Result<()> {
        // PerfContext wal_append covers fragmenting + buffering (and, in
        // SHIELD mode, the encryption wrapper's work inside `append`).
        let t = shield_core::perf::timer();
        let result = self.add_record_inner(payload);
        shield_core::perf::add_elapsed(shield_core::PerfMetric::WalAppend, t);
        result
    }

    fn add_record_inner(&mut self, payload: &[u8]) -> Result<()> {
        let mut left = payload;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the block tail with zeros and start a new block.
                if leftover > 0 {
                    self.dest.append(&[0u8; HEADER_SIZE - 1][..leftover])?;
                }
                self.block_offset = 0;
            }
            let available = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(available);
            let end = fragment_len == left.len();
            let record_type = match (begin, end) {
                (true, true) => FULL,
                (true, false) => FIRST,
                (false, true) => LAST,
                (false, false) => MIDDLE,
            };
            self.emit(record_type, &left[..fragment_len])?;
            left = &left[fragment_len..];
            begin = false;
            if end {
                break;
            }
        }
        Ok(())
    }

    fn emit(&mut self, record_type: u8, fragment: &[u8]) -> Result<()> {
        debug_assert!(fragment.len() <= 0xffff);
        let mut header = [0u8; HEADER_SIZE];
        let crc = crc32c_masked(crc32c(&{
            let mut buf = Vec::with_capacity(1 + fragment.len());
            buf.push(record_type);
            buf.extend_from_slice(fragment);
            buf
        }));
        header[..4].copy_from_slice(&crc.to_le_bytes());
        header[4..6].copy_from_slice(&(fragment.len() as u16).to_le_bytes());
        header[6] = record_type;
        self.dest.append(&header)?;
        self.dest.append(fragment)?;
        self.block_offset += HEADER_SIZE + fragment.len();
        Ok(())
    }

    /// Flushes buffered bytes towards the OS.
    pub fn flush(&mut self) -> Result<()> {
        let t = shield_core::perf::timer();
        let result = self.dest.flush();
        shield_core::perf::add_elapsed(shield_core::PerfMetric::WalAppend, t);
        result?;
        Ok(())
    }

    /// Makes the log durable.
    pub fn sync(&mut self) -> Result<()> {
        let t = shield_core::perf::timer();
        let result = self.dest.sync();
        shield_core::perf::add_elapsed(shield_core::PerfMetric::WalSync, t);
        result?;
        Ok(())
    }

    /// Logical bytes written so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.dest.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reads records written by [`LogWriter`].
pub struct LogReader {
    src: Box<dyn SequentialFile>,
    block: Vec<u8>,
    block_len: usize,
    pos: usize,
    eof: bool,
    /// True once a mid-file corruption (not a torn tail) was seen.
    corruption: Option<String>,
}

impl LogReader {
    /// Creates a reader over `src`.
    #[must_use]
    pub fn new(src: Box<dyn SequentialFile>) -> Self {
        LogReader {
            src,
            block: vec![0u8; BLOCK_SIZE],
            block_len: 0,
            pos: 0,
            eof: false,
            corruption: None,
        }
    }

    /// Reads the next record, or `Ok(None)` at end-of-log. A torn tail
    /// (truncated fragment, zeroed header) ends the log silently, matching
    /// crash-recovery semantics; checksum mismatches are corruption.
    pub fn read_record(&mut self) -> Result<Option<Vec<u8>>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            let Some((record_type, fragment)) = self.read_fragment()? else {
                // Torn mid-record tail: discard the partial prefix.
                return Ok(None);
            };
            match record_type {
                FULL => {
                    if assembled.is_some() {
                        return Err(self.fail("FULL record inside fragmented record"));
                    }
                    return Ok(Some(fragment));
                }
                FIRST => {
                    if assembled.is_some() {
                        return Err(self.fail("FIRST record inside fragmented record"));
                    }
                    assembled = Some(fragment);
                }
                MIDDLE => match assembled.as_mut() {
                    Some(buf) => buf.extend_from_slice(&fragment),
                    None => return Err(self.fail("MIDDLE record without FIRST")),
                },
                LAST => match assembled.take() {
                    Some(mut buf) => {
                        buf.extend_from_slice(&fragment);
                        return Ok(Some(buf));
                    }
                    None => return Err(self.fail("LAST record without FIRST")),
                },
                other => return Err(self.fail(&format!("unknown record type {other}"))),
            }
        }
    }

    fn fail(&mut self, msg: &str) -> Error {
        let m = format!("log corruption: {msg}");
        self.corruption = Some(m.clone());
        Error::Corruption(m)
    }

    /// Reads one fragment; `Ok(None)` means clean or torn end of log.
    fn read_fragment(&mut self) -> Result<Option<(u8, Vec<u8>)>> {
        loop {
            if self.block_len - self.pos < HEADER_SIZE {
                if !self.refill()? {
                    return Ok(None);
                }
                continue;
            }
            let h = &self.block[self.pos..self.pos + HEADER_SIZE];
            let stored_crc = u32::from_le_bytes([h[0], h[1], h[2], h[3]]);
            let len = u16::from_le_bytes([h[4], h[5]]) as usize;
            let record_type = h[6];
            if record_type == 0 && len == 0 && stored_crc == 0 {
                // Zero padding (or pre-allocated tail): skip to next block.
                self.pos = self.block_len;
                continue;
            }
            if self.pos + HEADER_SIZE + len > self.block_len {
                // A fragment can never legitimately overrun its block. In
                // the final block this is a torn tail; earlier it means the
                // length field itself is corrupt.
                if !self.eof {
                    return Err(self.fail("bad record length"));
                }
                return Ok(None);
            }
            let fragment =
                self.block[self.pos + HEADER_SIZE..self.pos + HEADER_SIZE + len].to_vec();
            let mut check = Vec::with_capacity(1 + len);
            check.push(record_type);
            check.extend_from_slice(&fragment);
            if crc32c_unmask(stored_crc) != crc32c(&check) {
                // A bad checksum in the last block is a torn tail; anywhere
                // else it is corruption.
                if self.eof {
                    return Ok(None);
                }
                return Err(self.fail("checksum mismatch"));
            }
            self.pos += HEADER_SIZE + len;
            return Ok(Some((record_type, fragment)));
        }
    }

    /// Loads the next block; returns false at end of file.
    fn refill(&mut self) -> Result<bool> {
        if self.eof {
            return Ok(false);
        }
        // Move any unread tail (shorter than a header) to the front: it can
        // only be padding, so drop it — blocks are fixed-size.
        self.pos = 0;
        self.block_len = 0;
        let mut filled = 0usize;
        while filled < BLOCK_SIZE {
            let n = self.src.read(&mut self.block[filled..])?;
            if n == 0 {
                self.eof = true;
                break;
            }
            filled += n;
        }
        self.block_len = filled;
        Ok(filled >= HEADER_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_env::{Env, FileKind, MemEnv};

    fn write_records(env: &MemEnv, path: &str, records: &[Vec<u8>]) {
        let file = env.new_writable_file(path, FileKind::Wal).unwrap();
        let mut w = LogWriter::new(file);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
    }

    fn read_all(env: &MemEnv, path: &str) -> Vec<Vec<u8>> {
        let file = env.new_sequential_file(path, FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        let mut out = Vec::new();
        while let Some(rec) = r.read_record().unwrap() {
            out.push(rec);
        }
        out
    }

    #[test]
    fn roundtrip_small_records() {
        let env = MemEnv::new();
        let records = vec![b"one".to_vec(), b"two".to_vec(), Vec::new(), b"four".to_vec()];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    #[test]
    fn roundtrip_spanning_records() {
        let env = MemEnv::new();
        // Records larger than one block must fragment and reassemble.
        let records = vec![
            vec![1u8; BLOCK_SIZE / 2],
            vec![2u8; BLOCK_SIZE * 2 + 17],
            vec![3u8; 10],
            vec![4u8; BLOCK_SIZE * 5],
        ];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    #[test]
    fn exact_block_boundary() {
        let env = MemEnv::new();
        // Payload that exactly fills a block's available space.
        let records = vec![vec![9u8; BLOCK_SIZE - HEADER_SIZE], b"next".to_vec()];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }

    #[test]
    fn torn_tail_is_silent_end() {
        let env = MemEnv::new();
        write_records(&env, "log", &[b"keep-me".to_vec(), b"will-be-torn".to_vec()]);
        let raw = env.raw_content("log").unwrap();
        // Chop mid-way through the second record.
        let cut = raw.len() - 5;
        {
            let mut f = env.new_writable_file("log", FileKind::Wal).unwrap();
            f.append(&raw[..cut]).unwrap();
            f.sync().unwrap();
        }
        assert_eq!(read_all(&env, "log"), vec![b"keep-me".to_vec()]);
    }

    #[test]
    fn mid_file_corruption_is_error() {
        let env = MemEnv::new();
        // Several blocks' worth of records, then corrupt one early
        // fragment (corruption in the *final* block is treated as a torn
        // tail, so the file must span multiple blocks).
        let records: Vec<Vec<u8>> = (0..4000).map(|i| format!("record-{i:05}").into_bytes()).collect();
        write_records(&env, "log", &records);
        let mut raw = env.raw_content("log").unwrap();
        raw[100] ^= 0xff; // flip payload byte of an early record
        {
            let mut f = env.new_writable_file("log", FileKind::Wal).unwrap();
            f.append(&raw).unwrap();
            f.sync().unwrap();
        }
        let file = env.new_sequential_file("log", FileKind::Wal).unwrap();
        let mut r = LogReader::new(file);
        let mut err = None;
        loop {
            match r.read_record() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(Error::Corruption(_))));
    }

    #[test]
    fn empty_log() {
        let env = MemEnv::new();
        write_records(&env, "log", &[]);
        assert!(read_all(&env, "log").is_empty());
    }

    #[test]
    fn block_padding_skipped() {
        let env = MemEnv::new();
        // A record that leaves < HEADER_SIZE bytes in the block forces
        // padding before the next record.
        let first_len = BLOCK_SIZE - HEADER_SIZE - HEADER_SIZE + 1; // leaves 6 bytes
        let records = vec![vec![7u8; first_len], b"after-padding".to_vec()];
        write_records(&env, "log", &records);
        assert_eq!(read_all(&env, "log"), records);
    }
}
