//! Core key/value types: sequence numbers, value types, and the internal
//! key encoding shared by the memtable, SST files, and iterators.
//!
//! An *internal key* is `user_key ++ fixed64le((seq << 8) | value_type)`,
//! ordered by user key ascending then sequence number descending, so the
//! newest version of a key sorts first — the LevelDB/RocksDB convention.

use std::cmp::Ordering;

/// Monotonic sequence number assigned to every write.
pub type SequenceNumber = u64;

/// Largest representable sequence number (56 bits, as in RocksDB).
pub const MAX_SEQUENCE: SequenceNumber = (1 << 56) - 1;

/// The kind of a versioned entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueType {
    /// A deletion tombstone.
    Deletion = 0,
    /// A normal value.
    Value = 1,
}

impl ValueType {
    /// Decodes a type tag.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// Packs a sequence number and type into the 8-byte internal-key trailer.
#[must_use]
pub fn pack_seq_type(seq: SequenceNumber, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE);
    (seq << 8) | t as u64
}

/// Unpacks an internal-key trailer.
#[must_use]
pub fn unpack_seq_type(packed: u64) -> (SequenceNumber, Option<ValueType>) {
    (packed >> 8, ValueType::from_u8((packed & 0xff) as u8))
}

/// Builds an internal key from its parts.
#[must_use]
pub fn make_internal_key(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Vec<u8> {
    let mut out = Vec::with_capacity(user_key.len() + 8);
    out.extend_from_slice(user_key);
    out.extend_from_slice(&pack_seq_type(seq, t).to_le_bytes());
    out
}

/// The user-key prefix of an internal key.
///
/// # Panics
/// Panics (debug) if `ikey` is shorter than the 8-byte trailer.
#[must_use]
pub fn extract_user_key(ikey: &[u8]) -> &[u8] {
    debug_assert!(ikey.len() >= 8, "internal key too short");
    &ikey[..ikey.len() - 8]
}

/// The `(sequence, type)` trailer of an internal key.
#[must_use]
pub fn extract_seq_type(ikey: &[u8]) -> (SequenceNumber, Option<ValueType>) {
    debug_assert!(ikey.len() >= 8);
    let trailer = u64::from_le_bytes(ikey[ikey.len() - 8..].try_into().unwrap());
    unpack_seq_type(trailer)
}

/// Total order over internal keys: user key ascending, then sequence
/// descending (newer first), then type descending.
#[must_use]
pub fn internal_key_cmp(a: &[u8], b: &[u8]) -> Ordering {
    let ua = extract_user_key(a);
    let ub = extract_user_key(b);
    match ua.cmp(ub) {
        Ordering::Equal => {
            let ta = u64::from_le_bytes(a[a.len() - 8..].try_into().unwrap());
            let tb = u64::from_le_bytes(b[b.len() - 8..].try_into().unwrap());
            // Higher (seq,type) sorts first.
            tb.cmp(&ta)
        }
        other => other,
    }
}

/// A lookup key: the internal key that sorts *before or at* every entry
/// for `user_key` visible at `seq` (i.e. with sequence ≤ `seq`).
#[must_use]
pub fn make_lookup_key(user_key: &[u8], seq: SequenceNumber) -> Vec<u8> {
    // Type byte 0xff sorts first among equal sequences under the
    // descending trailer order, but Value=1 > Deletion=0 suffices; use
    // the maximal tag so all entries at `seq` are visible.
    let mut out = Vec::with_capacity(user_key.len() + 8);
    out.extend_from_slice(user_key);
    out.extend_from_slice(&(((seq) << 8) | 0xff).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack() {
        let packed = pack_seq_type(12345, ValueType::Value);
        let (seq, t) = unpack_seq_type(packed);
        assert_eq!(seq, 12345);
        assert_eq!(t, Some(ValueType::Value));
    }

    #[test]
    fn internal_key_parts() {
        let ik = make_internal_key(b"user", 7, ValueType::Deletion);
        assert_eq!(extract_user_key(&ik), b"user");
        let (seq, t) = extract_seq_type(&ik);
        assert_eq!(seq, 7);
        assert_eq!(t, Some(ValueType::Deletion));
    }

    #[test]
    fn ordering_user_key_then_seq_desc() {
        let a1 = make_internal_key(b"a", 10, ValueType::Value);
        let a2 = make_internal_key(b"a", 5, ValueType::Value);
        let b1 = make_internal_key(b"b", 1, ValueType::Value);
        // Same user key: newer (higher seq) sorts first.
        assert_eq!(internal_key_cmp(&a1, &a2), Ordering::Less);
        // Different user keys: lexicographic.
        assert_eq!(internal_key_cmp(&a2, &b1), Ordering::Less);
        assert_eq!(internal_key_cmp(&a1, &a1), Ordering::Equal);
    }

    #[test]
    fn deletion_sorts_after_value_at_same_seq() {
        let v = make_internal_key(b"k", 5, ValueType::Value);
        let d = make_internal_key(b"k", 5, ValueType::Deletion);
        // Value (tag 1) > Deletion (tag 0), so Value sorts first.
        assert_eq!(internal_key_cmp(&v, &d), Ordering::Less);
    }

    #[test]
    fn lookup_key_sorts_before_visible_entries() {
        let lookup = make_lookup_key(b"k", 10);
        let visible = make_internal_key(b"k", 10, ValueType::Value);
        let newer = make_internal_key(b"k", 11, ValueType::Value);
        // Lookup at seq 10 must sort <= entry at seq 10 ...
        assert_ne!(internal_key_cmp(&lookup, &visible), Ordering::Greater);
        // ... and > entry at seq 11 (which must be skipped).
        assert_eq!(internal_key_cmp(&lookup, &newer), Ordering::Greater);
    }

    #[test]
    fn value_type_tags() {
        assert_eq!(ValueType::from_u8(0), Some(ValueType::Deletion));
        assert_eq!(ValueType::from_u8(1), Some(ValueType::Value));
        assert_eq!(ValueType::from_u8(2), None);
    }
}
