//! The in-memory write buffer: an arena-backed concurrent skiplist, in the
//! LevelDB/RocksDB tradition.
//!
//! Writes are serialized by the database's group-commit leader, so inserts
//! take an internal mutex; readers traverse lock-free over atomic forward
//! pointers (acquire/release). Nodes and entry payloads live in an arena
//! owned by the skiplist and are freed wholesale when the memtable drops,
//! so no per-node reclamation is needed.
//!
//! Entries are stored as `varint32 ikey_len | internal_key | varint32
//! val_len | value`; deletion tombstones have `ValueType::Deletion` in the
//! internal-key trailer and an empty value.

use std::cmp::Ordering;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering as AtomicOrd};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::types::{
    extract_seq_type, extract_user_key, internal_key_cmp, make_internal_key, make_lookup_key,
    SequenceNumber, ValueType,
};
use crate::varint::{get_varint32, put_varint32};

const MAX_HEIGHT: usize = 12;
const BRANCHING: u32 = 4;

struct Node {
    /// Pointer into the arena blob for this entry.
    entry: *const u8,
    entry_len: u32,
    /// Offset of the internal key inside the entry blob.
    ikey_off: u8,
    ikey_len: u32,
    next: Vec<AtomicPtr<Node>>,
}

unsafe impl Send for Node {}
unsafe impl Sync for Node {}

impl Node {
    fn ikey(&self) -> &[u8] {
        unsafe {
            std::slice::from_raw_parts(
                self.entry.add(self.ikey_off as usize),
                self.ikey_len as usize,
            )
        }
    }

    fn entry_bytes(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.entry, self.entry_len as usize) }
    }
}

/// Result of a memtable point lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// The key has a live value at the read sequence.
    Found(Vec<u8>),
    /// The key is tombstoned at the read sequence.
    Deleted,
    /// The memtable holds no visible entry for this key.
    NotFound,
}

struct Inner {
    head: Box<Node>,
    max_height: AtomicUsize,
    arena_blobs: Mutex<Vec<Box<[u8]>>>,
    nodes: Mutex<Vec<*mut Node>>,
    insert_lock: Mutex<RandomState>,
    mem_usage: AtomicUsize,
    entries: AtomicUsize,
}

unsafe impl Send for Inner {}
unsafe impl Sync for Inner {}

struct RandomState {
    rng: u64,
}

impl Drop for Inner {
    fn drop(&mut self) {
        for &p in self.nodes.lock().iter() {
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

/// An immutable-once-full in-memory table of versioned entries.
pub struct MemTable {
    inner: Arc<Inner>,
    /// WAL file number whose records this memtable holds (for recovery
    /// bookkeeping; 0 if none).
    wal_number: u64,
}

impl MemTable {
    /// Creates an empty memtable associated with WAL `wal_number`.
    #[must_use]
    pub fn new(wal_number: u64) -> Self {
        let head = Box::new(Node {
            entry: std::ptr::null(),
            entry_len: 0,
            ikey_off: 0,
            ikey_len: 0,
            next: (0..MAX_HEIGHT).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
        });
        MemTable {
            inner: Arc::new(Inner {
                head,
                max_height: AtomicUsize::new(1),
                arena_blobs: Mutex::new(Vec::new()),
                nodes: Mutex::new(Vec::new()),
                insert_lock: Mutex::new(RandomState { rng: 0x9e37_79b9_7f4a_7c15 }),
                mem_usage: AtomicUsize::new(0),
                entries: AtomicUsize::new(0),
            }),
            wal_number,
        }
    }

    /// The WAL file number backing this memtable.
    #[must_use]
    pub fn wal_number(&self) -> u64 {
        self.wal_number
    }

    /// Inserts a versioned entry.
    pub fn add(&self, seq: SequenceNumber, t: ValueType, user_key: &[u8], value: &[u8]) {
        let ikey = make_internal_key(user_key, seq, t);
        // Entry blob: varint32 ikey_len | ikey | varint32 val_len | value.
        let mut blob = Vec::with_capacity(ikey.len() + value.len() + 10);
        put_varint32(&mut blob, ikey.len() as u32);
        let ikey_off = blob.len() as u8;
        blob.extend_from_slice(&ikey);
        put_varint32(&mut blob, value.len() as u32);
        blob.extend_from_slice(value);
        let blob: Box<[u8]> = blob.into_boxed_slice();
        let entry_ptr = blob.as_ptr();
        let entry_len = blob.len() as u32;

        let mut guard = self.inner.insert_lock.lock();

        let mut prev = [std::ptr::null::<Node>(); MAX_HEIGHT];
        let found = self.find_greater_or_equal(&ikey, Some(&mut prev));
        if !found.is_null()
            && internal_key_cmp(unsafe { &*found }.ikey(), &ikey) == Ordering::Equal
        {
            // An exact duplicate (user key, sequence, type) can only come
            // from replaying the same WAL record twice — whether a benign
            // re-replay or a hostile appended copy. Inserting it would
            // leave two equal internal keys in the table and violate the
            // strict ordering the flush path relies on; keep the first.
            return;
        }

        self.inner.arena_blobs.lock().push(blob);

        // Random height with 1/BRANCHING decay (xorshift; seeded per table).
        let mut height = 1usize;
        while height < MAX_HEIGHT {
            guard.rng ^= guard.rng << 13;
            guard.rng ^= guard.rng >> 7;
            guard.rng ^= guard.rng << 17;
            if guard.rng.is_multiple_of(u64::from(BRANCHING)) {
                height += 1;
            } else {
                break;
            }
        }

        let node = Box::into_raw(Box::new(Node {
            entry: entry_ptr,
            entry_len,
            ikey_off,
            ikey_len: ikey.len() as u32,
            next: (0..height).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
        }));
        self.inner.nodes.lock().push(node);

        if self.inner.max_height.load(AtomicOrd::Relaxed) < height {
            self.inner.max_height.store(height, AtomicOrd::Relaxed);
        }
        for (level, slot) in prev.iter().take(height).enumerate() {
            let prev_node: &Node = if slot.is_null() {
                &self.inner.head
            } else {
                unsafe { &**slot }
            };
            let succ = prev_node.next[level].load(AtomicOrd::Acquire);
            unsafe { (&(*node).next)[level].store(succ, AtomicOrd::Relaxed) };
            prev_node.next[level].store(node, AtomicOrd::Release);
        }
        self.inner
            .mem_usage
            .fetch_add(entry_len as usize + std::mem::size_of::<Node>() + height * 8, AtomicOrd::Relaxed);
        self.inner.entries.fetch_add(1, AtomicOrd::Relaxed);
        drop(guard);
    }

    /// Finds the first node with internal key >= `target`; optionally
    /// records the predecessor at every level into `prev`.
    fn find_greater_or_equal(
        &self,
        target: &[u8],
        mut prev: Option<&mut [*const Node; MAX_HEIGHT]>,
    ) -> *const Node {
        let mut level = self.inner.max_height.load(AtomicOrd::Relaxed) - 1;
        let mut node: &Node = &self.inner.head;
        loop {
            let next = node.next[level].load(AtomicOrd::Acquire);
            let advance = if next.is_null() {
                false
            } else {
                let next_ref = unsafe { &*next };
                internal_key_cmp(next_ref.ikey(), target) == Ordering::Less
            };
            if advance {
                node = unsafe { &*next };
            } else {
                if let Some(p) = prev.as_deref_mut() {
                    p[level] = if std::ptr::eq(node, &*self.inner.head) {
                        std::ptr::null()
                    } else {
                        node as *const Node
                    };
                }
                if level == 0 {
                    return next;
                }
                level -= 1;
            }
        }
    }

    /// Point lookup at read sequence `seq`.
    #[must_use]
    pub fn get(&self, user_key: &[u8], seq: SequenceNumber) -> LookupResult {
        let lookup = make_lookup_key(user_key, seq);
        let node = self.find_greater_or_equal(&lookup, None);
        if node.is_null() {
            return LookupResult::NotFound;
        }
        let node = unsafe { &*node };
        let ikey = node.ikey();
        if extract_user_key(ikey) != user_key {
            return LookupResult::NotFound;
        }
        let (_, t) = extract_seq_type(ikey);
        match t {
            Some(ValueType::Value) => {
                let entry = node.entry_bytes();
                let after_key = node.ikey_off as usize + node.ikey_len as usize;
                let (vlen, n) = get_varint32(&entry[after_key..]).expect("valid entry");
                let vstart = after_key + n;
                LookupResult::Found(entry[vstart..vstart + vlen as usize].to_vec())
            }
            Some(ValueType::Deletion) => LookupResult::Deleted,
            None => LookupResult::NotFound,
        }
    }

    /// Approximate bytes of memory consumed.
    #[must_use]
    pub fn approximate_memory_usage(&self) -> usize {
        self.inner.mem_usage.load(AtomicOrd::Relaxed)
    }

    /// Number of entries (including tombstones and shadowed versions).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.entries.load(AtomicOrd::Relaxed)
    }

    /// True if no entries have been inserted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An iterator positioned before the first entry.
    #[must_use]
    pub fn iter(&self) -> MemTableIterator {
        MemTableIterator { inner: self.inner.clone(), node: std::ptr::null() }
    }
}

/// Iterator over a memtable's entries in internal-key order.
///
/// Holds an `Arc` to the table internals, so it remains valid even if the
/// `MemTable` handle is dropped (e.g. during flush).
pub struct MemTableIterator {
    inner: Arc<Inner>,
    node: *const Node,
}

unsafe impl Send for MemTableIterator {}

impl MemTableIterator {
    /// True if positioned on an entry.
    #[must_use]
    pub fn valid(&self) -> bool {
        !self.node.is_null()
    }

    /// Positions on the first entry.
    pub fn seek_to_first(&mut self) {
        self.node = self.inner.head.next[0].load(AtomicOrd::Acquire);
    }

    /// Positions on the first entry with internal key >= `target`.
    pub fn seek(&mut self, target: &[u8]) {
        let mt = MemTable { inner: self.inner.clone(), wal_number: 0 };
        self.node = mt.find_greater_or_equal(target, None);
    }

    /// Advances to the next entry.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        let node = unsafe { &*self.node };
        self.node = node.next[0].load(AtomicOrd::Acquire);
    }

    /// The current internal key.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        unsafe { (*self.node).ikey() }
    }

    /// The current value (empty for tombstones).
    #[must_use]
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        let node = unsafe { &*self.node };
        let entry = node.entry_bytes();
        let after_key = node.ikey_off as usize + node.ikey_len as usize;
        let (vlen, n) = get_varint32(&entry[after_key..]).expect("valid entry");
        let vstart = after_key + n;
        &entry[vstart..vstart + vlen as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mt = MemTable::new(1);
        mt.add(1, ValueType::Value, b"alpha", b"one");
        mt.add(2, ValueType::Value, b"beta", b"two");
        assert_eq!(mt.get(b"alpha", 10), LookupResult::Found(b"one".to_vec()));
        assert_eq!(mt.get(b"beta", 10), LookupResult::Found(b"two".to_vec()));
        assert_eq!(mt.get(b"gamma", 10), LookupResult::NotFound);
        assert_eq!(mt.len(), 2);
    }

    #[test]
    fn duplicate_internal_key_is_idempotent() {
        // A replayed WAL record re-inserts the same (key, seq, type); the
        // table must keep exactly one entry so flush ordering stays strict.
        let mt = MemTable::new(1);
        mt.add(1, ValueType::Value, b"k", b"v");
        mt.add(1, ValueType::Value, b"k", b"v");
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.get(b"k", 10), LookupResult::Found(b"v".to_vec()));
        // A different sequence is a distinct version, not a duplicate.
        mt.add(2, ValueType::Value, b"k", b"v2");
        assert_eq!(mt.len(), 2);
    }

    #[test]
    fn versions_and_visibility() {
        let mt = MemTable::new(1);
        mt.add(1, ValueType::Value, b"k", b"v1");
        mt.add(5, ValueType::Value, b"k", b"v5");
        // Read at seq 3 sees v1; at 5+ sees v5; at 0 sees nothing.
        assert_eq!(mt.get(b"k", 3), LookupResult::Found(b"v1".to_vec()));
        assert_eq!(mt.get(b"k", 5), LookupResult::Found(b"v5".to_vec()));
        assert_eq!(mt.get(b"k", 100), LookupResult::Found(b"v5".to_vec()));
        assert_eq!(mt.get(b"k", 0), LookupResult::NotFound);
    }

    #[test]
    fn deletion_shadows() {
        let mt = MemTable::new(1);
        mt.add(1, ValueType::Value, b"k", b"v");
        mt.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(mt.get(b"k", 10), LookupResult::Deleted);
        assert_eq!(mt.get(b"k", 1), LookupResult::Found(b"v".to_vec()));
    }

    #[test]
    fn iterator_is_sorted() {
        let mt = MemTable::new(1);
        let keys = [b"d".as_ref(), b"a", b"c", b"b", b"e"];
        for (i, k) in keys.iter().enumerate() {
            mt.add(i as u64 + 1, ValueType::Value, k, b"v");
        }
        let mut it = mt.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            seen.push(extract_user_key(it.key()).to_vec());
            it.next();
        }
        assert_eq!(seen, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec()]);
    }

    #[test]
    fn iterator_seek() {
        let mt = MemTable::new(1);
        for k in [b"a".as_ref(), b"c", b"e"] {
            mt.add(1, ValueType::Value, k, b"v");
        }
        let mut it = mt.iter();
        it.seek(&make_lookup_key(b"b", u64::MAX >> 8));
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"c");
        it.seek(&make_lookup_key(b"z", u64::MAX >> 8));
        assert!(!it.valid());
    }

    #[test]
    fn same_key_versions_newest_first() {
        let mt = MemTable::new(1);
        mt.add(1, ValueType::Value, b"k", b"old");
        mt.add(9, ValueType::Value, b"k", b"new");
        let mut it = mt.iter();
        it.seek_to_first();
        assert_eq!(it.value(), b"new");
        it.next();
        assert_eq!(it.value(), b"old");
        it.next();
        assert!(!it.valid());
    }

    #[test]
    fn memory_usage_grows() {
        let mt = MemTable::new(1);
        let before = mt.approximate_memory_usage();
        mt.add(1, ValueType::Value, b"key", &vec![0u8; 1000]);
        assert!(mt.approximate_memory_usage() >= before + 1000);
    }

    #[test]
    fn concurrent_reads_during_writes() {
        let mt = Arc::new(MemTable::new(1));
        let writer = {
            let mt = mt.clone();
            std::thread::spawn(move || {
                for i in 0..2000u32 {
                    mt.add(u64::from(i) + 1, ValueType::Value, &i.to_be_bytes(), b"v");
                }
            })
        };
        // Readers should never crash or see torn data.
        for _ in 0..4 {
            let mut it = mt.iter();
            it.seek_to_first();
            let mut prev: Option<Vec<u8>> = None;
            while it.valid() {
                let k = it.key().to_vec();
                if let Some(p) = &prev {
                    assert_ne!(internal_key_cmp(p, &k), Ordering::Greater);
                }
                prev = Some(k);
                it.next();
            }
        }
        writer.join().unwrap();
        assert_eq!(mt.len(), 2000);
    }

    #[test]
    fn empty_value_is_found_not_deleted() {
        let mt = MemTable::new(1);
        mt.add(1, ValueType::Value, b"k", b"");
        assert_eq!(mt.get(b"k", 10), LookupResult::Found(Vec::new()));
    }
}
