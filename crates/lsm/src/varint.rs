//! LEB128-style varint encoding used throughout the on-disk formats
//! (block entries, block handles, version edits).

/// Appends a varint32 to `out`.
pub fn put_varint32(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Appends a varint64 to `out`.
pub fn put_varint64(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decodes a varint32 from the front of `data`, returning `(value, bytes
/// consumed)`, or `None` if `data` is truncated or the encoding overflows.
#[must_use]
pub fn get_varint32(data: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = get_varint64(data)?;
    if v > u64::from(u32::MAX) {
        return None;
    }
    Some((v as u32, n))
}

/// Decodes a varint64 from the front of `data`.
#[must_use]
pub fn get_varint64(data: &[u8]) -> Option<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some((result, i + 1));
        }
        shift += 7;
    }
    None
}

/// Appends a length-prefixed byte slice.
pub fn put_length_prefixed(out: &mut Vec<u8>, data: &[u8]) {
    put_varint32(out, data.len() as u32);
    out.extend_from_slice(data);
}

/// Decodes a length-prefixed byte slice from the front of `data`,
/// returning `(slice, total bytes consumed)`.
#[must_use]
pub fn get_length_prefixed(data: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint32(data)?;
    let len = len as usize;
    if data.len() < n + len {
        return None;
    }
    Some((&data[n..n + len], n + len))
}

/// Copies an exactly-`N`-byte slice into an array. The single audited home
/// for slice→array conversions whose length is fixed by construction
/// (`&data[..8]` and friends), so format code stays free of per-site
/// `try_into().unwrap()` calls.
#[inline]
#[must_use]
pub fn fixed<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(bytes);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint32_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX] {
            let mut buf = Vec::new();
            put_varint32(&mut buf, v);
            let (decoded, n) = get_varint32(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint64_roundtrip() {
        for v in [0u64, 1, 127, 128, 1 << 32, u64::MAX] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, n) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn truncated_fails() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        assert!(get_varint64(&buf[..buf.len() - 1]).is_none());
        assert!(get_varint64(&[]).is_none());
    }

    #[test]
    fn overlong_fails() {
        // 11 continuation bytes exceeds 64 bits.
        let buf = [0x80u8; 11];
        assert!(get_varint64(&buf).is_none());
    }

    #[test]
    fn varint32_rejects_overflow() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint32(&buf).is_none());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let (a, n) = get_length_prefixed(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, m) = get_length_prefixed(&buf[n..]).unwrap();
        assert_eq!(b, b"");
        assert_eq!(n + m, buf.len());
        assert!(get_length_prefixed(&buf[..3]).is_none());
    }
}
