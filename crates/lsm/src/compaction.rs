//! Compaction: picking work (leveled / universal / FIFO) and executing it.
//!
//! SHIELD-relevant behavior: every compaction output file gets a **fresh
//! DEK** from the KDS (via [`EncryptionConfig::new_writable`]), and the
//! input files' DEKs are revoked when the inputs are deleted — so routine
//! compaction *is* DEK rotation (§5.2), at zero additional I/O cost.
//! Output encryption happens in configurable-size chunks, optionally
//! multi-threaded (§5.2, Fig. 13), because the builder writes through an
//! [`crate::encryption::EncryptedWritableFile`].
//!
//! [`run_compaction`] is deliberately a free function over explicit inputs
//! so the disaggregated deployment can run it on a *different server* (the
//! offloaded-compaction case study, §5.6): all it needs is the shared
//! storage env, the file metadata (which carries DEK-IDs), and its own
//! DEK resolver.

use std::sync::Arc;

use shield_env::{Env, FileKind};

use crate::encryption::EncryptionConfig;
use crate::error::Result;
use crate::iter::{InternalIterator, MergingIterator};
use crate::sst::builder::{TableBuilder, TableBuilderOptions};
use crate::types::{extract_seq_type, extract_user_key, SequenceNumber, ValueType, MAX_SEQUENCE};
use crate::version::edit::{FileMeta, VersionEdit};
use crate::version::filenames::sst_file_name;
use crate::version::table_cache::TableCache;
use crate::version::version::{Version, NUM_LEVELS};

/// Compaction styles, mirroring RocksDB's three policies (§6.3, Fig. 15).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CompactionStyle {
    /// Size-tiered levels with fanout; frequent, smaller compactions.
    #[default]
    Leveled,
    /// Universal/tiered: sorted runs accumulate in L0 and are merged
    /// wholesale; fewer, larger I/Os.
    Universal,
    /// No merging: oldest files are simply dropped once the database
    /// exceeds a size budget.
    Fifo,
}

/// Knobs the pickers need (a projection of the DB options).
#[derive(Clone, Debug)]
pub struct CompactionParams {
    /// Which picker to use.
    pub style: CompactionStyle,
    /// L0 file count that triggers compaction into L1 (leveled).
    pub l0_compaction_trigger: usize,
    /// Target size of L1; deeper levels are `fanout`× larger each.
    pub base_level_bytes: u64,
    /// Size multiplier between adjacent levels.
    pub fanout: u64,
    /// Run count that triggers a universal merge.
    pub universal_run_trigger: usize,
    /// Total-size budget for FIFO.
    pub fifo_max_bytes: u64,
    /// Cut compaction outputs at this size.
    pub target_file_size: u64,
    /// Split each merge into up to this many disjoint key subranges and
    /// run them concurrently on the background job pool (1 = serial).
    pub max_subcompactions: usize,
}

impl Default for CompactionParams {
    fn default() -> Self {
        CompactionParams {
            style: CompactionStyle::Leveled,
            l0_compaction_trigger: 4,
            base_level_bytes: 8 * 1024 * 1024,
            fanout: 10,
            universal_run_trigger: 8,
            fifo_max_bytes: 64 * 1024 * 1024,
            target_file_size: 2 * 1024 * 1024,
            max_subcompactions: 1,
        }
    }
}

/// One disjoint key subrange of a merge task: user keys in
/// `[lower, upper)`, with `None` meaning unbounded on that side.
///
/// Bounds are always **user keys** (never internal keys), so every
/// version of a user key lands in exactly one subrange — the per-key
/// shadowing/tombstone state in [`run_compaction_range`] resets at key
/// changes and would mis-drop entries if a key straddled two ranges.
#[derive(Clone, Debug, Default)]
pub struct SubcompactionRange {
    /// Inclusive lower bound on user keys (`None` = from the start).
    pub lower: Option<Vec<u8>>,
    /// Exclusive upper bound on user keys (`None` = to the end).
    pub upper: Option<Vec<u8>>,
}

impl SubcompactionRange {
    /// The unbounded range covering the whole task.
    #[must_use]
    pub fn full() -> Self {
        SubcompactionRange::default()
    }
}

/// Splits a merge task into up to `max_subcompactions` byte-balanced,
/// key-disjoint subranges using the input SSTs' index blocks.
///
/// Every index entry of every input file contributes a
/// `(last user key of block, block bytes)` span; boundaries are placed
/// where the running byte total crosses an even stripe of the task's
/// total bytes. Planning is best-effort: any error opening an input (or
/// a task too small to split) degrades to a single full-range plan,
/// which is always correct.
#[must_use]
pub fn plan_subcompactions(
    table_cache: &Arc<TableCache>,
    task: &CompactionTask,
    max_subcompactions: usize,
) -> Vec<SubcompactionRange> {
    let single = vec![SubcompactionRange::full()];
    let CompactionTask::Merge { inputs, overlaps, .. } = task else {
        return single;
    };
    if max_subcompactions <= 1 {
        return single;
    }
    let mut spans: Vec<(Vec<u8>, u64)> = Vec::new();
    for meta in inputs.iter().chain(overlaps.iter()) {
        let table = match table_cache.get(meta.number) {
            Ok(t) => t,
            Err(_) => return single,
        };
        match table.index_spans() {
            Ok(s) => spans.extend(s),
            Err(_) => return single,
        }
    }
    if spans.len() < 2 {
        return single;
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    let total: u64 = spans.iter().map(|(_, bytes)| bytes).sum();
    let want = max_subcompactions.min(spans.len());
    let stripe = (total / want as u64).max(1);

    // Walk the spans in key order and cut a boundary each time a stripe
    // of bytes has accumulated. Candidate boundaries are the spans' user
    // keys; requiring each new boundary to be *strictly greater* than
    // the last collapses duplicate candidates (many versions / many
    // blocks of one hot user key), so no user key is ever split.
    let mut boundaries: Vec<Vec<u8>> = Vec::new();
    let mut acc = 0u64;
    for (key, bytes) in &spans {
        if boundaries.len() + 1 >= want {
            break;
        }
        acc += bytes;
        if acc >= stripe && boundaries.last().is_none_or(|b| b.as_slice() < key.as_slice()) {
            boundaries.push(key.clone());
            acc = 0;
        }
    }
    if boundaries.is_empty() {
        return single;
    }
    let mut ranges = Vec::with_capacity(boundaries.len() + 1);
    let mut lower: Option<Vec<u8>> = None;
    for b in boundaries {
        ranges.push(SubcompactionRange { lower: lower.take(), upper: Some(b.clone()) });
        lower = Some(b);
    }
    ranges.push(SubcompactionRange { lower, upper: None });
    ranges
}

/// A unit of compaction work.
#[derive(Debug)]
pub enum CompactionTask {
    /// Merge `inputs` (at `input_level`) with `overlaps` (at
    /// `output_level`) into new files at `output_level`.
    Merge {
        /// Level the inputs come from.
        input_level: usize,
        /// Level outputs land at.
        output_level: usize,
        /// Files from `input_level`.
        inputs: Vec<Arc<FileMeta>>,
        /// Overlapping files from `output_level`.
        overlaps: Vec<Arc<FileMeta>>,
    },
    /// FIFO: drop these files outright, no merging.
    FifoTrim {
        /// Oldest files to delete.
        files: Vec<Arc<FileMeta>>,
    },
}

impl CompactionTask {
    /// Total input bytes this task will read (0 for FIFO trims).
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        match self {
            CompactionTask::Merge { inputs, overlaps, .. } => inputs
                .iter()
                .chain(overlaps.iter())
                .map(|f| f.file_size)
                .sum(),
            CompactionTask::FifoTrim { .. } => 0,
        }
    }
}

/// Chooses the next compaction, if any is warranted.
#[must_use]
pub fn pick_compaction(version: &Version, params: &CompactionParams) -> Option<CompactionTask> {
    match params.style {
        CompactionStyle::Leveled => pick_leveled(version, params),
        CompactionStyle::Universal => pick_universal(version, params),
        CompactionStyle::Fifo => pick_fifo(version, params),
    }
}

fn pick_leveled(version: &Version, params: &CompactionParams) -> Option<CompactionTask> {
    // Score every level; compact the worst offender.
    let mut best: Option<(f64, usize)> = None;
    let l0_score = version.level_files(0) as f64 / params.l0_compaction_trigger as f64;
    if l0_score >= 1.0 {
        best = Some((l0_score, 0));
    }
    let mut target = params.base_level_bytes;
    for level in 1..NUM_LEVELS - 1 {
        let score = version.level_size(level) as f64 / target as f64;
        if score >= 1.0 && best.is_none_or(|(s, _)| score > s) {
            best = Some((score, level));
        }
        target = target.saturating_mul(params.fanout);
    }
    let (_, level) = best?;
    let inputs: Vec<Arc<FileMeta>> = if level == 0 {
        // All L0 files: they overlap each other, so take the lot.
        version.files[0].clone()
    } else {
        // Rotate through the level: pick the file with the smallest key
        // (deterministic and fair enough at benchmark scale).
        vec![version.files[level].first()?.clone()]
    };
    if inputs.is_empty() {
        return None;
    }
    let smallest = inputs.iter().map(|f| f.smallest_user_key().to_vec()).min()?;
    let largest = inputs.iter().map(|f| f.largest_user_key().to_vec()).max()?;
    let output_level = level + 1;
    let overlaps = version.overlapping_files(output_level, Some(&smallest), Some(&largest));
    Some(CompactionTask::Merge { input_level: level, output_level, inputs, overlaps })
}

fn pick_universal(version: &Version, params: &CompactionParams) -> Option<CompactionTask> {
    // Runs accumulate in L0; merge all of them once the trigger is hit.
    let runs = version.level_files(0);
    if runs < params.universal_run_trigger.max(2) {
        return None;
    }
    // A full merge may split its output into several files when the data
    // exceeds `target_file_size`; those files are key-disjoint (outputs
    // are cut at user-key boundaries) and together form ONE sorted run.
    // Re-merging a single run reproduces its own input, so the picker
    // would fire again on the identical file set and the engine would
    // recompact the same data forever. Only fire when L0 really holds
    // more than one run, i.e. some pair of files overlaps.
    let mut files: Vec<&Arc<FileMeta>> = version.files[0].iter().collect();
    files.sort_by(|a, b| a.smallest_user_key().cmp(b.smallest_user_key()));
    let single_sorted_run =
        files.windows(2).all(|w| w[0].largest_user_key() < w[1].smallest_user_key());
    if single_sorted_run {
        return None;
    }
    Some(CompactionTask::Merge {
        input_level: 0,
        output_level: 0,
        inputs: version.files[0].clone(),
        overlaps: Vec::new(),
    })
}

fn pick_fifo(version: &Version, params: &CompactionParams) -> Option<CompactionTask> {
    let total = version.level_size(0);
    if total <= params.fifo_max_bytes {
        return None;
    }
    // Oldest files first (L0 is sorted newest-first).
    let mut excess = total - params.fifo_max_bytes;
    let mut victims = Vec::new();
    for meta in version.files[0].iter().rev() {
        if excess == 0 {
            break;
        }
        victims.push(meta.clone());
        excess = excess.saturating_sub(meta.file_size);
    }
    if victims.is_empty() {
        None
    } else {
        Some(CompactionTask::FifoTrim { files: victims })
    }
}

/// A pluggable compaction backend. The default (in-process) executor runs
/// [`run_compaction`] on the database's own threads; a disaggregated
/// deployment installs an offloaded executor that runs the same function
/// on the storage server, with its *own* server identity, DEK resolver,
/// and secure cache — resolving input DEKs purely from the DEK-IDs in the
/// file metadata (paper §5.4, §5.6).
pub trait CompactionExecutor: Send + Sync {
    /// Executes `task`, allocating output file numbers via `alloc`.
    fn execute(
        &self,
        request: &CompactionRequest<'_>,
        alloc: &mut dyn FnMut() -> u64,
    ) -> Result<CompactionOutcome>;
}

/// What the engine hands to a [`CompactionExecutor`].
pub struct CompactionRequest<'a> {
    /// Database directory on the shared storage.
    pub db_path: &'a str,
    /// The work to do (file metadata carries the DEK-IDs).
    pub task: &'a CompactionTask,
    /// Version the task was picked against.
    pub version: &'a Version,
    /// Oldest sequence any snapshot can still read.
    pub smallest_snapshot: SequenceNumber,
    /// SST construction knobs.
    pub table_options: TableBuilderOptions,
    /// Output file size cap.
    pub target_file_size: u64,
}

/// Everything [`run_compaction`] needs, bundled so remote compactors can
/// construct it from shared state.
pub struct CompactionContext<'a> {
    /// Storage the SSTs live on (local or disaggregated).
    pub env: &'a Arc<dyn Env>,
    /// Database directory.
    pub db_path: &'a str,
    /// Encryption config of the *executing* server (its own resolver).
    pub encryption: Option<&'a EncryptionConfig>,
    /// Table cache for opening inputs.
    pub table_cache: &'a Arc<TableCache>,
    /// The version the task was picked against (for tombstone elision).
    pub version: &'a Version,
    /// Oldest sequence any snapshot can still read; `MAX_SEQUENCE` if none.
    pub smallest_snapshot: SequenceNumber,
    /// SST construction knobs.
    pub table_options: TableBuilderOptions,
    /// Cut outputs at this size.
    pub target_file_size: u64,
    /// Data blocks to prefetch ahead of the merge's read position
    /// (0 disables compaction readahead).
    pub readahead_blocks: usize,
    /// Allocator for output file numbers.
    pub next_file_number: &'a mut dyn FnMut() -> u64,
}

/// What a compaction produced.
#[derive(Debug, Default)]
pub struct CompactionOutcome {
    /// The edit to apply: inputs deleted, outputs added.
    pub edit: VersionEdit,
    /// Bytes read from inputs.
    pub bytes_read: u64,
    /// Bytes written to outputs.
    pub bytes_written: u64,
    /// Entries dropped as shadowed or tombstone-elided.
    pub entries_dropped: u64,
    /// Output files created.
    pub outputs: usize,
}

/// True if no level strictly below `level` can hold `user_key` — the
/// condition for safely dropping an old tombstone.
fn is_base_level_for_key(version: &Version, level: usize, user_key: &[u8]) -> bool {
    for deeper in (level + 1)..version.files.len() {
        for f in &version.files[deeper] {
            if user_key >= f.smallest_user_key() && user_key <= f.largest_user_key() {
                return false;
            }
        }
    }
    true
}

/// Executes a merge task: reads inputs, drops shadowed/obsolete entries,
/// writes outputs (each under a fresh DEK when encryption is on).
pub fn run_compaction(
    ctx: &mut CompactionContext<'_>,
    task: &CompactionTask,
) -> Result<CompactionOutcome> {
    let mut outcome = run_compaction_range(ctx, task, &SubcompactionRange::full())?;
    outcome.bytes_read = task.input_bytes();
    append_input_deletions(task, &mut outcome.edit);
    Ok(outcome)
}

/// Records the task's input files as deleted in `edit`. Split out of
/// [`run_compaction_range`] so a parallel run can stitch N subrange
/// outcomes into one edit and delete each input exactly once.
pub fn append_input_deletions(task: &CompactionTask, edit: &mut VersionEdit) {
    match task {
        CompactionTask::Merge { input_level, output_level, inputs, overlaps } => {
            for meta in inputs {
                edit.deleted_files.push((*input_level as u32, meta.number));
            }
            for meta in overlaps {
                edit.deleted_files.push((*output_level as u32, meta.number));
            }
        }
        CompactionTask::FifoTrim { files } => {
            for f in files {
                edit.deleted_files.push((0, f.number));
            }
        }
    }
}

/// Executes the slice of a merge task whose user keys fall in `range`.
///
/// The returned outcome carries only the **output** side of the edit
/// (new files); input deletions are appended by the caller via
/// [`append_input_deletions`] — once per task, not once per subrange.
/// `bytes_read` is likewise left at 0 (a subrange cannot attribute input
/// bytes precisely); [`run_compaction`] fills it for the whole task.
///
/// Because range bounds are user keys, all versions of any user key are
/// processed by exactly one call, so shadowed-version dropping and
/// snapshot-aware tombstone elision behave identically to a serial run.
pub fn run_compaction_range(
    ctx: &mut CompactionContext<'_>,
    task: &CompactionTask,
    range: &SubcompactionRange,
) -> Result<CompactionOutcome> {
    let CompactionTask::Merge { input_level, output_level, inputs, overlaps } = task else {
        // FIFO trims delete files without reading them; the caller's
        // `append_input_deletions` records the drops.
        return Ok(CompactionOutcome::default());
    };

    let perf_start = shield_core::perf::timer();
    let mut outcome = CompactionOutcome::default();

    // Build the merged input stream. Inputs from L0 (or a universal run
    // set) must be one iterator per file, newest first; sorted levels can
    // use a concatenating iterator.
    let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
    if *input_level == 0 {
        for meta in inputs {
            let table = ctx.table_cache.get(meta.number)?;
            children.push(Box::new(table.iter_with_readahead(ctx.readahead_blocks)));
        }
    } else if !inputs.is_empty() {
        children.push(Box::new(crate::version::version::LevelIterator::new_with_readahead(
            inputs.clone(),
            ctx.table_cache.clone(),
            ctx.readahead_blocks,
        )));
    }
    if !overlaps.is_empty() {
        children.push(Box::new(crate::version::version::LevelIterator::new_with_readahead(
            overlaps.clone(),
            ctx.table_cache.clone(),
            ctx.readahead_blocks,
        )));
    }
    let mut merged = MergingIterator::new(children);
    match &range.lower {
        // Seek to the *first* version of the lower-bound user key:
        // `MAX_SEQUENCE` sorts before every real sequence number.
        Some(lower) => merged.seek(&crate::types::make_internal_key(
            lower,
            MAX_SEQUENCE,
            ValueType::Value,
        )),
        None => merged.seek_to_first(),
    }

    let mut builder: Option<(u64, TableBuilder)> = None;
    let mut current_user_key: Option<Vec<u8>> = None;
    let mut last_seq_for_key: SequenceNumber = MAX_SEQUENCE;

    let finish_output = |builder: Option<(u64, TableBuilder)>,
                             outcome: &mut CompactionOutcome|
     -> Result<()> {
        if let Some((number, b)) = builder {
            if b.num_entries() > 0 {
                let (props, size) = b.finish()?;
                outcome.bytes_written += size;
                outcome.outputs += 1;
                outcome.edit.new_files.push((
                    *output_level as u32,
                    FileMeta {
                        number,
                        file_size: size,
                        smallest: crate::types::make_internal_key(
                            &props.smallest_user_key,
                            MAX_SEQUENCE,
                            ValueType::Value,
                        ),
                        largest: crate::types::make_internal_key(
                            &props.largest_user_key,
                            0,
                            ValueType::Deletion,
                        ),
                        dek_id: props.dek_id,
                    },
                ));
            }
        }
        Ok(())
    };

    while merged.valid() {
        let ikey = merged.key().to_vec();
        let user_key = extract_user_key(&ikey).to_vec();
        if let Some(upper) = &range.upper {
            if user_key.as_slice() >= upper.as_slice() {
                // End of this subrange; keys past `upper` belong to the
                // next subcompaction.
                break;
            }
        }
        let (seq, vtype) = extract_seq_type(&ikey);

        // Reset per-key tracking on key change.
        if current_user_key.as_deref() != Some(&user_key[..]) {
            current_user_key = Some(user_key.clone());
            last_seq_for_key = MAX_SEQUENCE;
        }

        let mut drop = false;
        if last_seq_for_key != MAX_SEQUENCE && last_seq_for_key <= ctx.smallest_snapshot {
            // A newer version of this key is already visible at every
            // snapshot: this one is pure history.
            drop = true;
        } else if vtype == Some(ValueType::Deletion)
            && seq <= ctx.smallest_snapshot
            && is_base_level_for_key(ctx.version, *output_level, &user_key)
        {
            // Tombstone with nothing underneath to shadow: elide it.
            drop = true;
        }
        last_seq_for_key = seq;

        if drop {
            outcome.entries_dropped += 1;
        } else {
            if builder.is_none() {
                let number = (ctx.next_file_number)();
                let path = shield_env::join_path(ctx.db_path, &sst_file_name(number));
                let (file, dek_id, dek_mac) = match ctx.encryption {
                    Some(cfg) => {
                        let (f, id, mac) =
                            cfg.new_writable_with_mac(ctx.env.as_ref(), &path, FileKind::Sst)?;
                        (f, Some(id), mac)
                    }
                    None => (ctx.env.new_writable_file(&path, FileKind::Sst)?, None, None),
                };
                // `table_options.mac_key` carries the Hmac policy (engine
                // key); encrypted outputs tag with their own DEK's subkey.
                let mac_key = ctx.table_options.mac_key.map(|engine| dek_mac.unwrap_or(engine));
                let opts = TableBuilderOptions { dek_id, mac_key, ..ctx.table_options.clone() };
                builder = Some((number, TableBuilder::new(file, opts)));
            }
            let (_, b) = builder.as_mut().unwrap();
            b.add(&ikey, merged.value())?;
            // Cut outputs only at user-key boundaries so one key's
            // versions never straddle two files: advance, peek at the next
            // key, and finish the output if the key changed.
            if b.file_size() >= ctx.target_file_size {
                merged.next();
                let key_changes = !merged.valid()
                    || extract_user_key(merged.key()) != user_key.as_slice();
                if key_changes {
                    let b = builder.take();
                    finish_output(b, &mut outcome)?;
                }
                continue;
            }
        }
        merged.next();
    }
    merged.status()?;
    finish_output(builder.take(), &mut outcome)?;
    shield_core::perf::add_elapsed(shield_core::PerfMetric::Subcompaction, perf_start);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::make_internal_key;
    use shield_env::MemEnv;

    fn meta_with(number: u64, lo: &str, hi: &str, size: u64) -> Arc<FileMeta> {
        Arc::new(FileMeta {
            number,
            file_size: size,
            smallest: make_internal_key(lo.as_bytes(), 1, ValueType::Value),
            largest: make_internal_key(hi.as_bytes(), 1, ValueType::Value),
            dek_id: None,
        })
    }

    #[test]
    fn leveled_triggers_on_l0_count() {
        let params = CompactionParams { l0_compaction_trigger: 4, ..CompactionParams::default() };
        let mut v = Version::new();
        for n in 1..=3 {
            v.files[0].push(meta_with(n, "a", "z", 100));
        }
        assert!(pick_compaction(&v, &params).is_none());
        v.files[0].push(meta_with(4, "a", "z", 100));
        let task = pick_compaction(&v, &params).unwrap();
        match task {
            CompactionTask::Merge { input_level, output_level, inputs, .. } => {
                assert_eq!(input_level, 0);
                assert_eq!(output_level, 1);
                assert_eq!(inputs.len(), 4);
            }
            CompactionTask::FifoTrim { .. } => panic!("expected merge"),
        }
    }

    #[test]
    fn leveled_triggers_on_level_size() {
        let params = CompactionParams {
            base_level_bytes: 1000,
            fanout: 10,
            ..CompactionParams::default()
        };
        let mut v = Version::new();
        v.files[1].push(meta_with(1, "a", "m", 600));
        v.files[1].push(meta_with(2, "n", "z", 600));
        v.files[2].push(meta_with(3, "k", "p", 100));
        let task = pick_compaction(&v, &params).unwrap();
        match task {
            CompactionTask::Merge { input_level, output_level, inputs, overlaps } => {
                assert_eq!((input_level, output_level), (1, 2));
                assert_eq!(inputs.len(), 1);
                assert_eq!(inputs[0].number, 1); // smallest-key file
                assert_eq!(overlaps.len(), 1); // "k..p" overlaps "a..m"
            }
            CompactionTask::FifoTrim { .. } => panic!("expected merge"),
        }
    }

    #[test]
    fn universal_merges_all_runs() {
        let params = CompactionParams {
            style: CompactionStyle::Universal,
            universal_run_trigger: 3,
            ..CompactionParams::default()
        };
        let mut v = Version::new();
        for n in 1..=2 {
            v.files[0].push(meta_with(n, "a", "z", 100));
        }
        assert!(pick_compaction(&v, &params).is_none());
        v.files[0].push(meta_with(3, "a", "z", 100));
        match pick_compaction(&v, &params).unwrap() {
            CompactionTask::Merge { input_level, output_level, inputs, overlaps } => {
                assert_eq!((input_level, output_level), (0, 0));
                assert_eq!(inputs.len(), 3);
                assert!(overlaps.is_empty());
            }
            CompactionTask::FifoTrim { .. } => panic!("expected merge"),
        }
    }

    #[test]
    fn universal_does_not_remerge_a_single_sorted_run() {
        // Regression: a full merge whose output split into >= trigger
        // key-disjoint files must NOT be picked again — re-merging a
        // single sorted run reproduces its own input and the engine
        // would recompact the same data forever (livelocking
        // `wait_for_background_work`).
        let params = CompactionParams {
            style: CompactionStyle::Universal,
            universal_run_trigger: 3,
            ..CompactionParams::default()
        };
        let mut v = Version::new();
        v.files[0] = vec![
            meta_with(3, "q", "z", 100),
            meta_with(2, "i", "p", 100),
            meta_with(1, "a", "h", 100),
        ];
        assert!(pick_compaction(&v, &params).is_none());
        // A new flushed run overlapping the merged one re-arms the picker.
        v.files[0].insert(0, meta_with(4, "c", "f", 100));
        match pick_compaction(&v, &params).unwrap() {
            CompactionTask::Merge { inputs, .. } => assert_eq!(inputs.len(), 4),
            CompactionTask::FifoTrim { .. } => panic!("expected merge"),
        }
    }

    #[test]
    fn fifo_trims_oldest() {
        let params = CompactionParams {
            style: CompactionStyle::Fifo,
            fifo_max_bytes: 250,
            ..CompactionParams::default()
        };
        let mut v = Version::new();
        // Newest first: numbers 3, 2, 1 (oldest is 1).
        v.files[0] = vec![
            meta_with(3, "a", "z", 100),
            meta_with(2, "a", "z", 100),
            meta_with(1, "a", "z", 100),
        ];
        match pick_compaction(&v, &params).unwrap() {
            CompactionTask::FifoTrim { files } => {
                assert_eq!(files.len(), 1);
                assert_eq!(files[0].number, 1);
            }
            CompactionTask::Merge { .. } => panic!("expected trim"),
        }
    }

    /// End-to-end merge: build two real overlapping L0 tables, compact,
    /// verify the output drops shadowed versions and tombstones.
    #[test]
    fn merge_drops_shadowed_and_tombstones() {
        use crate::sst::builder::TableBuilder;
        use shield_env::Env;

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let tc = TableCache::new(env.clone(), "db".into(), None, None, 8);

        // File 1 (older): a=1@5, b=1@6, c=1@7
        // File 2 (newer): a=2@10, b deleted @11
        let mk_table = |number: u64, entries: &[(&str, u64, ValueType, &str)]| {
            let path = shield_env::join_path("db", &sst_file_name(number));
            let file = env.new_writable_file(&path, FileKind::Sst).unwrap();
            let mut b = TableBuilder::new(file, TableBuilderOptions::default());
            for (k, seq, t, v) in entries {
                b.add(&make_internal_key(k.as_bytes(), *seq, *t), v.as_bytes()).unwrap();
            }
            let (props, size) = b.finish().unwrap();
            Arc::new(FileMeta {
                number,
                file_size: size,
                smallest: make_internal_key(&props.smallest_user_key, MAX_SEQUENCE, ValueType::Value),
                largest: make_internal_key(&props.largest_user_key, 0, ValueType::Deletion),
                dek_id: None,
            })
        };
        let old = mk_table(
            1,
            &[
                ("a", 5, ValueType::Value, "a1"),
                ("b", 6, ValueType::Value, "b1"),
                ("c", 7, ValueType::Value, "c1"),
            ],
        );
        let new = mk_table(
            2,
            &[("a", 10, ValueType::Value, "a2"), ("b", 11, ValueType::Deletion, "")],
        );
        let mut version = Version::new();
        version.files[0] = vec![new.clone(), old.clone()];

        let task = CompactionTask::Merge {
            input_level: 0,
            output_level: 1,
            inputs: vec![new, old],
            overlaps: vec![],
        };
        let mut next = 10u64;
        let mut alloc = || {
            next += 1;
            next
        };
        let mut ctx = CompactionContext {
            env: &env,
            db_path: "db",
            encryption: None,
            table_cache: &tc,
            version: &version,
            smallest_snapshot: MAX_SEQUENCE,
            table_options: TableBuilderOptions::default(),
            target_file_size: 1 << 20,
            readahead_blocks: 0,
            next_file_number: &mut alloc,
        };
        let outcome = run_compaction(&mut ctx, &task).unwrap();
        assert_eq!(outcome.outputs, 1);
        // a@5 shadowed, b@6 shadowed, b-tombstone elided (base level).
        assert_eq!(outcome.entries_dropped, 3);
        assert_eq!(outcome.edit.deleted_files.len(), 2);
        let (level, out_meta) = &outcome.edit.new_files[0];
        assert_eq!(*level, 1);
        // The output holds exactly a@10 and c@7.
        let table = tc.get(out_meta.number).unwrap();
        assert_eq!(table.properties().num_entries, 2);
        assert_eq!(table.get(b"a", 100).unwrap().unwrap().1, b"a2");
        assert!(table.get(b"b", 100).unwrap().is_none());
        assert_eq!(table.get(b"c", 100).unwrap().unwrap().1, b"c1");
    }

    /// Snapshots must preserve versions still visible to them.
    #[test]
    fn merge_respects_snapshots() {
        use crate::sst::builder::TableBuilder;
        use shield_env::Env;

        let env: Arc<dyn Env> = Arc::new(MemEnv::new());
        let tc = TableCache::new(env.clone(), "db".into(), None, None, 8);
        let path = shield_env::join_path("db", &sst_file_name(1));
        let file = env.new_writable_file(&path, FileKind::Sst).unwrap();
        let mut b = TableBuilder::new(file, TableBuilderOptions::default());
        b.add(&make_internal_key(b"k", 10, ValueType::Value), b"v10").unwrap();
        b.add(&make_internal_key(b"k", 4, ValueType::Value), b"v4").unwrap();
        let (_, size) = b.finish().unwrap();
        let meta = Arc::new(FileMeta {
            number: 1,
            file_size: size,
            smallest: make_internal_key(b"k", MAX_SEQUENCE, ValueType::Value),
            largest: make_internal_key(b"k", 0, ValueType::Deletion),
            dek_id: None,
        });
        let mut version = Version::new();
        version.files[0] = vec![meta.clone()];
        let task = CompactionTask::Merge {
            input_level: 0,
            output_level: 1,
            inputs: vec![meta],
            overlaps: vec![],
        };
        let mut next = 10u64;
        let mut alloc = || {
            next += 1;
            next
        };
        // A snapshot at seq 5 still needs v4.
        let mut ctx = CompactionContext {
            env: &env,
            db_path: "db",
            encryption: None,
            table_cache: &tc,
            version: &version,
            smallest_snapshot: 5,
            table_options: TableBuilderOptions::default(),
            target_file_size: 1 << 20,
            readahead_blocks: 0,
            next_file_number: &mut alloc,
        };
        let outcome = run_compaction(&mut ctx, &task).unwrap();
        assert_eq!(outcome.entries_dropped, 0);
        let table = tc.get(outcome.edit.new_files[0].1.number).unwrap();
        assert_eq!(table.properties().num_entries, 2);
    }
}
