//! Authenticated integrity: per-block HMAC-SHA256 tags over every
//! persistent artifact (SST blocks, WAL records, MANIFEST records).
//!
//! CTR-mode encryption is malleable — flipping a ciphertext bit flips the
//! same plaintext bit — and CRC32C is not a cryptographic check: an
//! attacker who can write to the storage medium can alter plaintext
//! files (and, with more effort, splice or replay whole blocks of
//! encrypted ones) without tripping the checksum. Under
//! [`Integrity::Hmac`] every block/record carries a truncated
//! HMAC-SHA256 tag whose message binds:
//!
//! - the **file-unique context** (16 random bytes minted at file
//!   creation), defeating cross-file splicing;
//! - the **position** (block offset, or WAL fragment counter), defeating
//!   within-file block swaps and record replay/reorder;
//! - the **bytes themselves**, defeating bit flips and CRC re-patching.
//!
//! Keys: SHIELD-encrypted files use a MAC subkey derived from the file's
//! DEK ([`derive_mac_subkey`], domain-separated from the CTR use of the
//! key); plaintext and EncFS deployments use the engine-wide
//! `Options::integrity_key`. Tags are computed over **plaintext** block
//! bytes — the builder and fetcher sit above the encryption layer, and
//! CTR maps ciphertext mutations to plaintext mutations 1:1, so a
//! plaintext MAC detects exactly the set of mutations that change what
//! the engine would read (see DESIGN.md §4h for the threat model,
//! including what this does *not* defend: whole-file rollback).
//!
//! Verification is **file-format driven**, not option driven: a v2
//! (tagged) file is always verified on read regardless of the current
//! `Options::integrity` setting, and a v1 (legacy) file is always
//! readable — under `Hmac` it merely bumps the
//! `integrity_unprotected_files` gauge so operators can watch the
//! rewrite-by-compaction progress.

use std::sync::Arc;

use shield_core::{Event, EventDispatcher};

use crate::error::{Error, Result};
use crate::statistics::Statistics;

/// Integrity mode for persistent data ([`crate::Options::integrity`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Integrity {
    /// CRC32C only (the classic LSM format): catches disk rot, not
    /// tampering.
    #[default]
    Crc,
    /// CRC32C plus a truncated per-block HMAC-SHA256 tag: detects every
    /// plaintext-altering mutation, splice, swap, and replay.
    Hmac,
}

/// Length of the per-file random context bound into every tag.
pub const CONTEXT_LEN: usize = 16;

/// Length of the truncated HMAC-SHA256 tag appended per block/record.
pub const BLOCK_TAG_LEN: usize = 16;

/// Engine-level integrity settings, as threaded into the read path
/// (a projection of [`crate::Options`] plus the fallback MAC key).
#[derive(Clone, Copy, Debug, Default)]
pub struct IntegrityOptions {
    /// Write-side mode: should newly created files carry tags?
    pub mode: Integrity,
    /// Engine-wide MAC key for files that have no DEK to derive a subkey
    /// from (plain and EncFS deployments, plaintext WALs).
    pub key: [u8; 32],
}

/// Derives the MAC subkey for a file from its DEK key material,
/// domain-separated from the key's CTR use.
#[must_use]
pub fn derive_mac_subkey(dek_key: &[u8]) -> [u8; 32] {
    shield_crypto::hmac_sha256(dek_key, b"shield-integrity-mac-v1")
}

/// Computes the truncated tag for one SST block: message =
/// `context ‖ offset (u64 LE) ‖ compression byte ‖ block bytes`.
#[must_use]
pub fn block_tag(
    key: &[u8; 32],
    context: &[u8; CONTEXT_LEN],
    offset: u64,
    compression: u8,
    contents: &[u8],
) -> [u8; BLOCK_TAG_LEN] {
    let mut message = Vec::with_capacity(CONTEXT_LEN + 9 + contents.len());
    message.extend_from_slice(context);
    message.extend_from_slice(&offset.to_le_bytes());
    message.push(compression);
    message.extend_from_slice(contents);
    truncate_tag(&shield_crypto::hmac_sha256(key, &message))
}

/// Computes the truncated tag for one WAL/MANIFEST record fragment:
/// message = `context ‖ fragment counter (u64 LE) ‖ record type ‖
/// fragment bytes`. The monotonic counter binds position, defeating
/// record replay, reorder, and cross-log splicing.
#[must_use]
pub fn record_tag(
    key: &[u8; 32],
    context: &[u8; CONTEXT_LEN],
    counter: u64,
    record_type: u8,
    fragment: &[u8],
) -> [u8; BLOCK_TAG_LEN] {
    let mut message = Vec::with_capacity(CONTEXT_LEN + 9 + fragment.len());
    message.extend_from_slice(context);
    message.extend_from_slice(&counter.to_le_bytes());
    message.push(record_type);
    message.extend_from_slice(fragment);
    truncate_tag(&shield_crypto::hmac_sha256(key, &message))
}

fn truncate_tag(full: &[u8; 32]) -> [u8; BLOCK_TAG_LEN] {
    let mut tag = [0u8; BLOCK_TAG_LEN];
    tag.copy_from_slice(&full[..BLOCK_TAG_LEN]);
    tag
}

/// What a table/log opener knows about integrity *before* seeing the
/// file: the key that would verify it and whether the engine expects new
/// files to be tagged. The file's own format version decides whether
/// verification actually runs (v2 → always, v1 → never); `expect_hmac`
/// only controls the `integrity_unprotected_files` gauge for legacy
/// files encountered under [`Integrity::Hmac`].
#[derive(Clone, Default)]
pub struct ReadIntegrity {
    /// MAC key to verify with (DEK-derived subkey or the engine key).
    pub key: [u8; 32],
    /// True when `Options::integrity == Hmac`.
    pub expect_hmac: bool,
    /// Event sink for violation events.
    pub events: Option<Arc<EventDispatcher>>,
}

impl std::fmt::Debug for ReadIntegrity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadIntegrity")
            .field("expect_hmac", &self.expect_hmac)
            .finish_non_exhaustive()
    }
}

/// Read-side verification context for one tagged (v2) file: the key, the
/// file's context, and the observability sinks the verifier reports to.
#[derive(Clone)]
pub struct IntegrityCtx {
    /// MAC key (DEK-derived subkey or the engine key).
    pub key: [u8; 32],
    /// The file's 16-byte random context (from its footer/preamble).
    pub context: [u8; CONTEXT_LEN],
    /// File number, for the violation event payload.
    pub file_number: u64,
    /// Ticker sink (`integrity_checks` / `integrity_failures`).
    pub stats: Option<Arc<Statistics>>,
    /// Event sink for [`Event::IntegrityViolation`].
    pub events: Option<Arc<EventDispatcher>>,
}

impl IntegrityCtx {
    /// A bare context with no observability sinks (tests, tools).
    #[must_use]
    pub fn new(key: [u8; 32], context: [u8; CONTEXT_LEN], file_number: u64) -> Self {
        IntegrityCtx { key, context, file_number, stats: None, events: None }
    }

    /// Verifies one SST block tag, bumping tickers and emitting the
    /// violation event on mismatch.
    pub fn verify_block(
        &self,
        offset: u64,
        compression: u8,
        contents: &[u8],
        stored_tag: &[u8],
    ) -> Result<()> {
        let expect = block_tag(&self.key, &self.context, offset, compression, contents);
        self.finish(offset, &expect, stored_tag, "block")
    }

    /// Verifies one WAL/MANIFEST record tag (offset in the event payload
    /// is the fragment counter).
    pub fn verify_record(
        &self,
        counter: u64,
        record_type: u8,
        fragment: &[u8],
        stored_tag: &[u8],
    ) -> Result<()> {
        let expect = record_tag(&self.key, &self.context, counter, record_type, fragment);
        self.finish(counter, &expect, stored_tag, "record")
    }

    fn finish(&self, offset: u64, expect: &[u8], stored: &[u8], what: &str) -> Result<()> {
        use std::sync::atomic::Ordering;
        if let Some(stats) = &self.stats {
            stats.integrity_checks.fetch_add(1, Ordering::Relaxed);
        }
        if shield_crypto::constant_time_eq(expect, stored) {
            return Ok(());
        }
        if let Some(stats) = &self.stats {
            stats.integrity_failures.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(events) = &self.events {
            events.emit(&Event::IntegrityViolation { file: self.file_number, offset });
        }
        Err(Error::IntegrityViolation(format!(
            "{what} HMAC tag mismatch in file {} at offset {offset}",
            self.file_number
        )))
    }
}

impl std::fmt::Debug for IntegrityCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("IntegrityCtx").field("file_number", &self.file_number).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_tag_binds_context_offset_and_bytes() {
        let key = [7u8; 32];
        let ctx = [1u8; CONTEXT_LEN];
        let base = block_tag(&key, &ctx, 0, 0, b"hello");
        assert_ne!(base, block_tag(&key, &ctx, 1, 0, b"hello"), "offset unbound");
        assert_ne!(base, block_tag(&key, &ctx, 0, 1, b"hello"), "compression unbound");
        assert_ne!(base, block_tag(&key, &ctx, 0, 0, b"hellp"), "bytes unbound");
        assert_ne!(base, block_tag(&key, &[2u8; CONTEXT_LEN], 0, 0, b"hello"), "context unbound");
        assert_ne!(base, block_tag(&[8u8; 32], &ctx, 0, 0, b"hello"), "key unbound");
        assert_eq!(base, block_tag(&key, &ctx, 0, 0, b"hello"), "deterministic");
    }

    #[test]
    fn record_tag_binds_counter_and_type() {
        let key = [3u8; 32];
        let ctx = [9u8; CONTEXT_LEN];
        let base = record_tag(&key, &ctx, 5, 1, b"payload");
        assert_ne!(base, record_tag(&key, &ctx, 6, 1, b"payload"), "counter unbound");
        assert_ne!(base, record_tag(&key, &ctx, 5, 2, b"payload"), "type unbound");
    }

    #[test]
    fn mac_subkey_is_domain_separated() {
        let dek = [0x42u8; 32];
        let sub = derive_mac_subkey(&dek);
        assert_ne!(sub, dek);
        assert_eq!(sub, derive_mac_subkey(&dek));
    }

    #[test]
    fn verify_reports_mismatch_as_integrity_violation() {
        let ctx = IntegrityCtx::new([1u8; 32], [2u8; CONTEXT_LEN], 42);
        let tag = block_tag(&ctx.key, &ctx.context, 10, 0, b"data");
        assert!(ctx.verify_block(10, 0, b"data", &tag).is_ok());
        let err = ctx.verify_block(11, 0, b"data", &tag).unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)));
        let err = ctx.verify_block(10, 0, b"datA", &tag).unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)));
    }

    #[test]
    fn verify_bumps_tickers() {
        let stats = Statistics::new();
        let mut ctx = IntegrityCtx::new([1u8; 32], [2u8; CONTEXT_LEN], 7);
        ctx.stats = Some(stats.clone());
        let tag = block_tag(&ctx.key, &ctx.context, 0, 0, b"x");
        ctx.verify_block(0, 0, b"x", &tag).unwrap();
        assert!(ctx.verify_block(1, 0, b"x", &tag).is_err());
        let snap = stats.snapshot();
        assert_eq!(snap.integrity_checks, 2);
        assert_eq!(snap.integrity_failures, 1);
    }
}
