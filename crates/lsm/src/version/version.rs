//! An immutable snapshot of the LSM shape: which files live at which level.

use std::sync::Arc;

use crate::error::Result;
use crate::iter::InternalIterator;
use crate::types::{extract_seq_type, extract_user_key, SequenceNumber, ValueType};
use crate::version::edit::FileMeta;
use crate::version::table_cache::TableCache;

/// Number of levels (RocksDB default: 7).
pub const NUM_LEVELS: usize = 7;

/// Result of a point lookup against persistent state.
#[derive(Debug, PartialEq, Eq)]
pub enum GetResult {
    /// A live value.
    Found(Vec<u8>),
    /// A tombstone shadows the key.
    Deleted,
    /// Not present in any file.
    NotFound,
}

/// An immutable file layout. L0 files may overlap and are ordered newest
/// first; L1+ files are disjoint and ordered by smallest key.
#[derive(Clone, Default)]
pub struct Version {
    /// Files per level.
    pub files: Vec<Vec<Arc<FileMeta>>>,
}

impl Version {
    /// An empty version.
    #[must_use]
    pub fn new() -> Self {
        Version { files: vec![Vec::new(); NUM_LEVELS] }
    }

    /// Total bytes at `level`.
    #[must_use]
    pub fn level_size(&self, level: usize) -> u64 {
        self.files[level].iter().map(|f| f.file_size).sum()
    }

    /// Number of files at `level`.
    #[must_use]
    pub fn level_files(&self, level: usize) -> usize {
        self.files[level].len()
    }

    /// Total number of live SST files.
    #[must_use]
    pub fn total_files(&self) -> usize {
        self.files.iter().map(Vec::len).sum()
    }

    /// All live file numbers.
    #[must_use]
    pub fn live_files(&self) -> Vec<u64> {
        self.files.iter().flatten().map(|f| f.number).collect()
    }

    /// Point lookup at sequence `seq`.
    pub fn get(
        &self,
        table_cache: &TableCache,
        user_key: &[u8],
        seq: SequenceNumber,
    ) -> Result<GetResult> {
        self.get_opt(table_cache, user_key, seq, true)
    }

    /// [`Version::get`] with cache-admission control (`fill_cache = false`
    /// reads around the block cache).
    pub fn get_opt(
        &self,
        table_cache: &TableCache,
        user_key: &[u8],
        seq: SequenceNumber,
        fill_cache: bool,
    ) -> Result<GetResult> {
        // L0: newest file first; files may overlap.
        for meta in &self.files[0] {
            if user_key < meta.smallest_user_key() || user_key > meta.largest_user_key() {
                continue;
            }
            if let Some(result) =
                self.get_in_file(table_cache, meta, user_key, seq, fill_cache)?
            {
                return Ok(result);
            }
        }
        // L1+: at most one candidate file per level.
        for level in 1..self.files.len() {
            let files = &self.files[level];
            if files.is_empty() {
                continue;
            }
            let idx = files.partition_point(|f| f.largest_user_key() < user_key);
            if idx >= files.len() || user_key < files[idx].smallest_user_key() {
                continue;
            }
            if let Some(result) =
                self.get_in_file(table_cache, &files[idx], user_key, seq, fill_cache)?
            {
                return Ok(result);
            }
        }
        Ok(GetResult::NotFound)
    }

    /// Batched point lookup at sequence `seq`: one slot per key, each
    /// equivalent to [`Version::get_opt`]. Keys are grouped by candidate
    /// file (per L0 file newest-first, then per level), so each table
    /// sees its whole sub-batch in one [`crate::sst::Table::get_many_opt`]
    /// — one batched read submission per file instead of one read per
    /// key. Errors are per-slot.
    pub fn multi_get_opt(
        &self,
        table_cache: &TableCache,
        keys: &[&[u8]],
        seq: SequenceNumber,
        fill_cache: bool,
    ) -> Vec<Result<GetResult>> {
        let mut out: Vec<Option<Result<GetResult>>> = Vec::new();
        out.resize_with(keys.len(), || None);
        self.warm_candidate_tables(table_cache, keys);
        // L0: newest file first; files may overlap.
        for meta in &self.files[0] {
            self.multi_get_in_file(table_cache, meta, keys, seq, fill_cache, &mut out, |k| {
                k >= meta.smallest_user_key() && k <= meta.largest_user_key()
            });
        }
        // L1+: at most one candidate file per level and key.
        for level in 1..self.files.len() {
            let files = &self.files[level];
            if files.is_empty() {
                continue;
            }
            for (fidx, meta) in files.iter().enumerate() {
                self.multi_get_in_file(table_cache, meta, keys, seq, fill_cache, &mut out, |k| {
                    files.partition_point(|f| f.largest_user_key() < k) == fidx
                        && k >= meta.smallest_user_key()
                });
            }
        }
        out.into_iter().map(|slot| slot.unwrap_or(Ok(GetResult::NotFound))).collect()
    }

    /// Opens every table a batch might touch, concurrently.
    ///
    /// A cold [`crate::sst::Table::open`] costs several storage round
    /// trips (footer, index, bloom, properties — plus the DEK resolve in
    /// SHIELD mode); opening a batch's candidate files one after another
    /// would serialize those trips and dominate the whole batch on a
    /// remote env. [`TableCache::get`] is concurrency-safe and
    /// idempotent, so this is a pure warm-up: open errors are ignored
    /// here — the resolution pass re-encounters them and attributes them
    /// to the right slots. Candidacy is over-approximate on purpose (a
    /// key that resolves at L0 still warms its L1+ candidates); those
    /// tables stay in the cache for the next lookup.
    fn warm_candidate_tables(&self, table_cache: &TableCache, keys: &[&[u8]]) {
        const WARM_THREADS: usize = 8;
        let mut candidates: Vec<u64> = Vec::new();
        for meta in &self.files[0] {
            if keys.iter().any(|&k| {
                k >= meta.smallest_user_key() && k <= meta.largest_user_key()
            }) {
                candidates.push(meta.number);
            }
        }
        for level in 1..self.files.len() {
            let files = &self.files[level];
            for (fidx, meta) in files.iter().enumerate() {
                if keys.iter().any(|&k| {
                    files.partition_point(|f| f.largest_user_key() < k) == fidx
                        && k >= meta.smallest_user_key()
                }) {
                    candidates.push(meta.number);
                }
            }
        }
        if candidates.len() < 2 {
            return; // nothing to overlap
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..candidates.len().min(WARM_THREADS) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&number) = candidates.get(i) else { break };
                    let _ = table_cache.get(number);
                });
            }
        });
    }

    /// Probes `meta` with every still-unresolved key matched by
    /// `candidate`, resolving found/deleted/errored slots in `out`.
    #[allow(clippy::too_many_arguments)]
    fn multi_get_in_file(
        &self,
        table_cache: &TableCache,
        meta: &FileMeta,
        keys: &[&[u8]],
        seq: SequenceNumber,
        fill_cache: bool,
        out: &mut [Option<Result<GetResult>>],
        candidate: impl Fn(&[u8]) -> bool,
    ) {
        let slots: Vec<usize> = (0..keys.len())
            .filter(|&i| out[i].is_none() && candidate(keys[i]))
            .collect();
        if slots.is_empty() {
            return;
        }
        let table = match table_cache.get(meta.number) {
            Ok(t) => t,
            Err(e) => {
                for &i in &slots {
                    out[i] = Some(Err(e.clone()));
                }
                return;
            }
        };
        let sub: Vec<&[u8]> = slots.iter().map(|&i| keys[i]).collect();
        for (&i, result) in slots.iter().zip(table.get_many_opt(&sub, seq, fill_cache)) {
            match result {
                Ok(None) => {} // not in this file; deeper sources may hold it
                Ok(Some((ikey, value))) => {
                    debug_assert_eq!(extract_user_key(&ikey), keys[i]);
                    out[i] = Some(Self::classify_entry(&ikey, value));
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
    }

    /// Maps a raw table entry to its visible [`GetResult`].
    fn classify_entry(ikey: &[u8], value: Vec<u8>) -> Result<GetResult> {
        match extract_seq_type(ikey).1 {
            Some(ValueType::Value) => Ok(GetResult::Found(value)),
            Some(ValueType::Deletion) => Ok(GetResult::Deleted),
            None => Err(crate::error::Error::Corruption("bad value type in table entry".into())),
        }
    }

    fn get_in_file(
        &self,
        table_cache: &TableCache,
        meta: &FileMeta,
        user_key: &[u8],
        seq: SequenceNumber,
        fill_cache: bool,
    ) -> Result<Option<GetResult>> {
        let table = table_cache.get(meta.number)?;
        match table.get_opt(user_key, seq, fill_cache)? {
            None => Ok(None),
            Some((ikey, value)) => {
                debug_assert_eq!(extract_user_key(&ikey), user_key);
                Self::classify_entry(&ikey, value).map(Some)
            }
        }
    }

    /// Files at `level` whose user-key range intersects
    /// `[smallest, largest]` (inclusive; `None` bounds are open).
    #[must_use]
    pub fn overlapping_files(
        &self,
        level: usize,
        smallest: Option<&[u8]>,
        largest: Option<&[u8]>,
    ) -> Vec<Arc<FileMeta>> {
        self.files[level]
            .iter()
            .filter(|f| {
                let below = largest.is_some_and(|l| f.smallest_user_key() > l);
                let above = smallest.is_some_and(|s| f.largest_user_key() < s);
                !below && !above
            })
            .cloned()
            .collect()
    }

    /// Iterators covering every persistent entry: one per L0 file plus one
    /// concatenating iterator per deeper non-empty level. Listed newest
    /// first, as the merging iterator's tie-break requires.
    pub fn iterators(
        &self,
        table_cache: &Arc<TableCache>,
    ) -> Result<Vec<Box<dyn InternalIterator>>> {
        let mut out: Vec<Box<dyn InternalIterator>> = Vec::new();
        for meta in &self.files[0] {
            let table = table_cache.get(meta.number)?;
            out.push(Box::new(table.iter()));
        }
        for level in 1..self.files.len() {
            if !self.files[level].is_empty() {
                out.push(Box::new(LevelIterator::new(
                    self.files[level].clone(),
                    table_cache.clone(),
                )));
            }
        }
        Ok(out)
    }
}

/// Concatenating iterator over a level's disjoint, sorted files.
pub struct LevelIterator {
    files: Vec<Arc<FileMeta>>,
    table_cache: Arc<TableCache>,
    file_index: usize,
    current: Option<crate::sst::TableIterator>,
    /// Per-iterator readahead override; `None` uses the fetcher default.
    readahead_blocks: Option<usize>,
    status: Result<()>,
}

impl LevelIterator {
    /// Creates an iterator over `files`, which must be disjoint and sorted
    /// by smallest key.
    #[must_use]
    pub fn new(files: Vec<Arc<FileMeta>>, table_cache: Arc<TableCache>) -> Self {
        LevelIterator {
            files,
            table_cache,
            file_index: 0,
            current: None,
            readahead_blocks: None,
            status: Ok(()),
        }
    }

    /// [`LevelIterator::new`] with an explicit readahead depth (used by
    /// compaction, whose strictly sequential scans benefit from deeper
    /// prefetch than point-query-heavy foreground iterators).
    #[must_use]
    pub fn new_with_readahead(
        files: Vec<Arc<FileMeta>>,
        table_cache: Arc<TableCache>,
        readahead_blocks: usize,
    ) -> Self {
        LevelIterator {
            files,
            table_cache,
            file_index: 0,
            current: None,
            readahead_blocks: Some(readahead_blocks),
            status: Ok(()),
        }
    }

    fn open_file(&mut self, index: usize) {
        self.current = None;
        self.file_index = index;
        if index >= self.files.len() {
            return;
        }
        match self.table_cache.get(self.files[index].number) {
            Ok(table) => {
                self.current = Some(match self.readahead_blocks {
                    Some(k) => table.iter_with_readahead(k),
                    None => table.iter(),
                });
            }
            Err(e) => self.status = Err(e),
        }
    }

    fn advance_past_empty(&mut self) {
        loop {
            match &self.current {
                Some(it) if it.valid() => return,
                _ => {
                    if self.status.is_err() || self.file_index + 1 >= self.files.len() {
                        self.current = None;
                        return;
                    }
                    let next = self.file_index + 1;
                    self.open_file(next);
                    if let Some(it) = &mut self.current {
                        it.seek_to_first();
                    }
                }
            }
        }
    }
}

impl InternalIterator for LevelIterator {
    fn valid(&self) -> bool {
        self.current.as_ref().is_some_and(InternalIterator::valid)
    }

    fn seek_to_first(&mut self) {
        if self.files.is_empty() {
            self.current = None;
            return;
        }
        self.open_file(0);
        if let Some(it) = &mut self.current {
            it.seek_to_first();
        }
        self.advance_past_empty();
    }

    fn seek(&mut self, target: &[u8]) {
        let user = extract_user_key(target);
        let idx = self.files.partition_point(|f| f.largest_user_key() < user);
        if idx >= self.files.len() {
            self.current = None;
            self.file_index = self.files.len();
            return;
        }
        self.open_file(idx);
        if let Some(it) = &mut self.current {
            it.seek(target);
        }
        self.advance_past_empty();
    }

    fn next(&mut self) {
        if let Some(it) = &mut self.current {
            it.next();
        }
        self.advance_past_empty();
    }

    fn key(&self) -> &[u8] {
        self.current.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.current.as_ref().expect("valid").value()
    }

    fn status(&self) -> Result<()> {
        self.status.clone()?;
        if let Some(it) = &self.current {
            it.status()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::builder::{TableBuilder, TableBuilderOptions};
    use crate::types::make_internal_key;
    use crate::version::filenames::sst_file_name;
    use shield_env::{Env, FileKind, MemEnv};

    /// Builds an SST with the given user keys (seq 10) and returns meta.
    fn build(env: &MemEnv, number: u64, keys: &[&str]) -> Arc<FileMeta> {
        let path = shield_env::join_path("db", &sst_file_name(number));
        let file = env.new_writable_file(&path, FileKind::Sst).unwrap();
        let mut b = TableBuilder::new(file, TableBuilderOptions::default());
        let mut sorted: Vec<&str> = keys.to_vec();
        sorted.sort_unstable();
        for k in &sorted {
            let ik = make_internal_key(k.as_bytes(), 10, ValueType::Value);
            b.add(&ik, format!("{k}@{number}").as_bytes()).unwrap();
        }
        let (_, size) = b.finish().unwrap();
        Arc::new(FileMeta {
            number,
            file_size: size,
            smallest: make_internal_key(sorted.first().unwrap().as_bytes(), 10, ValueType::Value),
            largest: make_internal_key(sorted.last().unwrap().as_bytes(), 10, ValueType::Value),
            dek_id: None,
        })
    }

    fn cache(env: &MemEnv) -> Arc<TableCache> {
        TableCache::new(Arc::new(env.clone()), "db".into(), None, None, 16)
    }

    #[test]
    fn get_prefers_newer_l0_file() {
        let env = MemEnv::new();
        let old = build(&env, 1, &["k"]);
        let new = build(&env, 2, &["k"]);
        let mut v = Version::new();
        // L0 newest first.
        v.files[0] = vec![new, old];
        let tc = cache(&env);
        assert_eq!(v.get(&tc, b"k", 100).unwrap(), GetResult::Found(b"k@2".to_vec()));
    }

    #[test]
    fn get_searches_deeper_levels() {
        let env = MemEnv::new();
        let l1 = build(&env, 3, &["a", "m"]);
        let l2 = build(&env, 4, &["z"]);
        let mut v = Version::new();
        v.files[1] = vec![l1];
        v.files[2] = vec![l2];
        let tc = cache(&env);
        assert_eq!(v.get(&tc, b"m", 100).unwrap(), GetResult::Found(b"m@3".to_vec()));
        assert_eq!(v.get(&tc, b"z", 100).unwrap(), GetResult::Found(b"z@4".to_vec()));
        assert_eq!(v.get(&tc, b"q", 100).unwrap(), GetResult::NotFound);
    }

    #[test]
    fn multi_get_matches_serial_gets_across_levels() {
        let env = MemEnv::new();
        let l0_new = build(&env, 5, &["b", "k"]);
        let l0_old = build(&env, 4, &["b", "x"]);
        let l1a = build(&env, 1, &["a", "c"]);
        let l1b = build(&env, 2, &["m", "p"]);
        let l2 = build(&env, 3, &["z"]);
        let mut v = Version::new();
        v.files[0] = vec![l0_new, l0_old]; // newest first
        v.files[1] = vec![l1a, l1b];
        v.files[2] = vec![l2];
        let tc = cache(&env);
        let keys: Vec<&[u8]> =
            vec![b"a", b"b", b"c", b"k", b"m", b"p", b"q", b"x", b"z", b"zz"];
        let batched = v.multi_get_opt(&tc, &keys, 100, true);
        for (key, got) in keys.iter().zip(batched) {
            let serial = v.get(&tc, key, 100).unwrap();
            assert_eq!(got.unwrap(), serial, "divergence on {:?}", String::from_utf8_lossy(key));
        }
        // Spot-check shadowing: "b" must come from the newer L0 file.
        let got = v.multi_get_opt(&tc, &[b"b"], 100, true);
        assert_eq!(got[0].as_ref().unwrap(), &GetResult::Found(b"b@5".to_vec()));
    }

    #[test]
    fn overlapping_files_filters_by_range() {
        let env = MemEnv::new();
        let a = build(&env, 1, &["a", "c"]);
        let b = build(&env, 2, &["e", "g"]);
        let c = build(&env, 3, &["i", "k"]);
        let mut v = Version::new();
        v.files[1] = vec![a, b, c];
        let hits = v.overlapping_files(1, Some(b"d"), Some(b"h"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].number, 2);
        let all = v.overlapping_files(1, None, None);
        assert_eq!(all.len(), 3);
        // Boundary inclusivity.
        let edge = v.overlapping_files(1, Some(b"g"), Some(b"i"));
        assert_eq!(edge.len(), 2);
    }

    #[test]
    fn level_iterator_concatenates() {
        let env = MemEnv::new();
        let f1 = build(&env, 1, &["a", "b"]);
        let f2 = build(&env, 2, &["c", "d"]);
        let tc = cache(&env);
        let mut it = LevelIterator::new(vec![f1, f2], tc);
        it.seek_to_first();
        let mut keys = Vec::new();
        while it.valid() {
            keys.push(extract_user_key(it.key()).to_vec());
            it.next();
        }
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]);
        // Seek into the second file directly.
        it.seek(&make_internal_key(b"c", u64::MAX >> 8, ValueType::Value));
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"c");
        it.seek(&make_internal_key(b"x", u64::MAX >> 8, ValueType::Value));
        assert!(!it.valid());
    }

    #[test]
    fn version_iterators_cover_all_sources() {
        let env = MemEnv::new();
        let l0a = build(&env, 1, &["a"]);
        let l0b = build(&env, 2, &["b"]);
        let l1 = build(&env, 3, &["c", "d"]);
        let mut v = Version::new();
        v.files[0] = vec![l0b, l0a];
        v.files[1] = vec![l1];
        let tc = cache(&env);
        let iters = v.iterators(&tc).unwrap();
        assert_eq!(iters.len(), 3); // two L0 + one level iterator
        let mut m = crate::iter::MergingIterator::new(iters);
        m.seek_to_first();
        let mut n = 0;
        while m.valid() {
            n += 1;
            m.next();
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn level_size_accounting() {
        let env = MemEnv::new();
        let f = build(&env, 1, &["a"]);
        let size = f.file_size;
        let mut v = Version::new();
        v.files[1] = vec![f];
        assert_eq!(v.level_size(1), size);
        assert_eq!(v.level_size(0), 0);
        assert_eq!(v.total_files(), 1);
        assert_eq!(v.live_files(), vec![1]);
    }
}
