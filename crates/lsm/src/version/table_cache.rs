//! Keeps recently used [`Table`] readers open, keyed by file number.
//!
//! Opening a table in SHIELD mode reads the plaintext file header, resolves
//! the DEK (secure cache → KDS), and builds the decryption context — so
//! this cache is also what bounds DEK-resolution traffic on the read path.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use shield_env::{Env, FileKind};

use crate::cache::BlockCache;
use crate::encryption::EncryptionConfig;
use crate::error::Result;
use crate::integrity::{Integrity, IntegrityOptions, ReadIntegrity};
use crate::sst::{BlockFetcher, Table};
use crate::version::filenames::sst_file_name;

struct Inner {
    tables: HashMap<u64, (Arc<Table>, u64)>,
    tick: u64,
}

/// An LRU cache of open table readers.
///
/// Owns the engine's one [`BlockFetcher`]: every table opened here shares
/// its block cache, single-flight table, and prefetch pool.
pub struct TableCache {
    env: Arc<dyn Env>,
    db_path: String,
    encryption: Option<EncryptionConfig>,
    fetcher: Arc<BlockFetcher>,
    stats: Option<Arc<crate::statistics::Statistics>>,
    integrity: IntegrityOptions,
    events: Option<Arc<shield_core::EventDispatcher>>,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TableCache {
    /// Creates a cache holding at most `capacity` open tables.
    #[must_use]
    pub fn new(
        env: Arc<dyn Env>,
        db_path: String,
        encryption: Option<EncryptionConfig>,
        block_cache: Option<Arc<BlockCache>>,
        capacity: usize,
    ) -> Arc<Self> {
        Self::new_with_stats(
            env,
            db_path,
            encryption,
            block_cache,
            None,
            capacity,
            0,
            crate::sst::fetcher::DEFAULT_INFLIGHT_READS,
            IntegrityOptions::default(),
            None,
        )
    }

    /// [`TableCache::new`] with an engine ticker sink handed to every
    /// opened [`Table`] (for `bloom_useful` accounting), a default
    /// readahead depth for iterators over these tables, the in-flight
    /// depth for batched reads, and the engine's integrity settings plus
    /// the event sink violations report to.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_stats(
        env: Arc<dyn Env>,
        db_path: String,
        encryption: Option<EncryptionConfig>,
        block_cache: Option<Arc<BlockCache>>,
        stats: Option<Arc<crate::statistics::Statistics>>,
        capacity: usize,
        readahead_blocks: usize,
        max_inflight_reads: usize,
        integrity: IntegrityOptions,
        events: Option<Arc<shield_core::EventDispatcher>>,
    ) -> Arc<Self> {
        Arc::new(TableCache {
            env,
            db_path,
            encryption,
            fetcher: BlockFetcher::with_depth(block_cache, readahead_blocks, max_inflight_reads),
            stats,
            integrity,
            events,
            capacity: capacity.max(4),
            inner: Mutex::new(Inner { tables: HashMap::new(), tick: 0 }),
        })
    }

    /// The shared fetcher all tables opened by this cache read through.
    #[must_use]
    pub fn fetcher(&self) -> &Arc<BlockFetcher> {
        &self.fetcher
    }

    /// Returns the open table for `file_number`, opening it if needed.
    pub fn get(&self, file_number: u64) -> Result<Arc<Table>> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some((table, stamp)) = inner.tables.get_mut(&file_number) {
                *stamp = tick;
                return Ok(table.clone());
            }
        }
        // Open outside the lock: DEK resolution may hit the network.
        let path = shield_env::join_path(&self.db_path, &sst_file_name(file_number));
        // SHIELD files verify with a subkey of their own DEK; plaintext
        // files fall back to the engine-wide integrity key.
        let (file, dek_mac) = match &self.encryption {
            Some(cfg) => cfg.open_random_with_mac(self.env.as_ref(), &path, FileKind::Sst)?,
            None => (self.env.new_random_access_file(&path, FileKind::Sst)?, None),
        };
        let read_integrity = ReadIntegrity {
            key: dek_mac.unwrap_or(self.integrity.key),
            expect_hmac: self.integrity.mode == Integrity::Hmac,
            events: self.events.clone(),
        };
        let table = Arc::new(Table::open_with_fetcher(
            file,
            file_number,
            self.fetcher.clone(),
            self.stats.clone(),
            read_integrity,
        )?);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.tables.insert(file_number, (table.clone(), tick));
        while inner.tables.len() > self.capacity {
            let victim = inner
                .tables
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
                .expect("non-empty");
            inner.tables.remove(&victim);
        }
        Ok(table)
    }

    /// Drops the cached reader for a deleted file.
    pub fn evict(&self, file_number: u64) {
        self.inner.lock().tables.remove(&file_number);
    }

    /// Number of currently open tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().tables.len()
    }

    /// True if no tables are open.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::builder::{TableBuilder, TableBuilderOptions};
    use crate::types::{make_internal_key, ValueType};
    use shield_env::MemEnv;

    fn build(env: &MemEnv, number: u64) {
        let path = shield_env::join_path("db", &sst_file_name(number));
        let file = env.new_writable_file(&path, FileKind::Sst).unwrap();
        let mut b = TableBuilder::new(file, TableBuilderOptions::default());
        let ik = make_internal_key(format!("key-{number}").as_bytes(), 1, ValueType::Value);
        b.add(&ik, b"v").unwrap();
        b.finish().unwrap();
    }

    #[test]
    fn opens_and_caches() {
        let env = MemEnv::new();
        build(&env, 1);
        let cache = TableCache::new(Arc::new(env), "db".into(), None, None, 8);
        let a = cache.get(1).unwrap();
        let b = cache.get(1).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_lru_beyond_capacity() {
        let env = MemEnv::new();
        for n in 1..=10 {
            build(&env, n);
        }
        let cache = TableCache::new(Arc::new(env), "db".into(), None, None, 4);
        for n in 1..=10 {
            cache.get(n).unwrap();
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn explicit_evict() {
        let env = MemEnv::new();
        build(&env, 1);
        let cache = TableCache::new(Arc::new(env), "db".into(), None, None, 8);
        cache.get(1).unwrap();
        cache.evict(1);
        assert!(cache.is_empty());
    }

    #[test]
    fn missing_file_is_error() {
        let env = MemEnv::new();
        let cache = TableCache::new(Arc::new(env), "db".into(), None, None, 8);
        assert!(cache.get(42).is_err());
    }
}
