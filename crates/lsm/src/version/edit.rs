//! Version edits: the records appended to the MANIFEST.

use shield_crypto::DekId;

use crate::error::{Error, Result};
use crate::varint::{
    get_length_prefixed, get_varint32, get_varint64, put_length_prefixed, put_varint32,
    put_varint64,
};

/// Metadata for one SST file tracked by the version system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileMeta {
    /// File number (names the `.sst` file).
    pub number: u64,
    /// Size in bytes (logical, pre-encryption-header).
    pub file_size: u64,
    /// Smallest internal key in the file.
    pub smallest: Vec<u8>,
    /// Largest internal key in the file.
    pub largest: Vec<u8>,
    /// DEK protecting the file, if encrypted — duplicated here (as in the
    /// paper's LSM-KVS metadata embedding) so the version state alone is
    /// enough to prefetch DEKs for, e.g., offloaded compaction.
    pub dek_id: Option<DekId>,
}

impl FileMeta {
    /// Smallest user key.
    #[must_use]
    pub fn smallest_user_key(&self) -> &[u8] {
        crate::types::extract_user_key(&self.smallest)
    }

    /// Largest user key.
    #[must_use]
    pub fn largest_user_key(&self) -> &[u8] {
        crate::types::extract_user_key(&self.largest)
    }
}

const TAG_LOG_NUMBER: u32 = 1;
const TAG_NEXT_FILE: u32 = 2;
const TAG_LAST_SEQ: u32 = 3;
const TAG_DELETED_FILE: u32 = 4;
const TAG_NEW_FILE: u32 = 5;

/// A delta applied to the version state, persisted in the MANIFEST.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionEdit {
    /// New active WAL number (older WALs are obsolete once flushed).
    pub log_number: Option<u64>,
    /// High-water mark for file-number allocation.
    pub next_file_number: Option<u64>,
    /// Last sequence number used.
    pub last_sequence: Option<u64>,
    /// Files removed, as `(level, file_number)`.
    pub deleted_files: Vec<(u32, u64)>,
    /// Files added, as `(level, meta)`.
    pub new_files: Vec<(u32, FileMeta)>,
}

impl VersionEdit {
    /// Serializes the edit.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        if let Some(v) = self.log_number {
            put_varint32(&mut out, TAG_LOG_NUMBER);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.next_file_number {
            put_varint32(&mut out, TAG_NEXT_FILE);
            put_varint64(&mut out, v);
        }
        if let Some(v) = self.last_sequence {
            put_varint32(&mut out, TAG_LAST_SEQ);
            put_varint64(&mut out, v);
        }
        for (level, number) in &self.deleted_files {
            put_varint32(&mut out, TAG_DELETED_FILE);
            put_varint32(&mut out, *level);
            put_varint64(&mut out, *number);
        }
        for (level, meta) in &self.new_files {
            put_varint32(&mut out, TAG_NEW_FILE);
            put_varint32(&mut out, *level);
            put_varint64(&mut out, meta.number);
            put_varint64(&mut out, meta.file_size);
            put_length_prefixed(&mut out, &meta.smallest);
            put_length_prefixed(&mut out, &meta.largest);
            match meta.dek_id {
                Some(id) => {
                    out.push(1);
                    out.extend_from_slice(&id.to_bytes());
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Parses an edit.
    pub fn decode(mut data: &[u8]) -> Result<VersionEdit> {
        let corrupt = |m: &str| Error::Corruption(format!("version edit: {m}"));
        let mut edit = VersionEdit::default();
        while !data.is_empty() {
            let (tag, n) = get_varint32(data).ok_or_else(|| corrupt("bad tag"))?;
            data = &data[n..];
            match tag {
                TAG_LOG_NUMBER | TAG_NEXT_FILE | TAG_LAST_SEQ => {
                    let (v, n) = get_varint64(data).ok_or_else(|| corrupt("bad u64"))?;
                    data = &data[n..];
                    match tag {
                        TAG_LOG_NUMBER => edit.log_number = Some(v),
                        TAG_NEXT_FILE => edit.next_file_number = Some(v),
                        _ => edit.last_sequence = Some(v),
                    }
                }
                TAG_DELETED_FILE => {
                    let (level, n) = get_varint32(data).ok_or_else(|| corrupt("bad level"))?;
                    data = &data[n..];
                    let (number, n) = get_varint64(data).ok_or_else(|| corrupt("bad number"))?;
                    data = &data[n..];
                    edit.deleted_files.push((level, number));
                }
                TAG_NEW_FILE => {
                    let (level, n) = get_varint32(data).ok_or_else(|| corrupt("bad level"))?;
                    data = &data[n..];
                    let (number, n) = get_varint64(data).ok_or_else(|| corrupt("bad number"))?;
                    data = &data[n..];
                    let (file_size, n) =
                        get_varint64(data).ok_or_else(|| corrupt("bad size"))?;
                    data = &data[n..];
                    let (smallest, n) =
                        get_length_prefixed(data).ok_or_else(|| corrupt("bad smallest"))?;
                    let smallest = smallest.to_vec();
                    data = &data[n..];
                    let (largest, n) =
                        get_length_prefixed(data).ok_or_else(|| corrupt("bad largest"))?;
                    let largest = largest.to_vec();
                    data = &data[n..];
                    let dek_id = match data.first() {
                        Some(0) => {
                            data = &data[1..];
                            None
                        }
                        Some(1) => {
                            if data.len() < 17 {
                                return Err(corrupt("truncated dek id"));
                            }
                            let id = DekId::from_bytes(data[1..17].try_into().unwrap());
                            data = &data[17..];
                            Some(id)
                        }
                        _ => return Err(corrupt("bad dek flag")),
                    };
                    edit.new_files.push((
                        level,
                        FileMeta { number, file_size, smallest, largest, dek_id },
                    ));
                }
                other => return Err(corrupt(&format!("unknown tag {other}"))),
            }
        }
        Ok(edit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};

    fn sample_meta(number: u64) -> FileMeta {
        FileMeta {
            number,
            file_size: 4096,
            smallest: make_internal_key(b"aaa", 5, ValueType::Value),
            largest: make_internal_key(b"zzz", 90, ValueType::Value),
            dek_id: Some(DekId(number as u128 * 7)),
        }
    }

    #[test]
    fn roundtrip_full_edit() {
        let edit = VersionEdit {
            log_number: Some(12),
            next_file_number: Some(44),
            last_sequence: Some(99_999),
            deleted_files: vec![(0, 3), (1, 8)],
            new_files: vec![(0, sample_meta(10)), (2, sample_meta(11))],
        };
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
    }

    #[test]
    fn roundtrip_empty_and_partial() {
        let edit = VersionEdit::default();
        assert_eq!(VersionEdit::decode(&edit.encode()).unwrap(), edit);
        let edit = VersionEdit { last_sequence: Some(5), ..VersionEdit::default() };
        assert_eq!(VersionEdit::decode(&edit.encode()).unwrap(), edit);
    }

    #[test]
    fn plaintext_file_meta() {
        let meta = FileMeta { dek_id: None, ..sample_meta(1) };
        let edit = VersionEdit { new_files: vec![(3, meta)], ..VersionEdit::default() };
        assert_eq!(VersionEdit::decode(&edit.encode()).unwrap(), edit);
    }

    #[test]
    fn truncated_edit_rejected() {
        let edit = VersionEdit { new_files: vec![(0, sample_meta(1))], ..VersionEdit::default() };
        let enc = edit.encode();
        assert!(VersionEdit::decode(&enc[..enc.len() - 5]).is_err());
    }

    #[test]
    fn user_key_accessors() {
        let m = sample_meta(1);
        assert_eq!(m.smallest_user_key(), b"aaa");
        assert_eq!(m.largest_user_key(), b"zzz");
    }
}
