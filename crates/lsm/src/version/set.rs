//! The version set: current [`Version`], MANIFEST persistence, and
//! file-number / sequence-number allocation.

use std::collections::HashSet;
use std::sync::{Arc, Weak};

use shield_env::{Env, FileKind};

use crate::encryption::EncryptionConfig;
use crate::error::{Error, Result};
use crate::integrity::{Integrity, IntegrityOptions};
use crate::version::edit::{FileMeta, VersionEdit};
use crate::version::filenames::{current_file_name, manifest_file_name};
use crate::version::table_cache::TableCache;
use crate::version::version::{Version, NUM_LEVELS};
use crate::wal::{LogReader, LogWriter};

/// Owns the mutable metadata state of a database.
pub struct VersionSet {
    env: Arc<dyn Env>,
    path: String,
    encryption: Option<EncryptionConfig>,
    table_cache: Arc<TableCache>,
    current: Arc<Version>,
    /// Superseded versions that may still be pinned by in-flight readers
    /// (a `get`/iterator clones the current `Arc<Version>` and then reads
    /// its files without the state lock). Obsolete-file deletion must
    /// treat their files as live until the last reader drops its pin.
    retired: Vec<Weak<Version>>,
    integrity: IntegrityOptions,
    manifest: Option<LogWriter>,
    manifest_number: u64,
    next_file_number: u64,
    last_sequence: u64,
    log_number: u64,
}

impl VersionSet {
    /// Creates an empty, not-yet-recovered version set.
    #[must_use]
    pub fn new(
        env: Arc<dyn Env>,
        path: String,
        encryption: Option<EncryptionConfig>,
        table_cache: Arc<TableCache>,
    ) -> Self {
        VersionSet {
            env,
            path,
            encryption,
            table_cache,
            current: Arc::new(Version::new()),
            retired: Vec::new(),
            integrity: IntegrityOptions::default(),
            manifest: None,
            manifest_number: 0,
            next_file_number: 1,
            last_sequence: 0,
            log_number: 0,
        }
    }

    /// Sets the integrity settings used for manifests written (and
    /// verified) by this set. Call before [`create_new`](Self::create_new)
    /// or [`recover`](Self::recover).
    pub fn set_integrity(&mut self, integrity: IntegrityOptions) {
        self.integrity = integrity;
    }

    /// The current version.
    #[must_use]
    pub fn current(&self) -> Arc<Version> {
        self.current.clone()
    }

    /// The table cache shared with readers.
    #[must_use]
    pub fn table_cache(&self) -> Arc<TableCache> {
        self.table_cache.clone()
    }

    /// Allocates a fresh file number.
    pub fn new_file_number(&mut self) -> u64 {
        let n = self.next_file_number;
        self.next_file_number += 1;
        n
    }

    /// Last sequence number assigned to a write.
    #[must_use]
    pub fn last_sequence(&self) -> u64 {
        self.last_sequence
    }

    /// Updates the last sequence number (monotonic).
    pub fn set_last_sequence(&mut self, seq: u64) {
        debug_assert!(seq >= self.last_sequence);
        self.last_sequence = seq;
    }

    /// The WAL number new writes go to.
    #[must_use]
    pub fn log_number(&self) -> u64 {
        self.log_number
    }

    /// The manifest file number currently in use.
    #[must_use]
    pub fn manifest_number(&self) -> u64 {
        self.manifest_number
    }

    /// True if a database exists at this path (a CURRENT file is present).
    #[must_use]
    pub fn db_exists(env: &dyn Env, path: &str) -> bool {
        env.file_exists(&shield_env::join_path(path, &current_file_name()))
    }

    /// Initializes a brand-new database: writes an initial manifest and the
    /// CURRENT pointer.
    pub fn create_new(&mut self) -> Result<()> {
        self.log_number = 0;
        self.roll_manifest()
    }

    /// Recovers state from the CURRENT → MANIFEST chain, then rolls to a
    /// fresh manifest (so recovery always leaves a compact snapshot).
    pub fn recover(&mut self) -> Result<()> {
        let current_path = shield_env::join_path(&self.path, &current_file_name());
        let name = shield_env::read_file_to_vec(self.env.as_ref(), &current_path, FileKind::Manifest)?;
        let name = String::from_utf8(name)
            .map_err(|_| Error::Corruption("CURRENT not utf-8".into()))?;
        let name = name.trim().to_string();
        let manifest_path = shield_env::join_path(&self.path, &name);
        let (file, dek_mac) = match &self.encryption {
            Some(cfg) => {
                cfg.open_sequential_with_mac(self.env.as_ref(), &manifest_path, FileKind::Manifest)?
            }
            None => (self.env.new_sequential_file(&manifest_path, FileKind::Manifest)?, None),
        };
        // Always hand the reader a key: authenticated manifests verify
        // regardless of the current mode (format-driven verification).
        let mut reader =
            LogReader::with_integrity(file, Some(dek_mac.unwrap_or(self.integrity.key)));
        let mut builder = Builder::new(Version::new());
        let mut next_file = self.next_file_number;
        let mut last_seq = self.last_sequence;
        let mut log_number = self.log_number;
        while let Some(record) = reader.read_record()? {
            let edit = VersionEdit::decode(&record)?;
            if let Some(v) = edit.next_file_number {
                next_file = next_file.max(v);
            }
            if let Some(v) = edit.last_sequence {
                last_seq = last_seq.max(v);
            }
            if let Some(v) = edit.log_number {
                log_number = log_number.max(v);
            }
            builder.apply(&edit);
        }
        self.current = Arc::new(builder.finish());
        self.next_file_number = next_file;
        self.last_sequence = last_seq;
        self.log_number = log_number;
        // Keep allocation above every file we have seen.
        let max_seen = self.current.live_files().into_iter().max().unwrap_or(0);
        self.next_file_number = self.next_file_number.max(max_seen + 1);
        // Roll to a fresh manifest and retire the old one.
        let old_manifest = manifest_path;
        self.roll_manifest()?;
        if let Some(cfg) = &self.encryption {
            cfg.note_file_deleted(self.env.as_ref(), &old_manifest, FileKind::Manifest)?;
        }
        let _ = self.env.remove_file(&old_manifest);
        Ok(())
    }

    /// Loads version state **without mutating anything on disk** — no
    /// manifest roll, no CURRENT rewrite. This is what read-only instances
    /// (paper §2.2's on-demand readers over shared DS files) use: they may
    /// not write to the shared directory. Returns the reconstructed
    /// version plus `(last_sequence, log_number)`.
    pub fn load_read_only(
        env: &dyn Env,
        path: &str,
        encryption: Option<&EncryptionConfig>,
        integrity: IntegrityOptions,
    ) -> Result<(Version, u64, u64)> {
        let current_path = shield_env::join_path(path, &current_file_name());
        let name = shield_env::read_file_to_vec(env, &current_path, FileKind::Manifest)?;
        let name = String::from_utf8(name)
            .map_err(|_| Error::Corruption("CURRENT not utf-8".into()))?;
        let manifest_path = shield_env::join_path(path, name.trim());
        let (file, dek_mac) = match encryption {
            Some(cfg) => cfg.open_sequential_with_mac(env, &manifest_path, FileKind::Manifest)?,
            None => (env.new_sequential_file(&manifest_path, FileKind::Manifest)?, None),
        };
        let mut reader = LogReader::with_integrity(file, Some(dek_mac.unwrap_or(integrity.key)));
        let mut builder = Builder::new(Version::new());
        let mut last_seq = 0u64;
        let mut log_number = 0u64;
        while let Some(record) = reader.read_record()? {
            let edit = VersionEdit::decode(&record)?;
            if let Some(v) = edit.last_sequence {
                last_seq = last_seq.max(v);
            }
            if let Some(v) = edit.log_number {
                log_number = log_number.max(v);
            }
            builder.apply(&edit);
        }
        Ok((builder.finish(), last_seq, log_number))
    }

    /// Starts a new manifest containing a full snapshot of current state,
    /// then repoints CURRENT at it.
    fn roll_manifest(&mut self) -> Result<()> {
        let number = self.new_file_number();
        let name = manifest_file_name(number);
        let manifest_path = shield_env::join_path(&self.path, &name);
        let (file, dek_mac) = match &self.encryption {
            Some(cfg) => {
                let (f, _, mac) =
                    cfg.new_writable_with_mac(self.env.as_ref(), &manifest_path, FileKind::Manifest)?;
                (f, mac)
            }
            None => (self.env.new_writable_file(&manifest_path, FileKind::Manifest)?, None),
        };
        let mac_key = (self.integrity.mode == Integrity::Hmac)
            .then(|| dek_mac.unwrap_or(self.integrity.key));
        let mut writer = LogWriter::with_integrity(file, mac_key)?;
        // Snapshot edit.
        let mut snapshot = VersionEdit {
            log_number: Some(self.log_number),
            next_file_number: Some(self.next_file_number),
            last_sequence: Some(self.last_sequence),
            ..VersionEdit::default()
        };
        for (level, files) in self.current.files.iter().enumerate() {
            for f in files {
                snapshot.new_files.push((level as u32, (**f).clone()));
            }
        }
        writer.add_record(&snapshot.encode())?;
        writer.sync()?;
        self.manifest = Some(writer);
        self.manifest_number = number;
        shield_env::write_file_atomic(
            self.env.as_ref(),
            &shield_env::join_path(&self.path, &current_file_name()),
            FileKind::Manifest,
            name.as_bytes(),
        )?;
        Ok(())
    }

    /// Appends `edit` to the manifest and installs the resulting version.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<Arc<Version>> {
        match edit.log_number {
            None => edit.log_number = Some(self.log_number),
            Some(n) => self.log_number = n,
        }
        edit.next_file_number = Some(self.next_file_number);
        edit.last_sequence = Some(self.last_sequence);
        let writer = self.manifest.as_mut().ok_or(Error::Shutdown)?;
        writer.add_record(&edit.encode())?;
        writer.sync()?;
        let mut builder = Builder::new((*self.current).clone());
        builder.apply(&edit);
        let next = Arc::new(builder.finish());
        self.retired.push(Arc::downgrade(&self.current));
        self.current = next.clone();
        Ok(next)
    }

    /// File numbers referenced by the current version or by any
    /// superseded version an in-flight reader still pins. Dropped pins
    /// are pruned as a side effect; their files count as live until the
    /// next call, so deletion is at worst deferred, never premature.
    pub fn referenced_files(&mut self) -> HashSet<u64> {
        let mut live: HashSet<u64> = self.current.live_files().into_iter().collect();
        self.retired.retain(|weak| {
            weak.upgrade().is_some_and(|version| {
                live.extend(version.live_files());
                true
            })
        });
        live
    }
}

/// Applies edits to a base version, maintaining level ordering invariants.
struct Builder {
    files: Vec<Vec<Arc<FileMeta>>>,
}

impl Builder {
    fn new(base: Version) -> Self {
        let mut files = base.files;
        files.resize(NUM_LEVELS, Vec::new());
        Builder { files }
    }

    fn apply(&mut self, edit: &VersionEdit) {
        for (level, number) in &edit.deleted_files {
            let level = *level as usize;
            if level < self.files.len() {
                self.files[level].retain(|f| f.number != *number);
            }
        }
        for (level, meta) in &edit.new_files {
            let level = *level as usize;
            if level < self.files.len() {
                self.files[level].push(Arc::new(meta.clone()));
            }
        }
    }

    fn finish(mut self) -> Version {
        // L0: newest (highest number) first. L1+: by smallest key.
        self.files[0].sort_by_key(|f| std::cmp::Reverse(f.number));
        for level in self.files.iter_mut().skip(1) {
            level.sort_by(|a, b| a.smallest.cmp(&b.smallest));
        }
        Version { files: self.files }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{make_internal_key, ValueType};
    use shield_env::MemEnv;

    fn meta(number: u64, lo: &str, hi: &str) -> FileMeta {
        FileMeta {
            number,
            file_size: 100,
            smallest: make_internal_key(lo.as_bytes(), 1, ValueType::Value),
            largest: make_internal_key(hi.as_bytes(), 1, ValueType::Value),
            dek_id: None,
        }
    }

    fn new_set(env: &MemEnv) -> VersionSet {
        let tc = TableCache::new(Arc::new(env.clone()), "db".into(), None, None, 8);
        VersionSet::new(Arc::new(env.clone()), "db".into(), None, tc)
    }

    #[test]
    fn create_and_apply_edits() {
        let env = MemEnv::new();
        let mut vs = new_set(&env);
        vs.create_new().unwrap();
        assert!(VersionSet::db_exists(&env, "db"));
        let edit = VersionEdit {
            new_files: vec![(0, meta(10, "a", "m")), (0, meta(11, "n", "z"))],
            ..VersionEdit::default()
        };
        let v = vs.log_and_apply(edit).unwrap();
        assert_eq!(v.level_files(0), 2);
        // L0 newest first.
        assert_eq!(v.files[0][0].number, 11);
    }

    #[test]
    fn recover_replays_manifest() {
        let env = MemEnv::new();
        {
            let mut vs = new_set(&env);
            vs.create_new().unwrap();
            vs.set_last_sequence(500);
            vs.log_and_apply(VersionEdit {
                new_files: vec![(1, meta(10, "a", "m"))],
                log_number: Some(7),
                ..VersionEdit::default()
            })
            .unwrap();
            vs.log_and_apply(VersionEdit {
                new_files: vec![(1, meta(11, "n", "z"))],
                deleted_files: vec![(1, 10)],
                ..VersionEdit::default()
            })
            .unwrap();
        }
        let mut vs = new_set(&env);
        vs.recover().unwrap();
        let v = vs.current();
        assert_eq!(v.level_files(1), 1);
        assert_eq!(v.files[1][0].number, 11);
        assert_eq!(vs.last_sequence(), 500);
        assert_eq!(vs.log_number(), 7);
        // File numbers keep increasing after recovery.
        assert!(vs.new_file_number() > 11);
    }

    #[test]
    fn recover_rolls_manifest() {
        let env = MemEnv::new();
        let first_manifest;
        {
            let mut vs = new_set(&env);
            vs.create_new().unwrap();
            first_manifest = manifest_file_name(vs.manifest_number());
        }
        {
            let mut vs = new_set(&env);
            vs.recover().unwrap();
            let second = manifest_file_name(vs.manifest_number());
            assert_ne!(first_manifest, second);
            // Old manifest removed.
            assert!(!env.file_exists(&shield_env::join_path("db", &first_manifest)));
        }
    }

    #[test]
    fn levels_stay_sorted() {
        let env = MemEnv::new();
        let mut vs = new_set(&env);
        vs.create_new().unwrap();
        let v = vs
            .log_and_apply(VersionEdit {
                new_files: vec![(2, meta(20, "x", "z")), (2, meta(21, "a", "c"))],
                ..VersionEdit::default()
            })
            .unwrap();
        assert_eq!(v.files[2][0].number, 21); // "a" range sorts first
    }

    #[test]
    fn hmac_manifest_roundtrip_and_replay_detection() {
        let env = MemEnv::new();
        let key = [9u8; 32];
        let opts = IntegrityOptions { mode: Integrity::Hmac, key };
        {
            let mut vs = new_set(&env);
            vs.set_integrity(opts);
            vs.create_new().unwrap();
            vs.log_and_apply(VersionEdit {
                new_files: vec![(1, meta(10, "a", "z"))],
                ..VersionEdit::default()
            })
            .unwrap();
        }
        let manifest;
        {
            let mut vs = new_set(&env);
            vs.set_integrity(opts);
            vs.recover().unwrap();
            assert_eq!(vs.current().level_files(1), 1);
            manifest = manifest_file_name(vs.manifest_number());
        }
        // Replay attack: append a copy of the manifest's records. Every
        // CRC stays valid; the fragment counters do not.
        let path = shield_env::join_path("db", &manifest);
        let mut raw = env.raw_content(&path).unwrap();
        assert_eq!(&raw[..8], b"SHLDLOG2");
        let dup = raw[crate::wal::LOG_PREAMBLE_LEN..].to_vec();
        raw.extend_from_slice(&dup);
        env.set_raw_content(&path, raw).unwrap();
        let mut vs = new_set(&env);
        vs.set_integrity(opts);
        let err = vs.recover().unwrap_err();
        assert!(matches!(err, Error::IntegrityViolation(_)), "got {err:?}");
    }

    #[test]
    fn encrypted_manifest_roundtrip() {
        use shield_crypto::Algorithm;
        use shield_kds::{DekResolver, KdsConfig, LocalKds, ServerId};

        let env = MemEnv::new();
        let kds = Arc::new(LocalKds::new(KdsConfig::default()));
        let resolver =
            Arc::new(DekResolver::new(kds, None, ServerId(1), Algorithm::Aes128Ctr));
        let cfg = EncryptionConfig::new(resolver);
        let tc = TableCache::new(Arc::new(env.clone()), "db".into(), Some(cfg.clone()), None, 8);
        {
            let mut vs =
                VersionSet::new(Arc::new(env.clone()), "db".into(), Some(cfg.clone()), tc.clone());
            vs.create_new().unwrap();
            vs.log_and_apply(VersionEdit {
                new_files: vec![(1, meta(10, "secretkey-a", "secretkey-z"))],
                ..VersionEdit::default()
            })
            .unwrap();
            // Manifest on disk must not leak key-range plaintext.
            let name = manifest_file_name(vs.manifest_number());
            let raw = env.raw_content(&shield_env::join_path("db", &name)).unwrap();
            assert!(!raw.windows(9).any(|w| w == b"secretkey"));
        }
        let mut vs = VersionSet::new(Arc::new(env.clone()), "db".into(), Some(cfg), tc);
        vs.recover().unwrap();
        assert_eq!(vs.current().level_files(1), 1);
    }
}
