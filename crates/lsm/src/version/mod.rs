//! Versioned metadata: which SST files exist at which level, persisted as
//! a log of [`VersionEdit`]s in the MANIFEST file (itself encrypted under
//! its own DEK in SHIELD mode).

pub mod edit;
pub mod filenames;
pub mod set;
pub mod table_cache;
#[allow(clippy::module_inception)]
pub mod version;

pub use edit::{FileMeta, VersionEdit};
pub use filenames::{
    current_file_name, manifest_file_name, parse_file_name, sst_file_name, wal_file_name,
    FileType,
};
pub use set::VersionSet;
pub use table_cache::TableCache;
pub use version::{Version, NUM_LEVELS};
