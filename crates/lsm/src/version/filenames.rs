//! Database file naming, RocksDB-style: `000007.log`, `000012.sst`,
//! `MANIFEST-000003`, `CURRENT`.

/// Kinds of files found in a database directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileType {
    /// Write-ahead log segment with its file number.
    Wal(u64),
    /// Table file with its file number.
    Sst(u64),
    /// Manifest with its file number.
    Manifest(u64),
    /// The CURRENT pointer file.
    Current,
    /// Secure DEK cache.
    DekCache,
    /// Temporary file (mid-rename).
    Temp,
}

/// Name of WAL segment `number`.
#[must_use]
pub fn wal_file_name(number: u64) -> String {
    format!("{number:06}.log")
}

/// Name of SST file `number`.
#[must_use]
pub fn sst_file_name(number: u64) -> String {
    format!("{number:06}.sst")
}

/// Name of manifest file `number`.
#[must_use]
pub fn manifest_file_name(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

/// The CURRENT pointer file name.
#[must_use]
pub fn current_file_name() -> String {
    "CURRENT".to_string()
}

/// Classifies a file name from the database directory.
#[must_use]
pub fn parse_file_name(name: &str) -> Option<FileType> {
    if name == "CURRENT" {
        return Some(FileType::Current);
    }
    if name == "DEK_CACHE" {
        return Some(FileType::DekCache);
    }
    if name.ends_with(".tmp") {
        return Some(FileType::Temp);
    }
    if let Some(num) = name.strip_prefix("MANIFEST-") {
        return num.parse().ok().map(FileType::Manifest);
    }
    if let Some(num) = name.strip_suffix(".log") {
        return num.parse().ok().map(FileType::Wal);
    }
    if let Some(num) = name.strip_suffix(".sst") {
        return num.parse().ok().map(FileType::Sst);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(parse_file_name(&wal_file_name(7)), Some(FileType::Wal(7)));
        assert_eq!(parse_file_name(&sst_file_name(12)), Some(FileType::Sst(12)));
        assert_eq!(parse_file_name(&manifest_file_name(3)), Some(FileType::Manifest(3)));
        assert_eq!(parse_file_name("CURRENT"), Some(FileType::Current));
        assert_eq!(parse_file_name("DEK_CACHE"), Some(FileType::DekCache));
        assert_eq!(parse_file_name("x.tmp"), Some(FileType::Temp));
        assert_eq!(parse_file_name("garbage"), None);
        assert_eq!(parse_file_name("xyz.sst"), None);
    }

    #[test]
    fn names_are_sortable_by_number() {
        assert!(wal_file_name(2) < wal_file_name(10));
        assert!(sst_file_name(99) < sst_file_name(100));
    }
}
