//! A from-scratch LSM-tree key-value store with SHIELD encryption embedded
//! in its write path.
//!
//! This crate reproduces the storage engine the SHIELD paper (SIGMOD 2025)
//! builds on — an LSM-KVS in the RocksDB/LevelDB lineage — plus the paper's
//! contribution: per-file Data Encryption Keys requested from a KDS, DEK
//! rotation as a side effect of compaction, an application-managed WAL
//! encryption buffer, chunked multi-threaded SST encryption, and plaintext
//! per-file metadata carrying only the DEK-ID.
//!
//! Architecture (paper Fig. 1):
//!
//! ```text
//!   Put/Delete ──► WriteBatch ──► group commit ──► WAL (encrypted, buffered)
//!                                      │
//!                                      ▼
//!                                  MemTable (arena skiplist)
//!                                      │ flush (encrypt at persist time)
//!                                      ▼
//!          L0 ── L1 ── … ── L6   SST files (leveled / universal / FIFO
//!                                compaction; outputs get fresh DEKs)
//! ```
//!
//! Entry point: [`Db`], configured by [`Options`]. Encryption is enabled by
//! [`Options::encryption`]; see [`encryption::EncryptionConfig`].

pub mod cache;
pub mod compaction;
pub mod db;
pub mod encryption;
pub mod error;
pub mod integrity;
pub mod iter;
pub mod memtable;
pub mod obs;
pub mod sst;
pub mod statistics;
pub mod types;
pub mod varint;
pub mod version;
pub mod wal;

pub use db::metrics::{LevelStats, MetricsReport, METRICS_SCHEMA, OP_TYPES};
pub use db::options::{CompactionStyle, Options, ReadOptions, WriteOptions};
pub use db::{Db, DbIterator, Snapshot, WriteBatch};
pub use encryption::EncryptionConfig;
pub use error::{Error, Result, Severity};
pub use integrity::{Integrity, IntegrityOptions};
// Observability vocabulary, re-exported from the dependency-free
// `shield-core` crate so embedders need only one `use shield_lsm::...`.
pub use shield_core::{
    Event, EventDispatcher, EventListener, Histogram, HistogramSummary, InfoLog, LogConfig,
    LogLevel, MetricsWindow, PerfContext, PerfGuard, SlowOp, SpanRecord, WINDOW_SCHEMA,
};
pub use statistics::{Statistics, StatsSnapshot};
pub use types::{SequenceNumber, ValueType};
