//! Engine-side observability wiring.
//!
//! The observability *types* (PerfContext, events, histograms) live in
//! the dependency-free `shield-core` crate so every layer can use them;
//! this module holds what needs the engine's own abstractions — chiefly
//! [`EnvLogSink`], which lands the rendered `LOG` lines in the DB
//! directory through whatever [`Env`] the DB runs on (local FS,
//! in-memory, remote), the same way RocksDB writes its `LOG` file.
//!
//! The `LOG` file name is deliberately opaque to
//! [`crate::version::filenames::parse_file_name`], so obsolete-file GC
//! and WAL recovery both skip it.

use parking_lot::Mutex;
use shield_core::LogSink;
use shield_env::{Env, EnvResult, FileKind, WritableFile};

/// File name of the engine event log inside the DB directory.
pub const LOG_FILE_NAME: &str = "LOG";

/// A [`LogSink`] appending newline-terminated lines to an [`Env`] file.
///
/// Lines are flushed (not synced) per write: the log must be promptly
/// visible to readers but never add an fsync to engine paths. Sink I/O
/// errors are swallowed — logging must never fail an operation.
pub struct EnvLogSink {
    file: Mutex<Box<dyn WritableFile>>,
}

impl EnvLogSink {
    /// Creates (truncating) `path` on `env`. The engine reopens — and
    /// thus truncates — the log on every `Db::open`.
    pub fn create(env: &dyn Env, path: &str) -> EnvResult<EnvLogSink> {
        let file = env.new_writable_file(path, FileKind::Other)?;
        Ok(EnvLogSink { file: Mutex::new(file) })
    }
}

impl LogSink for EnvLogSink {
    fn write_line(&self, line: &str) {
        let mut f = self.file.lock();
        let _ = f.append(line.as_bytes());
        let _ = f.append(b"\n");
        let _ = f.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_env::MemEnv;

    #[test]
    fn writes_lines_through_env() {
        let env = MemEnv::new();
        let sink = EnvLogSink::create(&env, "LOG").unwrap();
        sink.write_line("alpha");
        sink.write_line("beta");
        drop(sink);
        let data = shield_env::read_file_to_vec(&env, "LOG", FileKind::Other).unwrap();
        assert_eq!(String::from_utf8(data).unwrap(), "alpha\nbeta\n");
    }
}
