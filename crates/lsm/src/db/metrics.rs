//! The metrics report pipeline: per-operation latency histograms and the
//! [`MetricsReport`] produced by [`crate::Db::metrics_report`].
//!
//! The report is the engine's attribution story in one artifact: per-level
//! shape (files/bytes, read/write amplification), per-op latency quantiles
//! from the in-engine [`AtomicHistogram`]s, and every ticker — rendered
//! both as a human-readable table ([`MetricsReport::render`]) and as the
//! stable JSON schema `shield_metrics_v1` ([`MetricsReport::to_json`])
//! that the bench driver writes as a sidecar next to every experiment.

use std::fmt::Write as _;

use shield_core::{AtomicHistogram, HistogramSummary, JsonBuilder, MetricsWindow};

use crate::statistics::StatsSnapshot;

/// The `schema` field value of the JSON report.
pub const METRICS_SCHEMA: &str = "shield_metrics_v1";

/// Operation types with an in-engine latency histogram.
pub const OP_TYPES: [&str; 8] =
    ["get", "multi_get", "put", "write_batch", "iter_next", "flush", "compaction", "subcompaction"];

/// One [`AtomicHistogram`] per op type; lives in `DbInner` and is
/// recorded by foreground ops and background jobs alike.
#[derive(Default)]
pub(crate) struct OpHistograms {
    pub get: AtomicHistogram,
    pub multi_get: AtomicHistogram,
    pub put: AtomicHistogram,
    pub write_batch: AtomicHistogram,
    pub iter_next: AtomicHistogram,
    pub flush: AtomicHistogram,
    pub compaction: AtomicHistogram,
    pub subcompaction: AtomicHistogram,
}

impl OpHistograms {
    /// Snapshot summaries in [`OP_TYPES`] order.
    pub fn summaries(&self) -> Vec<(&'static str, HistogramSummary)> {
        vec![
            ("get", self.get.snapshot().summary()),
            ("multi_get", self.multi_get.snapshot().summary()),
            ("put", self.put.snapshot().summary()),
            ("write_batch", self.write_batch.snapshot().summary()),
            ("iter_next", self.iter_next.snapshot().summary()),
            ("flush", self.flush.snapshot().summary()),
            ("compaction", self.compaction.snapshot().summary()),
            ("subcompaction", self.subcompaction.snapshot().summary()),
        ]
    }
}

/// Shape of one LSM level.
#[derive(Debug, Clone, Copy)]
pub struct LevelStats {
    pub level: usize,
    pub files: usize,
    pub bytes: u64,
}

/// Everything [`crate::Db::metrics_report`] knows, in one report.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Non-empty levels (level 0 always included).
    pub levels: Vec<LevelStats>,
    /// Total bytes written to storage (flush + compaction output) per byte
    /// of user write (WAL bytes).
    pub write_amplification: f64,
    /// Worst-case tables consulted by a point lookup: every L0 file plus
    /// one per non-empty deeper level.
    pub read_amplification: u64,
    /// Per-op latency summaries, in [`OP_TYPES`] order.
    pub latencies: Vec<(&'static str, HistogramSummary)>,
    /// All tickers at report time (gauges already refreshed).
    pub tickers: StatsSnapshot,
    /// Recent windowed-stats intervals (`shield_metrics_window_v1`
    /// objects), oldest first. Empty unless `stats_dump_period` is set.
    pub windows: Vec<MetricsWindow>,
}

impl MetricsReport {
    /// The stable JSON document (`shield_metrics_v1`).
    ///
    /// Key order is fixed: `schema`, `levels`, `total_files`,
    /// `total_bytes`, `write_amplification`, `read_amplification`,
    /// `latencies_us` (one object per op with `count`/`mean`/`p50`/
    /// `p99`/`p999`/`max`), `tickers`, `gauges`, `windows`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_str("schema", METRICS_SCHEMA);
        j.open_arr("levels");
        for l in &self.levels {
            j.open_obj_item();
            j.field_u64("level", l.level as u64);
            j.field_u64("files", l.files as u64);
            j.field_u64("bytes", l.bytes);
            j.close_obj();
        }
        j.close_arr();
        j.field_u64("total_files", self.levels.iter().map(|l| l.files as u64).sum());
        j.field_u64("total_bytes", self.levels.iter().map(|l| l.bytes).sum());
        j.field_f64("write_amplification", self.write_amplification);
        j.field_u64("read_amplification", self.read_amplification);
        j.open_obj("latencies_us");
        for (op, s) in &self.latencies {
            j.open_obj(op);
            j.field_u64("count", s.count);
            j.field_f64("mean", s.mean_us);
            j.field_f64("p50", s.p50_us);
            j.field_f64("p99", s.p99_us);
            j.field_f64("p999", s.p999_us);
            j.field_f64("max", s.max_us);
            j.close_obj();
        }
        j.close_obj();
        j.open_obj("tickers");
        for (name, value) in self.tickers.counters() {
            j.field_u64(name, value);
        }
        j.close_obj();
        j.open_obj("gauges");
        for (name, value) in self.tickers.gauges() {
            j.field_u64(name, value);
        }
        j.close_obj();
        j.open_arr("windows");
        for w in &self.windows {
            w.push_json(&mut j);
        }
        j.close_arr();
        j.close_obj();
        j.finish()
    }

    /// A human-readable table of the same data.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== levels ==");
        let _ = writeln!(out, "{:<8}{:>8}{:>14}", "level", "files", "bytes");
        for l in &self.levels {
            let _ = writeln!(out, "L{:<7}{:>8}{:>14}", l.level, l.files, l.bytes);
        }
        let _ = writeln!(
            out,
            "{:<8}{:>8}{:>14}",
            "total",
            self.levels.iter().map(|l| l.files).sum::<usize>(),
            self.levels.iter().map(|l| l.bytes).sum::<u64>()
        );
        let _ = writeln!(
            out,
            "write_amp {:.2}   read_amp {}",
            self.write_amplification, self.read_amplification
        );
        let _ = writeln!(out, "\n== latencies (us) ==");
        let _ = writeln!(
            out,
            "{:<12}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
            "op", "count", "mean", "p50", "p99", "p99.9", "max"
        );
        for (op, s) in &self.latencies {
            let _ = writeln!(
                out,
                "{:<12}{:>10}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>10.1}",
                op, s.count, s.mean_us, s.p50_us, s.p99_us, s.p999_us, s.max_us
            );
        }
        let _ = writeln!(out, "\n== tickers ==");
        for (name, value) in self.tickers.counters() {
            let _ = writeln!(out, "{name:<26}{value:>14}");
        }
        let _ = writeln!(out, "\n== gauges ==");
        for (name, value) in self.tickers.gauges() {
            let _ = writeln!(out, "{name:<26}{value:>14}");
        }
        if !self.windows.is_empty() {
            let _ = writeln!(out, "\n== windows ==");
            for w in &self.windows {
                let _ = write!(out, "#{:<5}{:>9}us", w.seq, w.duration_micros);
                for (name, rate) in &w.rates {
                    let _ = write!(out, "  {name} {rate:.2}");
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsReport {
        let hists = OpHistograms::default();
        hists.get.record(1_000);
        hists.get.record(2_000);
        hists.put.record(5_000);
        MetricsReport {
            levels: vec![
                LevelStats { level: 0, files: 2, bytes: 4096 },
                LevelStats { level: 1, files: 1, bytes: 8192 },
            ],
            write_amplification: 1.5,
            read_amplification: 3,
            latencies: hists.summaries(),
            tickers: StatsSnapshot::default(),
            windows: Vec::new(),
        }
    }

    #[test]
    fn json_has_stable_keys() {
        let json = sample().to_json();
        for key in [
            "\"schema\":\"shield_metrics_v1\"",
            "\"levels\":[",
            "\"total_files\":3",
            "\"total_bytes\":12288",
            "\"write_amplification\":1.500",
            "\"read_amplification\":3",
            "\"latencies_us\":{",
            "\"get\":{\"count\":2",
            "\"p999\"",
            "\"tickers\":{",
            "\"gauges\":{",
            "\"windows\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Every op type appears even with zero samples.
        for op in OP_TYPES {
            assert!(json.contains(&format!("\"{op}\":{{")), "missing op {op}");
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample().render();
        for section in ["== levels ==", "== latencies (us) ==", "== tickers ==", "== gauges =="] {
            assert!(text.contains(section), "missing {section}");
        }
        assert!(text.contains("write_amp 1.50"));
        assert!(text.contains("L0"));
    }
}
