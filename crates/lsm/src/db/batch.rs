//! Write batches: the atomic unit of writes and the WAL record payload.
//!
//! Wire format (RocksDB-compatible layout): `fixed64 base_sequence |
//! fixed32 count | records…` where each record is a type byte followed by
//! length-prefixed key (and value for puts).

use crate::error::{Error, Result};
use crate::memtable::MemTable;
use crate::types::{SequenceNumber, ValueType};
use crate::varint::{get_length_prefixed, put_length_prefixed};

const HEADER: usize = 12;

/// A set of updates applied atomically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WriteBatch {
    rep: Vec<u8>,
}

impl WriteBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        WriteBatch { rep: vec![0u8; HEADER] }
    }

    /// Queues a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.ensure_header();
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed(&mut self.rep, key);
        put_length_prefixed(&mut self.rep, value);
        self.bump_count();
    }

    /// Queues a delete.
    pub fn delete(&mut self, key: &[u8]) {
        self.ensure_header();
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed(&mut self.rep, key);
        self.bump_count();
    }

    /// Removes all queued updates.
    pub fn clear(&mut self) {
        self.rep.clear();
        self.rep.resize(HEADER, 0);
    }

    /// Number of queued updates.
    #[must_use]
    pub fn count(&self) -> u32 {
        if self.rep.len() < HEADER {
            return 0;
        }
        u32::from_le_bytes(crate::varint::fixed(&self.rep[8..12]))
    }

    /// True if nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Approximate encoded size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.rep.len()
    }

    /// Sets the base sequence number (done by the commit leader).
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.ensure_header();
        self.rep[..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// The base sequence number.
    #[must_use]
    pub fn sequence(&self) -> SequenceNumber {
        if self.rep.len() < HEADER {
            return 0;
        }
        u64::from_le_bytes(crate::varint::fixed(&self.rep[..8]))
    }

    /// The raw WAL payload.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.rep
    }

    /// Reconstructs a batch from a WAL record.
    pub fn from_data(data: &[u8]) -> Result<Self> {
        if data.len() < HEADER {
            return Err(Error::Corruption("write batch too small".into()));
        }
        let batch = WriteBatch { rep: data.to_vec() };
        // Validate by iterating.
        batch.for_each(|_, _, _, _| {})?;
        Ok(batch)
    }

    /// Appends another batch's records to this one (group commit).
    pub fn append(&mut self, other: &WriteBatch) {
        self.ensure_header();
        let count = self.count() + other.count();
        self.rep.extend_from_slice(&other.rep[HEADER..]);
        self.rep[8..12].copy_from_slice(&count.to_le_bytes());
    }

    /// Visits every record as `(seq, type, key, value)`; tombstones get an
    /// empty value.
    pub fn for_each<F: FnMut(SequenceNumber, ValueType, &[u8], &[u8])>(
        &self,
        mut f: F,
    ) -> Result<()> {
        let corrupt = |m: &str| Error::Corruption(format!("write batch: {m}"));
        let mut data = &self.rep[HEADER.min(self.rep.len())..];
        let base = self.sequence();
        let mut index = 0u64;
        let mut seen = 0u32;
        while !data.is_empty() {
            let t = ValueType::from_u8(data[0]).ok_or_else(|| corrupt("bad record type"))?;
            data = &data[1..];
            let (key, n) = get_length_prefixed(data).ok_or_else(|| corrupt("bad key"))?;
            let key = key.to_vec();
            data = &data[n..];
            let value = match t {
                ValueType::Value => {
                    let (v, n) = get_length_prefixed(data).ok_or_else(|| corrupt("bad value"))?;
                    let v = v.to_vec();
                    data = &data[n..];
                    v
                }
                ValueType::Deletion => Vec::new(),
            };
            f(base + index, t, &key, &value);
            index += 1;
            seen += 1;
        }
        if seen != self.count() {
            return Err(corrupt("count mismatch"));
        }
        Ok(())
    }

    /// Applies every record to `mem` using the batch's base sequence.
    pub fn insert_into(&self, mem: &MemTable) -> Result<()> {
        self.for_each(|seq, t, key, value| mem.add(seq, t, key, value))
    }

    fn ensure_header(&mut self) {
        if self.rep.len() < HEADER {
            self.rep.resize(HEADER, 0);
        }
    }

    fn bump_count(&mut self) {
        let c = self.count() + 1;
        self.rep[8..12].copy_from_slice(&c.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memtable::LookupResult;

    #[test]
    fn build_and_iterate() {
        let mut b = WriteBatch::new();
        b.put(b"k1", b"v1");
        b.delete(b"k2");
        b.put(b"k3", b"v3");
        b.set_sequence(100);
        assert_eq!(b.count(), 3);
        let mut seen = Vec::new();
        b.for_each(|seq, t, k, v| seen.push((seq, t, k.to_vec(), v.to_vec()))).unwrap();
        assert_eq!(
            seen,
            vec![
                (100, ValueType::Value, b"k1".to_vec(), b"v1".to_vec()),
                (101, ValueType::Deletion, b"k2".to_vec(), vec![]),
                (102, ValueType::Value, b"k3".to_vec(), b"v3".to_vec()),
            ]
        );
    }

    #[test]
    fn roundtrip_through_wire_format() {
        let mut b = WriteBatch::new();
        b.put(b"key", b"value");
        b.set_sequence(7);
        let restored = WriteBatch::from_data(b.data()).unwrap();
        assert_eq!(restored, b);
        assert_eq!(restored.sequence(), 7);
    }

    #[test]
    fn corrupt_data_rejected() {
        assert!(WriteBatch::from_data(b"short").is_err());
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        let mut data = b.data().to_vec();
        data.truncate(data.len() - 1);
        assert!(WriteBatch::from_data(&data).is_err());
        // Wrong count.
        let mut data = b.data().to_vec();
        data[8] = 9;
        assert!(WriteBatch::from_data(&data).is_err());
    }

    #[test]
    fn append_merges_counts() {
        let mut a = WriteBatch::new();
        a.put(b"a", b"1");
        let mut b = WriteBatch::new();
        b.put(b"b", b"2");
        b.delete(b"c");
        a.append(&b);
        assert_eq!(a.count(), 3);
        let mut keys = Vec::new();
        a.for_each(|_, _, k, _| keys.push(k.to_vec())).unwrap();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn insert_into_memtable() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        b.delete(b"gone");
        b.set_sequence(10);
        let mem = MemTable::new(1);
        b.insert_into(&mem).unwrap();
        assert_eq!(mem.get(b"k", 100), LookupResult::Found(b"v".to_vec()));
        assert_eq!(mem.get(b"gone", 100), LookupResult::Deleted);
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::new();
        b.put(b"k", b"v");
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.size_bytes(), 12);
    }
}
