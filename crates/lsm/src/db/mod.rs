//! The database facade: options, write batches, and the [`Db`] itself.

pub mod batch;
#[allow(clippy::module_inception)]
pub mod db;
pub mod metrics;
pub mod options;

pub use batch::WriteBatch;
pub use db::{Db, DbIterator, Snapshot};
pub use metrics::{LevelStats, MetricsReport, METRICS_SCHEMA, OP_TYPES};
pub use options::{Options, ReadOptions, WriteOptions};
