//! Database configuration.

use std::sync::Arc;

use shield_core::{EventListener, LogConfig};
use shield_env::Env;

pub use crate::compaction::CompactionStyle;
use crate::compaction::CompactionParams;
use crate::encryption::EncryptionConfig;
use crate::integrity::Integrity;
use crate::statistics::Statistics;

/// Configuration for opening a [`crate::Db`].
///
/// Defaults follow the paper's scaled-down benchmark profile: 4 MiB
/// memtables, 4 KiB blocks, 10-bit blooms, leveled compaction with
/// fanout 10, and no encryption. Enable SHIELD with
/// [`Options::with_encryption`].
#[derive(Clone)]
pub struct Options {
    /// Storage environment (local, in-memory, or disaggregated).
    pub env: Arc<dyn Env>,
    /// Create the database if it does not exist.
    pub create_if_missing: bool,
    /// Fail if the database already exists.
    pub error_if_exists: bool,
    /// Memtable size that triggers a flush.
    pub write_buffer_size: usize,
    /// How many immutable memtables may queue before writers stall.
    pub max_immutable_memtables: usize,
    /// SST data-block size (RocksDB default 4096).
    pub block_size: usize,
    /// Restart interval within blocks.
    pub restart_interval: usize,
    /// Bloom bits per key (0 disables filters).
    pub bloom_bits_per_key: usize,
    /// Block cache capacity in bytes (0 disables the cache).
    pub block_cache_bytes: usize,
    /// Fail inserts (serve blocks uncached) instead of overfilling when
    /// the cache is full of pinned entries. Mirrors RocksDB's
    /// `strict_capacity_limit`.
    pub block_cache_strict_capacity: bool,
    /// Fraction of the block cache reserved for index/filter blocks
    /// (the high-priority pool), in `[0, 1]`.
    pub high_pri_pool_ratio: f64,
    /// Data blocks iterators prefetch ahead of the read position
    /// (0 disables readahead). Compaction inherits the same depth.
    pub readahead_blocks: usize,
    /// Upper bound on concurrently in-flight block reads per batched
    /// read submission ([`crate::Db::multi_get`], block prefetch) —
    /// the depth of the env's `read_at_many` queue. Clamped to ≥ 1.
    pub max_inflight_reads: usize,
    /// Max open table readers.
    pub max_open_files: usize,
    /// Compaction policy and thresholds.
    pub compaction: CompactionParams,
    /// L0 file count at which writes are slowed.
    pub l0_slowdown_trigger: usize,
    /// L0 file count at which writes stop until compaction catches up.
    pub l0_stop_trigger: usize,
    /// Background worker threads (flushes + compactions).
    pub max_background_jobs: usize,
    /// Make every write group durable (`sync`) before acknowledging.
    pub wal_sync_writes: bool,
    /// Skip the WAL entirely (crash-unsafe; for experiments only).
    pub disable_wal: bool,
    /// SHIELD encryption; `None` runs plaintext.
    pub encryption: Option<EncryptionConfig>,
    /// Integrity mode for newly written files: [`Integrity::Hmac`] adds a
    /// truncated per-block HMAC-SHA256 tag to every SST block and
    /// WAL/MANIFEST record, detected and verified on read regardless of
    /// this setting (verification is file-format driven).
    pub integrity: Integrity,
    /// Engine-wide MAC key for files without a DEK (plaintext and EncFS
    /// deployments, unencrypted WALs). SHIELD-encrypted files derive a
    /// per-file subkey from their DEK instead.
    pub integrity_key: [u8; 32],
    /// Where compactions run: `None` = in-process; `Some` = offloaded
    /// (e.g. to the disaggregated storage server, paper §5.6).
    pub compaction_executor: Option<Arc<dyn crate::compaction::CompactionExecutor>>,
    /// How many times a background job retries a *soft* (transient)
    /// failure before parking the error in `bg_error`. 0 disables retries.
    pub max_background_retries: u32,
    /// Base backoff before the first background retry; doubles per
    /// attempt, capped at [`Options::background_retry_max_backoff`].
    pub background_retry_backoff: std::time::Duration,
    /// Upper bound on the per-attempt background retry backoff.
    pub background_retry_max_backoff: std::time::Duration,
    /// Shared engine counters.
    pub statistics: Arc<Statistics>,
    /// Listeners notified of engine events (flushes, compactions, stalls,
    /// background errors, KDS transitions, fault injections). The DB's
    /// `LOG` file is an implicit listener configured by
    /// [`Options::info_log`].
    pub event_listeners: Vec<Arc<dyn EventListener>>,
    /// Level filter / format for the `LOG` file written into the DB
    /// directory. `None` (the default) reads the `SHIELD_LOG` env var at
    /// open (e.g. `SHIELD_LOG=debug,json`); an unset var means `info`,
    /// and `SHIELD_LOG=off` disables the file entirely.
    pub info_log: Option<LogConfig>,
    /// Record a hierarchical span trace (the flight recorder) for every
    /// foreground operation and background job. Off by default: the
    /// disabled path is one thread-local check per span site.
    pub trace_ops: bool,
    /// Operations slower than this are captured into the slow-op ring
    /// (full span tree + [`shield_core::PerfContext`]) and logged at
    /// warn level. `None` disables capture. Requires [`Options::trace_ops`].
    pub slow_op_threshold: Option<std::time::Duration>,
    /// How often the stats thread diffs ticker snapshots into a
    /// [`shield_core::MetricsWindow`] (interval rates, logged and kept in
    /// a bounded ring for [`crate::Db::metrics_windows`]). `None`
    /// disables windowed stats.
    pub stats_dump_period: Option<std::time::Duration>,
    /// Traced operations/jobs still running past this deadline are
    /// flagged once by the watchdog ([`shield_core::Event::Watchdog`]
    /// with the live span stack). `None` disables the watchdog.
    /// Requires [`Options::trace_ops`].
    pub watchdog_deadline: Option<std::time::Duration>,
    /// Completed-span ring capacity (spans, oldest overwritten first).
    pub trace_ring_spans: usize,
    /// Slow-op ring capacity (captured operations, oldest dropped first).
    pub slow_op_ring: usize,
}

impl Options {
    /// Creates options bound to `env` with benchmark-profile defaults.
    #[must_use]
    pub fn new(env: Arc<dyn Env>) -> Self {
        Options {
            env,
            create_if_missing: true,
            error_if_exists: false,
            write_buffer_size: 4 * 1024 * 1024,
            max_immutable_memtables: 2,
            block_size: 4096,
            restart_interval: 16,
            bloom_bits_per_key: 10,
            block_cache_bytes: 32 * 1024 * 1024,
            block_cache_strict_capacity: false,
            high_pri_pool_ratio: 0.1,
            readahead_blocks: 0,
            max_inflight_reads: crate::sst::fetcher::DEFAULT_INFLIGHT_READS,
            max_open_files: 500,
            compaction: CompactionParams::default(),
            l0_slowdown_trigger: 8,
            l0_stop_trigger: 16,
            max_background_jobs: 4,
            wal_sync_writes: false,
            disable_wal: false,
            encryption: None,
            integrity: Integrity::Crc,
            integrity_key: [0u8; 32],
            compaction_executor: None,
            max_background_retries: 3,
            background_retry_backoff: std::time::Duration::from_millis(1),
            background_retry_max_backoff: std::time::Duration::from_millis(100),
            statistics: Statistics::new(),
            event_listeners: Vec::new(),
            info_log: None,
            trace_ops: false,
            slow_op_threshold: None,
            stats_dump_period: None,
            watchdog_deadline: None,
            trace_ring_spans: 4096,
            slow_op_ring: 32,
        }
    }

    /// Enables SHIELD encryption.
    #[must_use]
    pub fn with_encryption(mut self, cfg: EncryptionConfig) -> Self {
        self.encryption = Some(cfg);
        self
    }

    /// Sets the integrity mode for newly written files.
    #[must_use]
    pub fn with_integrity(mut self, mode: Integrity) -> Self {
        self.integrity = mode;
        self
    }

    /// Sets the engine-wide MAC key used for files without a DEK.
    #[must_use]
    pub fn with_integrity_key(mut self, key: [u8; 32]) -> Self {
        self.integrity_key = key;
        self
    }

    /// Sets the compaction style, keeping other thresholds.
    #[must_use]
    pub fn with_compaction_style(mut self, style: CompactionStyle) -> Self {
        self.compaction.style = style;
        self
    }

    /// Sets the memtable size.
    #[must_use]
    pub fn with_write_buffer_size(mut self, bytes: usize) -> Self {
        self.write_buffer_size = bytes;
        self
    }

    /// Sets the background thread count.
    #[must_use]
    pub fn with_background_jobs(mut self, jobs: usize) -> Self {
        self.max_background_jobs = jobs.max(1);
        self
    }

    /// Splits each compaction into up to `n` key-disjoint subranges
    /// merged concurrently on the background pool (1 = serial).
    #[must_use]
    pub fn with_max_subcompactions(mut self, n: usize) -> Self {
        self.compaction.max_subcompactions = n.max(1);
        self
    }

    /// Registers an [`EventListener`] notified of every engine event.
    #[must_use]
    pub fn with_event_listener(mut self, listener: Arc<dyn EventListener>) -> Self {
        self.event_listeners.push(listener);
        self
    }

    /// Pins the `LOG` file configuration instead of reading `SHIELD_LOG`.
    #[must_use]
    pub fn with_info_log(mut self, config: LogConfig) -> Self {
        self.info_log = Some(config);
        self
    }

    /// Sets the iterator/compaction readahead depth in data blocks.
    #[must_use]
    pub fn with_readahead_blocks(mut self, blocks: usize) -> Self {
        self.readahead_blocks = blocks;
        self
    }

    /// Bounds concurrently in-flight block reads per batched submission
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_inflight_reads(mut self, depth: usize) -> Self {
        self.max_inflight_reads = depth.max(1);
        self
    }

    /// Enables the flight recorder (per-op span traces).
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.trace_ops = true;
        self
    }

    /// Enables tracing and captures ops slower than `threshold` into the
    /// slow-op ring.
    #[must_use]
    pub fn with_slow_op_threshold(mut self, threshold: std::time::Duration) -> Self {
        self.trace_ops = true;
        self.slow_op_threshold = Some(threshold);
        self
    }

    /// Emits a windowed stats report every `period`.
    #[must_use]
    pub fn with_stats_dump_period(mut self, period: std::time::Duration) -> Self {
        self.stats_dump_period = Some(period);
        self
    }

    /// Enables tracing and the stall watchdog: traced ops running past
    /// `deadline` are flagged with their live span stack.
    #[must_use]
    pub fn with_watchdog_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.trace_ops = true;
        self.watchdog_deadline = Some(deadline);
        self
    }
}

/// Per-read options.
#[derive(Clone, Copy)]
pub struct ReadOptions {
    /// Read at this snapshot sequence instead of the latest state.
    pub snapshot_seq: Option<u64>,
    /// Admit blocks read on behalf of this operation to the block cache
    /// (and look them up there). `false` reads around the cache without
    /// disturbing residency — for one-off scans over cold data.
    pub fill_cache: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadOptions {
    /// Default read options (latest data, cache enabled).
    #[must_use]
    pub fn new() -> Self {
        ReadOptions { snapshot_seq: None, fill_cache: true }
    }
}

/// Per-write options.
#[derive(Clone, Copy, Default)]
pub struct WriteOptions {
    /// Block until the WAL write is durable.
    pub sync: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_env::MemEnv;

    #[test]
    fn defaults_are_sane() {
        let o = Options::new(Arc::new(MemEnv::new()));
        assert!(o.create_if_missing);
        assert!(o.encryption.is_none());
        assert_eq!(o.integrity, Integrity::Crc);
        assert_eq!(o.integrity_key, [0u8; 32]);
        assert_eq!(o.block_size, 4096);
        assert_eq!(o.compaction.fanout, 10);
    }

    #[test]
    fn builders_compose() {
        let o = Options::new(Arc::new(MemEnv::new()))
            .with_write_buffer_size(1 << 20)
            .with_background_jobs(0) // clamped to 1
            .with_compaction_style(CompactionStyle::Universal);
        assert_eq!(o.write_buffer_size, 1 << 20);
        assert_eq!(o.max_background_jobs, 1);
        assert_eq!(o.compaction.style, CompactionStyle::Universal);
    }

    #[test]
    fn tracing_knobs_imply_trace_ops() {
        let o = Options::new(Arc::new(MemEnv::new()));
        assert!(!o.trace_ops, "tracing is opt-in");
        assert!(o.slow_op_threshold.is_none() && o.watchdog_deadline.is_none());
        let o = Options::new(Arc::new(MemEnv::new()))
            .with_slow_op_threshold(std::time::Duration::from_millis(5));
        assert!(o.trace_ops, "slow-op capture needs span trees");
        let o = Options::new(Arc::new(MemEnv::new()))
            .with_watchdog_deadline(std::time::Duration::from_millis(50));
        assert!(o.trace_ops, "the watchdog reports live span stacks");
    }
}
