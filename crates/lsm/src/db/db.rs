//! The database: write path (group commit → WAL → memtable), read path
//! (memtables → levels, bloom + block cache), background flushes and
//! compactions, snapshots, iterators, and crash recovery.
//!
//! Encryption placement follows the paper exactly (§5.2): WAL bytes are
//! encrypted by the file layer just before persistence (optionally through
//! the §5.3 application buffer); memtables stay plaintext and flushes
//! encrypt at SST-build time; compaction outputs are chunk-encrypted and
//! always carry fresh DEKs, making compaction double as key rotation.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use shield_core::{
    perf, trace, Event, EventDispatcher, InfoLog, JsonBuilder, LogConfig, MetricsWindow,
    PerfContext, PerfGuard, PerfMetric, SlowOp, SpanRecord, Tracer, WindowSample, WindowTracker,
};
use shield_env::{Env, FileKind};

use crate::cache::BlockCache;
use crate::compaction::{
    append_input_deletions, pick_compaction, plan_subcompactions, run_compaction,
    run_compaction_range, CompactionContext, CompactionOutcome, CompactionTask,
    SubcompactionRange,
};
use crate::db::batch::WriteBatch;
use crate::db::metrics::{LevelStats, MetricsReport, OpHistograms};
use crate::db::options::{Options, ReadOptions, WriteOptions};
use crate::obs::{EnvLogSink, LOG_FILE_NAME};
use crate::error::{Error, Result, Severity};
use crate::iter::{InternalIterator, MergingIterator};
use crate::memtable::{LookupResult, MemTable};
use crate::sst::builder::{TableBuilder, TableBuilderOptions};
use crate::statistics::Statistics;
use crate::types::{
    extract_seq_type, extract_user_key, make_internal_key, make_lookup_key, SequenceNumber,
    ValueType, MAX_SEQUENCE,
};
use crate::version::edit::{FileMeta, VersionEdit};
use crate::version::filenames::{parse_file_name, sst_file_name, wal_file_name, FileType};
use crate::version::table_cache::TableCache;
use crate::version::version::GetResult;
use crate::version::VersionSet;
use crate::wal::{LogReader, LogWriter};

/// Background work items.
///
/// `Subcompaction` is a *claim token*, not the work itself: the actual
/// subrange closures sit in `DbInner::sub_queue`, and each token makes
/// one worker pop one closure. Tokens go through the same FIFO channel
/// as flushes, so a flush enqueued between two subrange tokens runs as
/// soon as any worker frees up — neither job class can starve the other.
enum Job {
    Flush,
    Compaction,
    Subcompaction,
}

/// A queued subrange merge of an in-flight parallel compaction.
type Subtask = Box<dyn FnOnce() + Send>;

struct State {
    mem: Arc<MemTable>,
    imm: Vec<Arc<MemTable>>,
    wal: Option<LogWriter>,
    wal_number: u64,
    versions: VersionSet,
    flush_scheduled: bool,
    compaction_scheduled: bool,
    busy_files: HashSet<u64>,
    pending_outputs: HashSet<u64>,
    snapshots: std::collections::BTreeMap<u64, SequenceNumber>,
    next_snapshot_id: u64,
    bg_error: Option<Error>,
}

struct Pending {
    batch: WriteBatch,
    sync: bool,
    slot: Arc<Mutex<Option<Result<()>>>>,
}

struct DbInner {
    opts: Options,
    env: Arc<dyn Env>,
    path: String,
    table_cache: Arc<TableCache>,
    block_cache: Option<Arc<BlockCache>>,
    stats: Arc<Statistics>,
    state: Mutex<State>,
    /// Signaled whenever background work finishes (stall waits).
    work_cv: Condvar,
    /// Writers waiting to be committed by a group leader.
    commit_queue: Mutex<Vec<Pending>>,
    /// Held by the active group-commit leader.
    leader: Mutex<()>,
    /// Highest sequence visible to readers.
    last_published: AtomicU64,
    shutting_down: AtomicBool,
    job_tx: Mutex<Option<Sender<Job>>>,
    /// Pending subrange merges of the in-flight parallel compaction.
    /// Workers pop one per `Job::Subcompaction` token; the coordinating
    /// compaction thread drains whatever is left itself (work stealing),
    /// so the parallel path cannot deadlock even with a 1-thread pool.
    sub_queue: Mutex<std::collections::VecDeque<Subtask>>,
    /// In-engine per-op latency histograms (see `Db::metrics_report`).
    op_hists: OpHistograms,
    /// Fan-out for engine events; the `LOG` file is one of its listeners.
    events: Arc<EventDispatcher>,
    /// Flight recorder: span ring, slow-op ring, active-op registry.
    tracer: Arc<Tracer>,
    /// Windowed-stats differ plus the ring of recent finished windows.
    window: Mutex<WindowTracker>,
    /// Sleep/wake for the watchdog + stats ticker thread; shutdown
    /// notifies `ticker_cv` under `ticker_mu` so the thread exits
    /// promptly instead of finishing its tick.
    ticker_mu: Mutex<()>,
    ticker_cv: Condvar,
}

/// RAII pair for one traced operation. Field order matters: `op` drops
/// first, so the tracer's slow-op capture still sees the live
/// [`PerfContext`] the `perf` guard enables for the op's duration. Both
/// are `None` when tracing is disabled — the whole struct then costs one
/// atomic load per op.
struct TracedOp {
    _op: Option<shield_core::trace::OpGuard>,
    _perf: Option<PerfGuard>,
}

/// An LSM-KVS instance.
///
/// Cheap operations (`get`, `put`, `delete`, `write`, `iter`, `snapshot`)
/// take `&self` and are thread-safe. Dropping the handle shuts down
/// background work and flushes the WAL cleanly; use
/// [`Db::simulate_process_crash`] in tests that need a dirty exit.
pub struct Db {
    inner: Arc<DbInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    crash_on_drop: bool,
}

impl Db {
    /// Opens (creating or recovering) a database at `path`.
    pub fn open(opts: Options, path: &str) -> Result<Db> {
        let env = opts.env.clone();
        env.create_dir_all(path)?;
        let stats = opts.statistics.clone();

        // Event plumbing first, so recovery and the env itself can report.
        let events = Arc::new(EventDispatcher::new());
        for listener in &opts.event_listeners {
            events.add(listener.clone());
        }
        let log_config = opts.info_log.unwrap_or_else(|| {
            std::env::var("SHIELD_LOG")
                .map(|v| LogConfig::from_env_str(&v))
                .unwrap_or(LogConfig { level: Some(shield_core::LogLevel::Info), json: false })
        });
        if let Some(min_level) = log_config.level {
            let log_path = shield_env::join_path(path, LOG_FILE_NAME);
            let sink = EnvLogSink::create(env.as_ref(), &log_path)?;
            events.add(Arc::new(InfoLog::new(Box::new(sink), min_level, log_config.json)));
        }
        // Faults injected by a wrapping fault env surface in the same LOG.
        env.set_event_listener(events.clone());

        let tracer = Tracer::new(opts.trace_ring_spans, opts.slow_op_ring);
        tracer.set_enabled(opts.trace_ops);
        tracer.set_slow_op_threshold(opts.slow_op_threshold);
        tracer.set_listener(events.clone());

        let block_cache = if opts.block_cache_bytes > 0 {
            Some(BlockCache::with_config(crate::cache::CacheConfig {
                capacity: opts.block_cache_bytes,
                strict_capacity: opts.block_cache_strict_capacity,
                high_pri_pool_ratio: opts.high_pri_pool_ratio,
                ..crate::cache::CacheConfig::default()
            })?)
        } else {
            None
        };
        let integrity = crate::integrity::IntegrityOptions {
            mode: opts.integrity,
            key: opts.integrity_key,
        };
        let table_cache = TableCache::new_with_stats(
            env.clone(),
            path.to_string(),
            opts.encryption.clone(),
            block_cache.clone(),
            Some(stats.clone()),
            opts.max_open_files,
            opts.readahead_blocks,
            opts.max_inflight_reads,
            integrity,
            Some(events.clone()),
        );
        let mut versions = VersionSet::new(
            env.clone(),
            path.to_string(),
            opts.encryption.clone(),
            table_cache.clone(),
        );
        versions.set_integrity(integrity);
        let exists = VersionSet::db_exists(env.as_ref(), path);
        if exists {
            if opts.error_if_exists {
                return Err(Error::InvalidArgument(format!("{path} already exists")));
            }
            versions.recover()?;
        } else {
            if !opts.create_if_missing {
                return Err(Error::Io(shield_env::EnvError::NotFound(path.to_string())));
            }
            versions.create_new()?;
        }

        let inner = Arc::new(DbInner {
            env: env.clone(),
            path: path.to_string(),
            table_cache,
            block_cache,
            stats,
            state: Mutex::new(State {
                mem: Arc::new(MemTable::new(0)),
                imm: Vec::new(),
                wal: None,
                wal_number: 0,
                versions,
                flush_scheduled: false,
                compaction_scheduled: false,
                busy_files: HashSet::new(),
                pending_outputs: HashSet::new(),
                snapshots: std::collections::BTreeMap::new(),
                next_snapshot_id: 1,
                bg_error: None,
            }),
            work_cv: Condvar::new(),
            commit_queue: Mutex::new(Vec::new()),
            leader: Mutex::new(()),
            last_published: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            job_tx: Mutex::new(None),
            sub_queue: Mutex::new(std::collections::VecDeque::new()),
            op_hists: OpHistograms::default(),
            events,
            tracer,
            window: Mutex::new(WindowTracker::default()),
            ticker_mu: Mutex::new(()),
            ticker_cv: Condvar::new(),
            opts,
        });

        let recovered_wals = inner.recover_wals()?;

        // Fresh WAL for new writes.
        {
            let mut state = inner.state.lock();
            let wal_number = state.versions.new_file_number();
            let writer = inner.new_wal(wal_number)?;
            state.wal = Some(writer);
            state.wal_number = wal_number;
            // Tag the (still empty) initial memtable with its real WAL so
            // obsolete-WAL computation is exact from the start.
            state.mem = Arc::new(MemTable::new(wal_number));
            let edit = VersionEdit { log_number: Some(wal_number), ..VersionEdit::default() };
            state.versions.log_and_apply(edit)?;
            let seq = state.versions.last_sequence();
            inner.last_published.store(seq, Ordering::Release);
            inner.delete_obsolete_files(&mut state);
        }

        // Background workers.
        let (tx, rx) = unbounded::<Job>();
        *inner.job_tx.lock() = Some(tx);
        let mut threads = Vec::new();
        for _ in 0..inner.opts.max_background_jobs {
            let inner = inner.clone();
            let rx: Receiver<Job> = rx.clone();
            threads.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Flush => inner.background_flush(),
                        Job::Compaction => inner.background_compaction(),
                        Job::Subcompaction => inner.run_queued_subcompaction(),
                    }
                }
            }));
        }
        // Watchdog + windowed-stats ticker (only when either is on).
        if inner.opts.stats_dump_period.is_some()
            || (inner.opts.trace_ops && inner.opts.watchdog_deadline.is_some())
        {
            let inner = inner.clone();
            threads.push(std::thread::spawn(move || inner.ticker_loop()));
        }
        {
            let mut state = inner.state.lock();
            inner.maybe_schedule(&mut state);
        }
        inner
            .events
            .emit(&Event::DbOpen { path: path.to_string(), recovered_wals });
        Ok(Db { inner, threads, crash_on_drop: false })
    }

    /// Stores `value` under `key`.
    pub fn put(&self, wopts: &WriteOptions, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(wopts, batch)
    }

    /// Deletes `key`.
    pub fn delete(&self, wopts: &WriteOptions, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(wopts, batch)
    }

    /// Applies a batch atomically. Concurrent writers are group-committed:
    /// the first to arrive becomes the leader, drains the queue, writes one
    /// combined WAL record, and applies everything to the memtable.
    pub fn write(&self, wopts: &WriteOptions, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(Error::Shutdown);
        }
        let op_start = std::time::Instant::now();
        let single_op = batch.count() == 1;
        let _trace = self.inner.traced_op(if single_op { "put" } else { "write_batch" });
        let slot = Arc::new(Mutex::new(None));
        self.inner.commit_queue.lock().push(Pending {
            batch,
            sync: wopts.sync,
            slot: slot.clone(),
        });
        let leader_guard = self.inner.leader.lock();
        if let Some(result) = slot.lock().take() {
            // An earlier leader committed us while we waited.
            drop(leader_guard);
            self.record_write_latency(single_op, op_start);
            return result;
        }
        let group: Vec<Pending> = std::mem::take(&mut *self.inner.commit_queue.lock());
        debug_assert!(!group.is_empty());
        let result = self.inner.commit_group(&group);
        for p in &group {
            *p.slot.lock() = Some(result.clone());
        }
        drop(leader_guard);
        self.record_write_latency(single_op, op_start);
        result
    }

    /// Each writer records its own wall time (queue wait included):
    /// single-op batches land in the `put` histogram, larger ones in
    /// `write_batch`.
    fn record_write_latency(&self, single_op: bool, op_start: std::time::Instant) {
        if single_op {
            self.inner.op_hists.put.record_elapsed(op_start);
        } else {
            self.inner.op_hists.write_batch.record_elapsed(op_start);
        }
    }

    /// Point lookup at the latest state (or the snapshot in `ropts`).
    pub fn get(&self, ropts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _trace = self.inner.traced_op("get");
        let op_start = std::time::Instant::now();
        let result = self.get_impl(ropts, key);
        self.inner.op_hists.get.record_elapsed(op_start);
        if let Err(e) = &result {
            self.park_if_unrecoverable(e);
        }
        result
    }

    /// Fail-stop on unrecoverable foreground read errors: an integrity
    /// violation (or corruption) seen by a get/scan parks the sticky
    /// background error so writes stop too — compaction must never
    /// launder data the read path already refused to serve.
    fn park_if_unrecoverable(&self, e: &Error) {
        if e.severity() == Severity::Unrecoverable {
            let mut state = self.inner.state.lock();
            if state.bg_error.is_none() {
                self.inner.set_bg_error(&mut state, "read", e.clone());
            }
        }
    }

    fn get_impl(&self, ropts: &ReadOptions, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.inner.stats.gets.fetch_add(1, Ordering::Relaxed);
        let seq = ropts
            .snapshot_seq
            .unwrap_or_else(|| self.inner.last_published.load(Ordering::Acquire));
        let (mem, imms, version) = {
            let state = self.inner.state.lock();
            (state.mem.clone(), state.imm.clone(), state.versions.current())
        };
        let t = perf::timer();
        let mut memtable_hit: Option<Option<Vec<u8>>> = None;
        match mem.get(key, seq) {
            LookupResult::Found(v) => memtable_hit = Some(Some(v)),
            LookupResult::Deleted => memtable_hit = Some(None),
            LookupResult::NotFound => {
                for imm in imms.iter().rev() {
                    match imm.get(key, seq) {
                        LookupResult::Found(v) => {
                            memtable_hit = Some(Some(v));
                            break;
                        }
                        LookupResult::Deleted => {
                            memtable_hit = Some(None);
                            break;
                        }
                        LookupResult::NotFound => {}
                    }
                }
            }
        }
        perf::add_elapsed(PerfMetric::MemtableLookup, t);
        if let Some(hit) = memtable_hit {
            if hit.is_some() {
                self.inner.stats.gets_found.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(hit);
        }
        match version.get_opt(&self.inner.table_cache, key, seq, ropts.fill_cache)? {
            GetResult::Found(v) => {
                self.inner.stats.gets_found.fetch_add(1, Ordering::Relaxed);
                Ok(Some(v))
            }
            GetResult::Deleted | GetResult::NotFound => Ok(None),
        }
    }

    /// Batched point lookup: one result slot per key, each equivalent to
    /// [`Db::get`] at the same snapshot. Memtables are probed per key
    /// (they are in memory anyway); keys that miss are resolved against
    /// the current version with per-file batched block reads, so a cold
    /// batch pays one `read_at_many` submission per table instead of one
    /// file read per key. Errors are per-slot: a fault on one key's block
    /// never corrupts its neighbors.
    pub fn multi_get(&self, ropts: &ReadOptions, keys: &[&[u8]]) -> Vec<Result<Option<Vec<u8>>>> {
        let _trace = self.inner.traced_op("multi_get");
        let op_start = std::time::Instant::now();
        let results = self.multi_get_impl(ropts, keys);
        self.inner.op_hists.multi_get.record_elapsed(op_start);
        for r in &results {
            if let Err(e) = r {
                self.park_if_unrecoverable(e);
            }
        }
        results
    }

    fn multi_get_impl(&self, ropts: &ReadOptions, keys: &[&[u8]]) -> Vec<Result<Option<Vec<u8>>>> {
        self.inner.stats.multi_gets.fetch_add(1, Ordering::Relaxed);
        let seq = ropts
            .snapshot_seq
            .unwrap_or_else(|| self.inner.last_published.load(Ordering::Acquire));
        let (mem, imms, version) = {
            let state = self.inner.state.lock();
            (state.mem.clone(), state.imm.clone(), state.versions.current())
        };
        let mut out: Vec<Option<Result<Option<Vec<u8>>>>> = vec![None; keys.len()];
        let t = perf::timer();
        for (i, key) in keys.iter().enumerate() {
            let hit = match mem.get(key, seq) {
                LookupResult::Found(v) => Some(Some(v)),
                LookupResult::Deleted => Some(None),
                LookupResult::NotFound => imms.iter().rev().find_map(|imm| match imm.get(key, seq)
                {
                    LookupResult::Found(v) => Some(Some(v)),
                    LookupResult::Deleted => Some(None),
                    LookupResult::NotFound => None,
                }),
            };
            if let Some(hit) = hit {
                if hit.is_some() {
                    self.inner.stats.gets_found.fetch_add(1, Ordering::Relaxed);
                }
                out[i] = Some(Ok(hit));
            }
        }
        perf::add_elapsed(PerfMetric::MemtableLookup, t);
        let unresolved: Vec<usize> = (0..keys.len()).filter(|&i| out[i].is_none()).collect();
        if !unresolved.is_empty() {
            let sub: Vec<&[u8]> = unresolved.iter().map(|&i| keys[i]).collect();
            let results =
                version.multi_get_opt(&self.inner.table_cache, &sub, seq, ropts.fill_cache);
            for (&i, result) in unresolved.iter().zip(results) {
                out[i] = Some(match result {
                    Ok(GetResult::Found(v)) => {
                        self.inner.stats.gets_found.fetch_add(1, Ordering::Relaxed);
                        Ok(Some(v))
                    }
                    Ok(GetResult::Deleted | GetResult::NotFound) => Ok(None),
                    Err(e) => Err(e),
                });
            }
        }
        out.into_iter().map(|slot| slot.expect("every key resolved")).collect()
    }

    /// Creates a consistent point-in-time snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut state = self.inner.state.lock();
        let id = state.next_snapshot_id;
        state.next_snapshot_id += 1;
        let seq = self.inner.last_published.load(Ordering::Acquire);
        state.snapshots.insert(id, seq);
        Snapshot { inner: self.inner.clone(), id, seq }
    }

    /// An iterator over live keys, visible at the latest state (or the
    /// snapshot in `ropts`).
    pub fn iter(&self, ropts: &ReadOptions) -> Result<DbIterator> {
        let seq = ropts
            .snapshot_seq
            .unwrap_or_else(|| self.inner.last_published.load(Ordering::Acquire));
        let (mem, imms, version) = {
            let state = self.inner.state.lock();
            (state.mem.clone(), state.imm.clone(), state.versions.current())
        };
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(Box::new(mem.iter()));
        for imm in imms.iter().rev() {
            children.push(Box::new(imm.iter()));
        }
        children.extend(version.iterators(&self.inner.table_cache)?);
        Ok(DbIterator {
            merged: MergingIterator::new(children),
            seq,
            current: None,
            db: self.inner.clone(),
            _pins: (mem, imms, version),
        })
    }

    /// Range scan: up to `limit` live `(key, value)` pairs with
    /// `key >= start`.
    pub fn scan(&self, ropts: &ReadOptions, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut it = self.iter(ropts)?;
        it.seek(start);
        let mut out = Vec::with_capacity(limit.min(1024));
        while it.valid() && out.len() < limit {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        // A read error mid-iteration leaves the iterator invalid with the
        // error parked in its status; a partial result must not pass as a
        // complete one.
        if let Err(e) = it.status() {
            self.park_if_unrecoverable(&e);
            return Err(e);
        }
        Ok(out)
    }

    /// Forces the active memtable to flush and waits until no immutable
    /// memtables remain.
    pub fn flush(&self) -> Result<()> {
        {
            // Rotate under the leader lock so we never race a commit.
            let _leader = self.inner.leader.lock();
            let mut state = self.inner.state.lock();
            if !state.mem.is_empty() {
                self.inner.switch_memtable(&mut state)?;
                self.inner.maybe_schedule(&mut state);
            }
        }
        let mut state = self.inner.state.lock();
        while !state.imm.is_empty() && state.bg_error.is_none() {
            self.inner.work_cv.wait(&mut state);
        }
        state.bg_error.clone().map_or(Ok(()), Err)
    }

    /// Blocks until no flush or compaction work remains.
    pub fn wait_for_background_work(&self) -> Result<()> {
        let mut state = self.inner.state.lock();
        loop {
            if let Some(e) = &state.bg_error {
                return Err(e.clone());
            }
            let more = !state.imm.is_empty()
                || state.flush_scheduled
                || state.compaction_scheduled
                || pick_compaction(&state.versions.current(), &self.inner.opts.compaction)
                    .is_some();
            if !more {
                return Ok(());
            }
            self.inner.maybe_schedule(&mut state);
            self.inner.work_cv.wait(&mut state);
        }
    }

    /// Flushes everything and compacts until the picker finds no work.
    pub fn compact_all(&self) -> Result<()> {
        self.flush()?;
        self.wait_for_background_work()
    }

    /// Engine counters. Mirrored tickers (fault-injection counts from
    /// the env, block-cache hit/miss totals) and gauges are refreshed on
    /// each call.
    #[must_use]
    pub fn statistics(&self) -> Arc<Statistics> {
        self.inner.refresh_stat_mirrors();
        self.inner.stats.clone()
    }

    /// Slow operations captured so far (oldest first): every op whose
    /// wall time crossed [`Options::slow_op_threshold`], with its full
    /// span tree and [`PerfContext`] breakdown.
    #[must_use]
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.inner.tracer.slow_ops()
    }

    /// Best-effort snapshot of the flight recorder's span ring, oldest
    /// first. Empty unless [`Options::trace_ops`] is set.
    #[must_use]
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.inner.tracer.recent_spans()
    }

    /// Recent windowed-stats intervals (oldest first), populated every
    /// [`Options::stats_dump_period`].
    #[must_use]
    pub fn metrics_windows(&self) -> Vec<MetricsWindow> {
        self.inner.window.lock().recent()
    }

    /// One JSON document with everything needed to debug the engine:
    /// the full metrics report, recent stats windows, the slow-op ring,
    /// the recent span ring, and the tail of the `LOG` file.
    #[must_use]
    pub fn debug_bundle(&self) -> String {
        const LOG_TAIL_BYTES: usize = 16 * 1024;
        let metrics = self.metrics_report().to_json();
        let mut j = JsonBuilder::new();
        j.open_obj_item();
        j.field_str("schema", "shield_debug_bundle_v1");
        j.field_raw("metrics", &metrics);
        j.open_arr("windows");
        for w in self.inner.window.lock().recent() {
            w.push_json(&mut j);
        }
        j.close_arr();
        j.open_arr("slow_ops");
        for s in self.inner.tracer.slow_ops() {
            s.push_json(&mut j);
        }
        j.close_arr();
        j.open_arr("trace_spans");
        for s in self.inner.tracer.recent_spans() {
            s.push_json(&mut j);
        }
        j.close_arr();
        let log_path = shield_env::join_path(&self.inner.path, LOG_FILE_NAME);
        let tail = shield_env::read_file_to_vec(
            self.inner.env.as_ref(),
            &log_path,
            FileKind::Other,
        )
        .ok()
        .map(|bytes| {
            let start = bytes.len().saturating_sub(LOG_TAIL_BYTES);
            String::from_utf8_lossy(&bytes[start..]).into_owned()
        })
        .unwrap_or_default();
        j.field_str("log_tail", &tail);
        j.close_obj();
        j.finish()
    }

    /// The engine's event dispatcher. Listeners added here (or via
    /// [`Options::event_listeners`]) receive every [`Event`]; the `LOG`
    /// file in the DB directory is itself one such listener.
    #[must_use]
    pub fn events(&self) -> Arc<EventDispatcher> {
        self.inner.events.clone()
    }

    /// Runs `f` with this thread's [`PerfContext`] enabled and returns
    /// `f`'s result together with the timing breakdown it accumulated.
    ///
    /// ```ignore
    /// let (value, perf) = db.with_perf_context(|db| db.get(&ropts, b"k"));
    /// assert!(perf.block_read_nanos + perf.block_decrypt_nanos <= wall_nanos);
    /// ```
    pub fn with_perf_context<R>(&self, f: impl FnOnce(&Self) -> R) -> (R, PerfContext) {
        let guard = PerfGuard::enable();
        let result = f(self);
        let ctx = perf::current();
        drop(guard);
        (result, ctx)
    }

    /// One structured report of everything the engine measures: per-level
    /// shape, write/read amplification, per-op latency quantiles, and all
    /// tickers. See [`MetricsReport::to_json`] for the stable schema.
    #[must_use]
    pub fn metrics_report(&self) -> MetricsReport {
        let stats = self.statistics(); // refreshes gauge mirrors
        let snap = stats.snapshot();
        let per_level = self.level_summary();
        let levels: Vec<LevelStats> = per_level
            .iter()
            .enumerate()
            .filter(|(l, (files, _))| *l == 0 || *files > 0)
            .map(|(l, &(files, bytes))| LevelStats { level: l, files, bytes })
            .collect();
        let bytes_to_storage = snap.flush_bytes + snap.compaction_bytes_written;
        let write_amplification = bytes_to_storage as f64 / (snap.wal_bytes.max(1)) as f64;
        let l0_files = per_level.first().map_or(0, |&(f, _)| f as u64);
        let deeper_nonempty =
            per_level.iter().skip(1).filter(|&&(files, _)| files > 0).count() as u64;
        MetricsReport {
            levels,
            write_amplification,
            read_amplification: l0_files + deeper_nonempty,
            latencies: self.inner.op_hists.summaries(),
            tickers: snap,
            windows: self.inner.window.lock().recent(),
        }
    }

    /// The sticky background error, if any. While set, writes are refused
    /// but reads keep serving; [`Db::resume`] clears recoverable errors.
    #[must_use]
    pub fn background_error(&self) -> Option<Error> {
        self.inner.state.lock().bg_error.clone()
    }

    /// Clears a recoverable background error and re-drives the pending
    /// work, blocking until the backlog drains (mirrors RocksDB's
    /// `DB::Resume`).
    ///
    /// * No background error: returns `Ok(())` immediately.
    /// * Soft/hard error: the error is cleared, flush/compaction are
    ///   rescheduled, and the call returns the result of that re-run —
    ///   `Ok(())` if the cause (e.g. an injected fault, a KDS outage) has
    ///   been fixed, or the fresh error if it has not.
    /// * Unrecoverable error (corruption): nothing is cleared and the
    ///   error is returned.
    pub fn resume(&self) -> Result<()> {
        {
            let mut state = self.inner.state.lock();
            let Some(e) = state.bg_error.clone() else {
                return Ok(());
            };
            if e.severity() == Severity::Unrecoverable {
                return Err(e);
            }
            state.bg_error = None;
            self.inner.stats.resumes.fetch_add(1, Ordering::Relaxed);
            self.inner.events.emit(&Event::Resume);
            self.inner.maybe_schedule(&mut state);
        }
        self.inner.work_cv.notify_all();
        self.wait_for_background_work()
    }

    /// Walks every live SST file, re-reading and checksum-verifying every
    /// block (through decryption when encrypted) and cross-checking entry
    /// counts against the properties block. Returns per-database totals.
    pub fn verify_integrity(&self) -> Result<IntegrityReport> {
        let version = {
            let state = self.inner.state.lock();
            state.versions.current()
        };
        let mut report = IntegrityReport::default();
        for number in version.live_files() {
            let table = self.inner.table_cache.get(number)?;
            let mut it = table.iter();
            it.seek_to_first();
            let mut entries = 0u64;
            let mut prev: Option<Vec<u8>> = None;
            while it.valid() {
                let key = it.key().to_vec();
                if let Some(p) = &prev {
                    if crate::types::internal_key_cmp(p, &key) != std::cmp::Ordering::Less {
                        return Err(Error::Corruption(format!(
                            "file {number}: keys out of order"
                        )));
                    }
                }
                prev = Some(key);
                entries += 1;
                it.next();
            }
            it.status()?;
            let expected = table.properties().num_entries;
            if entries != expected {
                return Err(Error::Corruption(format!(
                    "file {number}: {entries} entries, properties claim {expected}"
                )));
            }
            report.files += 1;
            report.entries += entries;
            report.bytes += version
                .files
                .iter()
                .flatten()
                .find(|f| f.number == number)
                .map_or(0, |f| f.file_size);
        }
        Ok(report)
    }

    /// `(files, bytes)` per level, for reporting.
    #[must_use]
    pub fn level_summary(&self) -> Vec<(usize, u64)> {
        let state = self.inner.state.lock();
        let v = state.versions.current();
        (0..v.files.len()).map(|l| (v.level_files(l), v.level_size(l))).collect()
    }

    /// Block-cache `(hits, misses)`.
    #[must_use]
    pub fn cache_hit_miss(&self) -> (u64, u64) {
        self.inner.block_cache.as_ref().map_or((0, 0), |c| c.hit_miss())
    }

    /// The database directory.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.inner.path
    }

    /// Highest sequence number visible to readers.
    #[must_use]
    pub fn last_sequence(&self) -> SequenceNumber {
        self.inner.last_published.load(Ordering::Acquire)
    }

    /// Drops the handle *without* the clean-shutdown WAL flush, simulating
    /// a process crash: anything still in application buffers (including
    /// SHIELD's WAL encryption buffer) is lost, exactly the §5.3 trade-off.
    pub fn simulate_process_crash(mut self) {
        self.crash_on_drop = true;
    }

    fn shutdown(&mut self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        // Wake the ticker so it observes the flag now, not a tick later.
        {
            let _g = self.inner.ticker_mu.lock();
            self.inner.ticker_cv.notify_all();
        }
        // Closing the channel stops the workers.
        self.inner.job_tx.lock().take();
        {
            let mut state = self.inner.state.lock();
            self.inner.work_cv.notify_all();
            if let Some(mut w) = state.wal.take() {
                if !self.crash_on_drop {
                    let _ = w.sync();
                }
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.inner.events.emit(&Event::DbClose { path: self.inner.path.clone() });
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl DbInner {
    /// Creates a new WAL file (encrypted, with the §5.3 buffer, when
    /// SHIELD is enabled).
    fn new_wal(&self, number: u64) -> Result<LogWriter> {
        let path = shield_env::join_path(&self.path, &wal_file_name(number));
        let (file, dek_mac) = match &self.opts.encryption {
            Some(cfg) => {
                let (f, _, mac) = cfg.new_writable_with_mac(self.env.as_ref(), &path, FileKind::Wal)?;
                (f, mac)
            }
            None => (self.env.new_writable_file(&path, FileKind::Wal)?, None),
        };
        // Under Hmac, tag WAL records with the file DEK's subkey, or the
        // engine key when the WAL is plaintext.
        let mac_key = (self.opts.integrity == crate::integrity::Integrity::Hmac)
            .then(|| dek_mac.unwrap_or(self.opts.integrity_key));
        LogWriter::with_integrity(file, mac_key)
    }

    /// Starts a traced (and perf-contexted) op if the flight recorder is
    /// on. Disabled cost: one atomic load.
    fn traced_op(&self, name: &'static str) -> TracedOp {
        let op = self.tracer.start_op(name);
        // Enable a PerfContext for the op so a slow-op capture carries
        // the breakdown — unless the caller already holds one (e.g.
        // `with_perf_context`), whose accumulation we must not reset.
        let perf = if op.is_some() && !perf::enabled() {
            Some(PerfGuard::enable())
        } else {
            None
        };
        TracedOp { _op: op, _perf: perf }
    }

    /// Refreshes ticker mirrors (env faults, block-cache totals, gauges)
    /// from their live sources.
    fn refresh_stat_mirrors(&self) {
        if let Some(faults) = self.env.fault_stats() {
            self.stats
                .env_faults_injected
                .store(faults.injected_total(), Ordering::Relaxed);
        }
        if let Some(cache) = &self.block_cache {
            let c = cache.stats();
            let s = &self.stats;
            s.block_cache_hits.store(c.hits(), Ordering::Relaxed);
            s.block_cache_misses.store(c.misses(), Ordering::Relaxed);
            s.block_cache_data_hits.store(c.data_hits, Ordering::Relaxed);
            s.block_cache_data_misses.store(c.data_misses, Ordering::Relaxed);
            s.block_cache_index_hits.store(c.index_hits, Ordering::Relaxed);
            s.block_cache_index_misses.store(c.index_misses, Ordering::Relaxed);
            s.block_cache_filter_hits.store(c.filter_hits, Ordering::Relaxed);
            s.block_cache_filter_misses.store(c.filter_misses, Ordering::Relaxed);
            s.block_cache_singleflight_waits.store(c.singleflight_waits, Ordering::Relaxed);
            s.block_cache_oversized_bypass.store(c.oversized_bypass, Ordering::Relaxed);
            s.block_cache_pinned_bytes.store(c.pinned_bytes, Ordering::Relaxed);
            s.readahead_issued.store(c.readahead_issued, Ordering::Relaxed);
            s.readahead_useful.store(c.readahead_useful, Ordering::Relaxed);
            s.batched_reads.store(c.batched_reads, Ordering::Relaxed);
            s.batch_read_requests.store(c.batch_read_requests, Ordering::Relaxed);
        }
        self.stats
            .env_inflight_reads
            .store(shield_env::inflight_reads_peak(), Ordering::Relaxed);
    }

    /// Watchdog + windowed-stats ticker loop. The tick is the finer of
    /// the stats period and half the watchdog deadline, so a pinned op
    /// is flagged within ~1.5x its deadline.
    fn ticker_loop(&self) {
        let stats_period = self.opts.stats_dump_period;
        let deadline = self.opts.watchdog_deadline.filter(|_| self.opts.trace_ops);
        let min_tick = std::time::Duration::from_millis(1);
        let tick = match (stats_period, deadline) {
            (Some(p), Some(d)) => p.min(d / 2).max(min_tick),
            (Some(p), None) => p.max(min_tick),
            (None, Some(d)) => (d / 2).max(min_tick),
            (None, None) => return,
        };
        let mut next_stats = stats_period.map(|p| std::time::Instant::now() + p);
        loop {
            {
                let mut g = self.ticker_mu.lock();
                if self.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                self.ticker_cv.wait_for(&mut g, tick);
            }
            if self.shutting_down.load(Ordering::Acquire) {
                return;
            }
            if let Some(d) = deadline {
                self.check_watchdog(d);
            }
            if let (Some(p), Some(at)) = (stats_period, next_stats.as_mut()) {
                if std::time::Instant::now() >= *at {
                    *at = std::time::Instant::now() + p;
                    self.roll_stats_window();
                }
            }
        }
    }

    /// Flags traced ops pinned past `deadline` — once each, with their
    /// live span stack.
    fn check_watchdog(&self, deadline: std::time::Duration) {
        let deadline_nanos = deadline.as_nanos() as u64;
        for op in self.tracer.active_ops() {
            if op.elapsed_nanos() >= deadline_nanos && op.flag_watchdog() {
                self.events.emit(&Event::Watchdog {
                    op: op.op(),
                    trace_id: op.trace_id(),
                    elapsed_micros: op.elapsed_nanos() / 1_000,
                    deadline_micros: deadline.as_micros() as u64,
                    stack: op.live_stack().join(" > "),
                });
            }
        }
    }

    /// Rolls one windowed-stats interval: refresh mirrors, diff the
    /// cumulative counters, derive interval rates, log, and store.
    fn roll_stats_window(&self) {
        self.refresh_stat_mirrors();
        let snap = self.stats.snapshot();
        let sample = WindowSample {
            at: std::time::Instant::now(),
            unix_micros: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
            counters: snap.counters(),
        };
        let Some(mut w) = self.window.lock().diff(sample) else { return };
        let secs = (w.duration_micros as f64 / 1e6).max(1e-9);
        let writes_per_sec = w.delta("writes").unwrap_or(0) as f64 / secs;
        let reads = w.delta("gets").unwrap_or(0) + w.delta("multi_gets").unwrap_or(0);
        let reads_per_sec = reads as f64 / secs;
        let hits = w.delta("block_cache_hits").unwrap_or(0);
        let lookups = hits + w.delta("block_cache_misses").unwrap_or(0);
        let cache_hit_ratio = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        let stall_fraction = (w.delta("stall_micros").unwrap_or(0) as f64
            / w.duration_micros.max(1) as f64)
            .min(1.0);
        w.rates.push(("writes_per_sec", writes_per_sec));
        w.rates.push(("reads_per_sec", reads_per_sec));
        w.rates.push(("cache_hit_ratio", cache_hit_ratio));
        w.rates.push(("stall_fraction", stall_fraction));
        self.events.emit(&Event::StatsWindow {
            seq: w.seq,
            duration_micros: w.duration_micros,
            writes_per_sec,
            reads_per_sec,
            cache_hit_ratio,
            stall_fraction,
        });
        self.window.lock().store(w);
    }

    /// Group-commit body, run by the leader.
    fn commit_group(&self, group: &[Pending]) -> Result<()> {
        let mut span = trace::span("group_commit");
        span.attr("batches", group.len() as u64);
        let mut combined = if group.len() == 1 {
            group[0].batch.clone()
        } else {
            let mut c = WriteBatch::new();
            for p in group {
                c.append(&p.batch);
            }
            c
        };
        let count = u64::from(combined.count());
        if count == 0 {
            return Ok(());
        }
        let sync = self.opts.wal_sync_writes || group.iter().any(|p| p.sync);

        let (mem, mut wal, base) = {
            let mut state = self.state.lock();
            self.make_room_for_write(&mut state)?;
            let base = state.versions.last_sequence() + 1;
            state.versions.set_last_sequence(base + count - 1);
            (state.mem.clone(), state.wal.take(), base)
        };
        combined.set_sequence(base);

        let mut wal_result: Result<()> = Ok(());
        if !self.opts.disable_wal {
            if let Some(w) = wal.as_mut() {
                wal_result = w
                    .add_record(combined.data())
                    .and_then(|()| w.flush())
                    .and_then(|()| if sync { w.sync() } else { Ok(()) });
                if wal_result.is_ok() {
                    self.stats
                        .wal_bytes
                        .fetch_add(combined.data().len() as u64, Ordering::Relaxed);
                    if sync {
                        self.stats.wal_syncs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if wal_result.is_ok() {
            let t = perf::timer();
            let insert_result = combined.insert_into(&mem);
            perf::add_elapsed(PerfMetric::MemtableInsert, t);
            insert_result?;
            self.last_published.store(base + count - 1, Ordering::Release);
            self.stats.writes.fetch_add(count, Ordering::Relaxed);
            self.stats.write_groups.fetch_add(1, Ordering::Relaxed);
        }
        // Return the WAL even on failure; the writer stays usable for
        // later rotation.
        self.state.lock().wal = wal;
        wal_result
    }

    /// Ensures the active memtable has room, rotating and stalling as
    /// needed. Called by the commit leader with the state lock held.
    fn make_room_for_write(&self, state: &mut parking_lot::MutexGuard<'_, State>) -> Result<()> {
        let mut slowed_down = false;
        loop {
            if let Some(e) = &state.bg_error {
                return Err(e.clone());
            }
            if self.shutting_down.load(Ordering::Acquire) {
                return Err(Error::Shutdown);
            }
            let l0 = state.versions.current().level_files(0);
            // FIFO keeps its entire dataset in L0 by design; L0 file-count
            // backpressure does not apply (as in RocksDB).
            let l0_backpressure =
                self.opts.compaction.style != crate::compaction::CompactionStyle::Fifo;
            if l0_backpressure
                && !slowed_down
                && l0 >= self.opts.l0_slowdown_trigger
                && l0 < self.opts.l0_stop_trigger
            {
                // Gentle backpressure: sleep once outside the lock.
                slowed_down = true;
                self.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
                self.events
                    .emit(&Event::WriteStall { reason: "l0_slowdown", l0_files: l0 as u64 });
                let t0 = std::time::Instant::now();
                parking_lot::MutexGuard::unlocked(state, || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
                self.stats
                    .stall_micros
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                continue;
            }
            if state.mem.approximate_memory_usage() < self.opts.write_buffer_size {
                return Ok(());
            }
            if state.imm.len() >= self.opts.max_immutable_memtables
                || (l0_backpressure
                    && l0 >= self.opts.l0_stop_trigger
                    && pick_compaction(&state.versions.current(), &self.opts.compaction)
                        .is_some())
            {
                // Hard stall until background work catches up. An L0 pile-up
                // that no compaction can reduce (e.g. compaction disabled by
                // configuration) must not stall forever.
                self.stats.write_stalls.fetch_add(1, Ordering::Relaxed);
                self.events.emit(&Event::WriteStall { reason: "stop", l0_files: l0 as u64 });
                let t0 = std::time::Instant::now();
                self.maybe_schedule(state);
                self.work_cv.wait(state);
                self.stats
                    .stall_micros
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                continue;
            }
            self.switch_memtable(state)?;
            self.maybe_schedule(state);
        }
    }

    /// Moves the active memtable to the immutable list and starts a fresh
    /// memtable + WAL.
    fn switch_memtable(&self, state: &mut parking_lot::MutexGuard<'_, State>) -> Result<()> {
        let new_number = state.versions.new_file_number();
        let new_wal = self.new_wal(new_number)?;
        if let Some(mut old) = state.wal.take() {
            // Drain any buffered (possibly still-unencrypted) bytes; the
            // old WAL must be complete before its memtable is flushable.
            old.sync()?;
        }
        let old_mem = std::mem::replace(
            &mut state.mem,
            Arc::new(MemTable::new(new_number)),
        );
        // Re-tag the new memtable with the WAL that backs it.
        state.imm.push(old_mem);
        state.wal = Some(new_wal);
        state.wal_number = new_number;
        Ok(())
    }

    /// Schedules flush/compaction work if warranted. State lock held.
    fn maybe_schedule(&self, state: &mut State) {
        if self.shutting_down.load(Ordering::Acquire) || state.bg_error.is_some() {
            return;
        }
        let tx = self.job_tx.lock();
        let Some(tx) = tx.as_ref() else { return };
        if !state.flush_scheduled && !state.imm.is_empty() {
            state.flush_scheduled = true;
            let _ = tx.send(Job::Flush);
        }
        if !state.compaction_scheduled {
            if let Some(task) =
                pick_compaction(&state.versions.current(), &self.opts.compaction)
            {
                if !self.task_conflicts(state, &task) {
                    state.compaction_scheduled = true;
                    let _ = tx.send(Job::Compaction);
                }
            }
        }
    }

    fn task_conflicts(&self, state: &State, task: &CompactionTask) -> bool {
        let files: Vec<u64> = match task {
            CompactionTask::Merge { inputs, overlaps, .. } => inputs
                .iter()
                .chain(overlaps.iter())
                .map(|f| f.number)
                .collect(),
            CompactionTask::FifoTrim { files } => files.iter().map(|f| f.number).collect(),
        };
        files.iter().any(|n| state.busy_files.contains(n))
    }

    /// Builds an L0 table from a memtable. Runs without the state lock.
    fn write_level0_table(&self, mem: &MemTable, number: u64) -> Result<FileMeta> {
        let path = shield_env::join_path(&self.path, &sst_file_name(number));
        let (file, dek_id, dek_mac) = match &self.opts.encryption {
            Some(cfg) => {
                let (f, id, mac) = cfg.new_writable_with_mac(self.env.as_ref(), &path, FileKind::Sst)?;
                (f, Some(id), mac)
            }
            None => (self.env.new_writable_file(&path, FileKind::Sst)?, None, None),
        };
        let opts = TableBuilderOptions {
            block_size: self.opts.block_size,
            restart_interval: self.opts.restart_interval,
            bloom_bits_per_key: self.opts.bloom_bits_per_key,
            dek_id,
            mac_key: (self.opts.integrity == crate::integrity::Integrity::Hmac)
                .then(|| dek_mac.unwrap_or(self.opts.integrity_key)),
        };
        let mut builder = TableBuilder::new(file, opts);
        let mut it = mem.iter();
        it.seek_to_first();
        while it.valid() {
            builder.add(it.key(), it.value())?;
            InternalIterator::next(&mut it);
        }
        let (props, size) = builder.finish()?;
        self.stats.flush_bytes.fetch_add(size, Ordering::Relaxed);
        self.stats.sst_files_created.fetch_add(1, Ordering::Relaxed);
        Ok(FileMeta {
            number,
            file_size: size,
            smallest: make_internal_key(&props.smallest_user_key, MAX_SEQUENCE, ValueType::Value),
            largest: make_internal_key(&props.largest_user_key, 0, ValueType::Deletion),
            dek_id: props.dek_id,
        })
    }

    /// Runs `f`, retrying soft (transient) failures with capped
    /// exponential backoff up to `max_background_retries` times. Hard and
    /// unrecoverable errors are returned immediately. `job` labels the
    /// retry/error events in the LOG.
    fn with_bg_retries<T>(&self, job: &'static str, mut f: impl FnMut() -> Result<T>) -> Result<T> {
        let mut attempt: u32 = 0;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.retryable() && attempt < self.opts.max_background_retries => {
                    self.stats.bg_retries.fetch_add(1, Ordering::Relaxed);
                    self.events.emit(&Event::BackgroundRetry {
                        job,
                        attempt: u64::from(attempt + 1),
                        message: e.to_string(),
                    });
                    let backoff = self
                        .opts
                        .background_retry_backoff
                        .saturating_mul(1u32 << attempt.min(16))
                        .min(self.opts.background_retry_max_backoff);
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Parks `e` as the sticky background error and reports it.
    fn set_bg_error(&self, state: &mut State, job: &'static str, e: Error) {
        self.events.emit(&Event::BackgroundError {
            job,
            severity: match e.severity() {
                Severity::Soft => "soft",
                Severity::Hard => "hard",
                Severity::Unrecoverable => "unrecoverable",
            },
            message: e.to_string(),
        });
        state.bg_error = Some(e);
    }

    fn background_flush(&self) {
        loop {
            let (mem, number, immutables) = {
                let mut state = self.state.lock();
                let Some(mem) = state.imm.first().cloned() else {
                    state.flush_scheduled = false;
                    self.work_cv.notify_all();
                    return;
                };
                let number = state.versions.new_file_number();
                state.pending_outputs.insert(number);
                (mem, number, state.imm.len() as u64)
            };
            let _trace = self.traced_op("flush");
            self.events.emit(&Event::FlushBegin { immutables });
            let flush_start = std::time::Instant::now();
            let result = if mem.is_empty() {
                Ok(None)
            } else {
                // A fresh writable open truncates any partial output from
                // the failed attempt, so retrying with the same file
                // number is safe.
                self.with_bg_retries("flush", || self.write_level0_table(&mem, number))
                    .map(Some)
            };
            self.op_hists.flush.record_elapsed(flush_start);
            let mut state = self.state.lock();
            state.pending_outputs.remove(&number);
            match result {
                Ok(meta) => {
                    // The WAL needed going forward is the one behind the
                    // next-oldest memtable (or the active one).
                    let min_wal = state
                        .imm
                        .get(1)
                        .map_or(state.wal_number, |m| m.wal_number());
                    let mut edit =
                        VersionEdit { log_number: Some(min_wal), ..VersionEdit::default() };
                    let (out_number, out_bytes) =
                        meta.as_ref().map_or((0, 0), |m| (m.number, m.file_size));
                    if let Some(meta) = meta {
                        edit.new_files.push((0, meta));
                    }
                    match state.versions.log_and_apply(edit) {
                        Ok(_) => {
                            state.imm.remove(0);
                            self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                            self.events.emit(&Event::FlushEnd {
                                file_number: out_number,
                                bytes: out_bytes,
                                micros: flush_start.elapsed().as_micros() as u64,
                            });
                            self.delete_obsolete_files(&mut state);
                            self.maybe_schedule(&mut state);
                            self.work_cv.notify_all();
                        }
                        Err(e) => {
                            self.set_bg_error(&mut state, "flush", e);
                            state.flush_scheduled = false;
                            self.work_cv.notify_all();
                            return;
                        }
                    }
                }
                Err(e) => {
                    self.set_bg_error(&mut state, "flush", e);
                    state.flush_scheduled = false;
                    self.work_cv.notify_all();
                    return;
                }
            }
        }
    }

    fn background_compaction(self: &Arc<Self>) {
        // Pick under the lock; run without it.
        let (task, version, smallest_snapshot) = {
            let mut state = self.state.lock();
            let version = state.versions.current();
            let Some(task) = pick_compaction(&version, &self.opts.compaction) else {
                state.compaction_scheduled = false;
                self.work_cv.notify_all();
                return;
            };
            if self.task_conflicts(&state, &task) {
                state.compaction_scheduled = false;
                self.work_cv.notify_all();
                return;
            }
            match &task {
                CompactionTask::Merge { inputs, overlaps, .. } => {
                    for f in inputs.iter().chain(overlaps.iter()) {
                        state.busy_files.insert(f.number);
                    }
                }
                CompactionTask::FifoTrim { files } => {
                    for f in files {
                        state.busy_files.insert(f.number);
                    }
                }
            }
            let smallest_snapshot = state
                .snapshots
                .values()
                .min()
                .copied()
                .unwrap_or_else(|| self.last_published.load(Ordering::Acquire));
            (task, version, smallest_snapshot)
        };

        let (task_level, task_inputs, task_input_bytes) = match &task {
            CompactionTask::Merge { input_level, inputs, overlaps, .. } => (
                *input_level as u64,
                (inputs.len() + overlaps.len()) as u64,
                inputs.iter().chain(overlaps.iter()).map(|f| f.file_size).sum(),
            ),
            CompactionTask::FifoTrim { files } => (
                0,
                files.len() as u64,
                files.iter().map(|f| f.file_size).sum(),
            ),
        };
        let _trace = self.traced_op("compaction");
        self.events.emit(&Event::CompactionBegin {
            level: task_level,
            inputs: task_inputs,
            input_bytes: task_input_bytes,
        });

        let table_options = TableBuilderOptions {
            block_size: self.opts.block_size,
            restart_interval: self.opts.restart_interval,
            bloom_bits_per_key: self.opts.bloom_bits_per_key,
            dek_id: None,
            // Carries the Hmac policy (engine key); output-creation sites
            // swap in the per-file DEK subkey when encryption is on.
            mac_key: (self.opts.integrity == crate::integrity::Integrity::Hmac)
                .then_some(self.opts.integrity_key),
        };
        // Every output number any attempt allocates lands here, so the
        // install/error paths below can clear `pending_outputs` exactly —
        // including numbers abandoned by failed retry attempts, which
        // previously leaked and kept their garbage files undeletable.
        let allocated: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let plan = match &self.opts.compaction_executor {
            // Offloaded executors own their whole task; only the
            // in-process path splits work.
            Some(_) => vec![SubcompactionRange::full()],
            None => plan_subcompactions(
                &self.table_cache,
                &task,
                self.opts.compaction.max_subcompactions,
            ),
        };
        let exec_start = std::time::Instant::now();
        // Soft failures (transient storage/network faults) are retried
        // (per subrange in the parallel path); each retry allocates fresh
        // output numbers, and the env truncates on reopen, so a
        // half-written attempt is harmless.
        let result = if plan.len() > 1 {
            self.run_subcompactions(
                &task,
                &version,
                smallest_snapshot,
                &table_options,
                task_level,
                task_input_bytes,
                plan,
                &allocated,
            )
        } else {
            let mut alloc = || self.alloc_compaction_output(&allocated);
            self.with_bg_retries("compaction", || match &self.opts.compaction_executor {
                Some(executor) => {
                    // Offloaded: the remote worker resolves DEKs itself from
                    // the DEK-IDs embedded in the file metadata (§5.4).
                    let request = crate::compaction::CompactionRequest {
                        db_path: &self.path,
                        task: &task,
                        version: &version,
                        smallest_snapshot,
                        table_options: table_options.clone(),
                        target_file_size: self.opts.compaction.target_file_size,
                    };
                    executor.execute(&request, &mut alloc)
                }
                None => {
                    let mut ctx = CompactionContext {
                        env: &self.env,
                        db_path: &self.path,
                        encryption: self.opts.encryption.as_ref(),
                        table_cache: &self.table_cache,
                        version: &version,
                        smallest_snapshot,
                        table_options: table_options.clone(),
                        target_file_size: self.opts.compaction.target_file_size,
                        readahead_blocks: self.opts.readahead_blocks,
                        next_file_number: &mut alloc,
                    };
                    run_compaction(&mut ctx, &task)
                }
            })
        };
        self.stats
            .compaction_micros
            .fetch_add(exec_start.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.op_hists.compaction.record_elapsed(exec_start);

        let mut state = self.state.lock();
        match &task {
            CompactionTask::Merge { inputs, overlaps, .. } => {
                for f in inputs.iter().chain(overlaps.iter()) {
                    state.busy_files.remove(&f.number);
                }
            }
            CompactionTask::FifoTrim { files } => {
                for f in files {
                    state.busy_files.remove(&f.number);
                }
            }
        }
        match result {
            Ok(outcome) => {
                // Release every allocated output number — survivors are
                // about to be pinned by the manifest, and numbers
                // abandoned by failed attempts become plain garbage. GC
                // cannot race: it runs under this same state lock.
                for n in allocated.lock().drain(..) {
                    state.pending_outputs.remove(&n);
                }
                match state.versions.log_and_apply(outcome.edit.clone()) {
                    Ok(_) => {
                        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .compaction_bytes_read
                            .fetch_add(outcome.bytes_read, Ordering::Relaxed);
                        self.stats
                            .compaction_bytes_written
                            .fetch_add(outcome.bytes_written, Ordering::Relaxed);
                        self.stats
                            .sst_files_created
                            .fetch_add(outcome.outputs as u64, Ordering::Relaxed);
                        self.events.emit(&Event::CompactionEnd {
                            level: task_level,
                            bytes_read: outcome.bytes_read,
                            bytes_written: outcome.bytes_written,
                            output_files: outcome.outputs as u64,
                            micros: exec_start.elapsed().as_micros() as u64,
                        });
                        self.delete_obsolete_files(&mut state);
                    }
                    Err(e) => self.set_bg_error(&mut state, "compaction", e),
                }
            }
            Err(e) => {
                // Nothing survives a failed compaction: unpin all
                // allocated outputs so GC can delete the half-written
                // files once the error clears.
                for n in allocated.lock().drain(..) {
                    state.pending_outputs.remove(&n);
                }
                self.set_bg_error(&mut state, "compaction", e);
            }
        }
        state.compaction_scheduled = false;
        self.maybe_schedule(&mut state);
        self.work_cv.notify_all();
    }

    /// Allocates an output file number, pinning it in `pending_outputs`
    /// (against GC) and recording it in `allocated` (for exact unpinning
    /// when the compaction installs or fails).
    fn alloc_compaction_output(&self, allocated: &Mutex<Vec<u64>>) -> u64 {
        let n = {
            let mut state = self.state.lock();
            let n = state.versions.new_file_number();
            state.pending_outputs.insert(n);
            n
        };
        allocated.lock().push(n);
        n
    }

    /// Pops and runs one queued subrange merge. Each `Job::Subcompaction`
    /// token redeems exactly one queue entry; the queue may already be
    /// empty if the coordinator stole the work (that is fine — the token
    /// is then a no-op and the worker moves on).
    fn run_queued_subcompaction(&self) {
        let subtask = self.sub_queue.lock().pop_front();
        if let Some(f) = subtask {
            f();
        }
    }

    /// Runs a picked merge task as `plan.len()` parallel subrange merges
    /// and stitches the results into ONE `CompactionOutcome`, so the
    /// caller installs a single atomic `VersionEdit` — readers never see
    /// a partially compacted range, exactly as in the serial path.
    ///
    /// Scheduling: subranges 1.. go onto `sub_queue` with one
    /// `Job::Subcompaction` token each; this thread runs subrange 0
    /// inline, then steals any still-queued subranges (tokens may be
    /// behind other work, or lost entirely at shutdown), then waits for
    /// stragglers a worker already popped. Progress never depends on a
    /// second thread existing.
    #[allow(clippy::too_many_arguments)]
    fn run_subcompactions(
        self: &Arc<Self>,
        task: &CompactionTask,
        version: &Arc<crate::version::version::Version>,
        smallest_snapshot: SequenceNumber,
        table_options: &TableBuilderOptions,
        task_level: u64,
        task_input_bytes: u64,
        plan: Vec<SubcompactionRange>,
        allocated: &Arc<Mutex<Vec<u64>>>,
    ) -> Result<CompactionOutcome> {
        let n = plan.len();
        self.events.emit(&Event::SubcompactionBegin {
            level: task_level,
            subtasks: n as u64,
            input_bytes: task_input_bytes,
        });
        // The task is shared into 'static closures, so it must live on
        // the heap (file lists are `Arc<FileMeta>`s — cloning is cheap).
        let task: Arc<CompactionTask> = Arc::new(match task {
            CompactionTask::Merge { input_level, output_level, inputs, overlaps } => {
                CompactionTask::Merge {
                    input_level: *input_level,
                    output_level: *output_level,
                    inputs: inputs.clone(),
                    overlaps: overlaps.clone(),
                }
            }
            CompactionTask::FifoTrim { files } => {
                CompactionTask::FifoTrim { files: files.clone() }
            }
        });
        let results: Arc<Mutex<Vec<Option<Result<CompactionOutcome>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let remaining = Arc::new((Mutex::new(n), Condvar::new()));

        let mut ranges = plan.into_iter();
        let range0 = ranges.next().unwrap_or_default();
        // Pool workers do not inherit the coordinator's trace context;
        // capture it here and attach inside each queued closure so
        // subcompaction spans land under the compaction's trace.
        let tctx = trace::context();
        {
            let mut queue = self.sub_queue.lock();
            for (offset, range) in ranges.enumerate() {
                let index = offset + 1;
                let this = self.clone();
                let task = task.clone();
                let version = version.clone();
                let topts = table_options.clone();
                let results = results.clone();
                let remaining = remaining.clone();
                let allocated = allocated.clone();
                let tctx = tctx.clone();
                queue.push_back(Box::new(move || {
                    let _trace = tctx.as_ref().map(trace::SpanContext::attach);
                    this.run_one_subrange(
                        index,
                        &task,
                        &version,
                        smallest_snapshot,
                        &topts,
                        &range,
                        &results,
                        &remaining,
                        &allocated,
                    );
                }));
            }
        }
        {
            let tx = self.job_tx.lock();
            if let Some(tx) = tx.as_ref() {
                for _ in 1..n {
                    let _ = tx.send(Job::Subcompaction);
                }
            }
        }
        self.run_one_subrange(
            0,
            &task,
            version,
            smallest_snapshot,
            table_options,
            &range0,
            &results,
            &remaining,
            allocated,
        );
        // Steal whatever no worker has claimed yet.
        loop {
            let subtask = self.sub_queue.lock().pop_front();
            match subtask {
                Some(f) => f(),
                None => break,
            }
        }
        // Wait for subranges a worker popped but has not finished.
        {
            let (count, cv) = &*remaining;
            let mut left = count.lock();
            while *left > 0 {
                cv.wait(&mut left);
            }
        }

        // Stitch in subrange order: outputs are key-disjoint and the
        // version set re-sorts each level on apply, so concatenation
        // preserves every invariant of the serial outcome.
        let mut merged =
            CompactionOutcome { bytes_read: task.input_bytes(), ..CompactionOutcome::default() };
        let mut slots = results.lock();
        let mut first_err: Option<Error> = None;
        for slot in slots.iter_mut() {
            match slot.take() {
                Some(Ok(out)) => {
                    merged.bytes_written += out.bytes_written;
                    merged.entries_dropped += out.entries_dropped;
                    merged.outputs += out.outputs;
                    merged.edit.new_files.extend(out.edit.new_files);
                }
                Some(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                None => {
                    if first_err.is_none() {
                        first_err = Some(Error::Io(shield_env::EnvError::Io(
                            "subcompaction result missing".to_string(),
                        )));
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Inputs are deleted exactly once, for the task as a whole.
        append_input_deletions(&task, &mut merged.edit);
        Ok(merged)
    }

    /// Executes one subrange of a parallel compaction and publishes the
    /// result into its slot. Runs on whichever thread claimed it (a pool
    /// worker via `Job::Subcompaction`, or the coordinator itself).
    #[allow(clippy::too_many_arguments)]
    fn run_one_subrange(
        &self,
        index: usize,
        task: &CompactionTask,
        version: &Arc<crate::version::version::Version>,
        smallest_snapshot: SequenceNumber,
        table_options: &TableBuilderOptions,
        range: &SubcompactionRange,
        results: &Mutex<Vec<Option<Result<CompactionOutcome>>>>,
        remaining: &(Mutex<usize>, Condvar),
        allocated: &Mutex<Vec<u64>>,
    ) {
        let start = std::time::Instant::now();
        let mut span = trace::span("subcompaction");
        span.attr("index", index as u64);
        let result = self.with_bg_retries("subcompaction", || {
            let mut alloc = || self.alloc_compaction_output(allocated);
            let mut ctx = CompactionContext {
                env: &self.env,
                db_path: &self.path,
                encryption: self.opts.encryption.as_ref(),
                table_cache: &self.table_cache,
                version,
                smallest_snapshot,
                table_options: table_options.clone(),
                target_file_size: self.opts.compaction.target_file_size,
                readahead_blocks: self.opts.readahead_blocks,
                next_file_number: &mut alloc,
            };
            run_compaction_range(&mut ctx, task, range)
        });
        let micros = start.elapsed().as_micros() as u64;
        self.stats.subcompactions.fetch_add(1, Ordering::Relaxed);
        self.stats.subcompaction_micros.fetch_add(micros, Ordering::Relaxed);
        self.op_hists.subcompaction.record_elapsed(start);
        self.events.emit(&Event::SubcompactionEnd {
            index: index as u64,
            bytes_written: result.as_ref().map_or(0, |o| o.bytes_written),
            micros,
        });
        results.lock()[index] = Some(result);
        let (count, cv) = remaining;
        let mut left = count.lock();
        *left -= 1;
        if *left == 0 {
            cv.notify_all();
        }
    }

    /// Removes files no longer referenced: old WALs, compacted-away SSTs,
    /// superseded manifests. In SHIELD mode each deleted file's DEK is
    /// pruned from the secure cache and revoked at the KDS — this is the
    /// "old DEKs die with their files" half of key rotation (§5.2).
    fn delete_obsolete_files(&self, state: &mut State) {
        // referenced_files() (not current().live_files()): readers clone the
        // current Arc<Version> under this same lock and then read SSTs
        // lock-free, so files of superseded-but-still-pinned versions must
        // survive until the last reader drops its pin.
        let live: HashSet<u64> = state.versions.referenced_files();
        let min_wal = state
            .imm
            .first()
            .map_or(state.wal_number, |m| m.wal_number())
            .min(state.versions.log_number().max(1));
        let Ok(names) = self.env.list_dir(&self.path) else { return };
        for name in names {
            let Some(kind) = parse_file_name(&name) else { continue };
            let (remove, file_kind, evict) = match kind {
                FileType::Wal(n) => (n < min_wal && n < state.wal_number, FileKind::Wal, None),
                FileType::Sst(n) => (
                    !live.contains(&n)
                        && !state.pending_outputs.contains(&n)
                        && !state.busy_files.contains(&n),
                    FileKind::Sst,
                    Some(n),
                ),
                FileType::Manifest(n) => {
                    (n != state.versions.manifest_number(), FileKind::Manifest, None)
                }
                // Temp files may be mid-rename (e.g. the secure cache's
                // atomic persist runs outside the state lock), so runtime
                // GC must leave them alone; stale ones are harmless.
                FileType::Temp | FileType::Current | FileType::DekCache => {
                    (false, FileKind::Other, None)
                }
            };
            if !remove {
                continue;
            }
            let path = shield_env::join_path(&self.path, &name);
            if let Some(cfg) = &self.opts.encryption {
                let _ = cfg.note_file_deleted(self.env.as_ref(), &path, file_kind);
            }
            if self.env.remove_file(&path).is_ok() {
                if let Some(n) = evict {
                    self.table_cache.evict(n);
                    self.stats.sst_files_deleted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Replays WAL segments newer than the manifest's log number into a
    /// recovery memtable, flushing it to L0. Returns the number of WAL
    /// segments replayed.
    fn recover_wals(self: &Arc<Self>) -> Result<u64> {
        let names = self.env.list_dir(&self.path)?;
        let mut wals: Vec<u64> = names
            .iter()
            .filter_map(|n| match parse_file_name(n) {
                Some(FileType::Wal(num)) => Some(num),
                _ => None,
            })
            .collect();
        wals.sort_unstable();
        let (min_log, mut max_seq) = {
            let state = self.state.lock();
            (state.versions.log_number(), state.versions.last_sequence())
        };

        let mem = Arc::new(MemTable::new(0));
        let mut replayed = 0u64;
        for number in wals.into_iter().filter(|n| *n >= min_log) {
            replayed += 1;
            let path = shield_env::join_path(&self.path, &wal_file_name(number));
            let (file, dek_mac) = match &self.opts.encryption {
                Some(cfg) => cfg.open_sequential_with_mac(self.env.as_ref(), &path, FileKind::Wal)?,
                None => (self.env.new_sequential_file(&path, FileKind::Wal)?, None),
            };
            // Authenticated segments verify with the DEK subkey (or the
            // engine key for plaintext WALs); legacy segments replay as-is
            // but count as unprotected under Hmac.
            let mut reader =
                LogReader::with_integrity(file, Some(dek_mac.unwrap_or(self.opts.integrity_key)))
                    .with_sinks(number, Some(self.stats.clone()), Some(self.events.clone()));
            while let Some(record) = reader.read_record()? {
                let batch = WriteBatch::from_data(&record)?;
                batch.insert_into(&mem)?;
                max_seq = max_seq.max(batch.sequence() + u64::from(batch.count()) - 1);
            }
            if self.opts.integrity == crate::integrity::Integrity::Hmac && reader.is_legacy() {
                self.stats.integrity_unprotected_files.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut state = self.state.lock();
        state.versions.set_last_sequence(max_seq);
        if !mem.is_empty() {
            let number = state.versions.new_file_number();
            state.pending_outputs.insert(number);
            // Build while holding the lock: open() is single-threaded.
            let meta = self.write_level0_table(&mem, number)?;
            state.pending_outputs.remove(&number);
            let edit = VersionEdit {
                new_files: vec![(0, meta)],
                ..VersionEdit::default()
            };
            state.versions.log_and_apply(edit)?;
        }
        Ok(replayed)
    }
}

/// Result of [`Db::verify_integrity`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityReport {
    /// SST files verified.
    pub files: usize,
    /// Entries read (including tombstones).
    pub entries: u64,
    /// Total bytes of verified files.
    pub bytes: u64,
}

/// A point-in-time read view. Dropping it releases the sequence pin so
/// compaction may reclaim shadowed versions.
pub struct Snapshot {
    inner: Arc<DbInner>,
    id: u64,
    seq: SequenceNumber,
}

impl Snapshot {
    /// The sequence this snapshot reads at; feed it to
    /// [`ReadOptions::snapshot_seq`].
    #[must_use]
    pub fn sequence(&self) -> SequenceNumber {
        self.seq
    }

    /// Read options pinned to this snapshot.
    #[must_use]
    pub fn read_options(&self) -> ReadOptions {
        ReadOptions { snapshot_seq: Some(self.seq), fill_cache: true }
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.inner.state.lock().snapshots.remove(&self.id);
    }
}

/// Iterator over live user keys and values.
pub struct DbIterator {
    merged: MergingIterator,
    seq: SequenceNumber,
    current: Option<(Vec<u8>, Vec<u8>)>,
    /// For the `iter_next` latency histogram.
    db: Arc<DbInner>,
    /// Keeps memtables AND the version alive while the iterator exists:
    /// the version pin (tracked by `VersionSet::referenced_files`) stops
    /// obsolete-file GC from deleting SSTs that lazily-opening level
    /// iterators have not read yet.
    _pins: (Arc<MemTable>, Vec<Arc<MemTable>>, Arc<crate::version::version::Version>),
}

impl DbIterator {
    /// True if positioned on an entry.
    #[must_use]
    pub fn valid(&self) -> bool {
        self.current.is_some()
    }

    /// Current user key.
    #[must_use]
    pub fn key(&self) -> &[u8] {
        &self.current.as_ref().expect("valid").0
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> &[u8] {
        &self.current.as_ref().expect("valid").1
    }

    /// Positions on the first live key.
    pub fn seek_to_first(&mut self) {
        self.merged.seek_to_first();
        self.advance_to_visible(None);
    }

    /// Positions on the first live key >= `user_key`.
    pub fn seek(&mut self, user_key: &[u8]) {
        self.merged.seek(&make_lookup_key(user_key, self.seq));
        self.advance_to_visible(None);
    }

    /// Advances to the next live key.
    pub fn next(&mut self) {
        let op_start = std::time::Instant::now();
        let skip = self.current.take().map(|(k, _)| k);
        self.advance_to_visible(skip);
        self.db.op_hists.iter_next.record_elapsed(op_start);
    }

    /// First error any underlying source hit. An iterator that went
    /// invalid with an error here has *stopped early*, not finished.
    pub fn status(&self) -> Result<()> {
        self.merged.status()
    }

    /// Skips invisible/shadowed/deleted entries. `skip_key` is a user key
    /// whose remaining versions must be bypassed.
    fn advance_to_visible(&mut self, mut skip_key: Option<Vec<u8>>) {
        self.current = None;
        while self.merged.valid() {
            let ikey = self.merged.key();
            let user_key = extract_user_key(ikey);
            let (entry_seq, vtype) = extract_seq_type(ikey);
            if entry_seq > self.seq {
                self.merged.next();
                continue;
            }
            if skip_key.as_deref() == Some(user_key) {
                self.merged.next();
                continue;
            }
            match vtype {
                Some(ValueType::Deletion) => {
                    skip_key = Some(user_key.to_vec());
                    self.merged.next();
                }
                Some(ValueType::Value) => {
                    self.current =
                        Some((user_key.to_vec(), self.merged.value().to_vec()));
                    return;
                }
                None => {
                    // Corrupt tag: skip defensively.
                    self.merged.next();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shield_env::MemEnv;

    fn open_mem() -> (MemEnv, Db) {
        let env = MemEnv::new();
        let opts = Options::new(Arc::new(env.clone()));
        let db = Db::open(opts, "db").unwrap();
        (env, db)
    }

    fn w() -> WriteOptions {
        WriteOptions::default()
    }

    fn r() -> ReadOptions {
        ReadOptions::new()
    }

    #[test]
    fn log_file_records_lifecycle_events() {
        let env = MemEnv::new();
        let mut opts = Options::new(Arc::new(env.clone()));
        opts.info_log = Some(LogConfig { level: Some(shield_core::LogLevel::Info), json: false });
        let db = Db::open(opts, "db").unwrap();
        db.put(&w(), b"k", b"v").unwrap();
        db.flush().unwrap();
        drop(db);
        let raw = shield_env::read_file_to_vec(&env, "db/LOG", FileKind::Other).unwrap();
        let log = String::from_utf8(raw).unwrap();
        for needle in ["db_open", "flush_begin", "flush_end", "db_close"] {
            assert!(log.contains(needle), "LOG missing {needle}:\n{log}");
        }
        let begins = log.matches("flush_begin").count();
        let ends = log.matches("flush_end").count();
        assert_eq!(begins, ends, "unpaired flush events:\n{log}");
    }

    #[test]
    fn listeners_and_metrics_report() {
        struct Capture(Mutex<Vec<&'static str>>);
        impl shield_core::EventListener for Capture {
            fn on_event(&self, e: &Event) {
                self.0.lock().push(e.name());
            }
        }
        let capture = Arc::new(Capture(Mutex::new(Vec::new())));
        let env = MemEnv::new();
        let mut opts = Options::new(Arc::new(env)).with_event_listener(capture.clone());
        opts.info_log = Some(LogConfig::default()); // no LOG file
        let db = Db::open(opts, "db").unwrap();
        for i in 0..200u32 {
            db.put(&w(), format!("k{i:03}").as_bytes(), &[1u8; 64]).unwrap();
        }
        db.flush().unwrap();
        {
            let names = capture.0.lock();
            assert!(names.contains(&"db_open"));
            assert!(names.contains(&"flush_begin"));
            assert!(names.contains(&"flush_end"));
        }
        let report = db.metrics_report();
        assert!(report.levels[0].files >= 1);
        let put = report
            .latencies
            .iter()
            .find(|(op, _)| *op == "put")
            .map(|(_, s)| s)
            .unwrap();
        assert_eq!(put.count, 200);
        assert!(put.p99_us >= put.p50_us);
        let flush = report
            .latencies
            .iter()
            .find(|(op, _)| *op == "flush")
            .map(|(_, s)| s)
            .unwrap();
        assert!(flush.count >= 1);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"shield_metrics_v1\""));
        assert!(json.contains("\"tickers\":{\"writes\":200"));
        assert!(report.write_amplification > 0.0);
    }

    #[test]
    fn put_get_delete() {
        let (_env, db) = open_mem();
        db.put(&w(), b"key", b"value").unwrap();
        assert_eq!(db.get(&r(), b"key").unwrap(), Some(b"value".to_vec()));
        db.delete(&w(), b"key").unwrap();
        assert_eq!(db.get(&r(), b"key").unwrap(), None);
        assert_eq!(db.get(&r(), b"never").unwrap(), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let (_env, db) = open_mem();
        db.put(&w(), b"k", b"v1").unwrap();
        db.put(&w(), b"k", b"v2").unwrap();
        assert_eq!(db.get(&r(), b"k").unwrap(), Some(b"v2".to_vec()));
    }

    #[test]
    fn batch_is_atomic() {
        let (_env, db) = open_mem();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put(b"b", b"2");
        batch.delete(b"a");
        db.write(&w(), batch).unwrap();
        assert_eq!(db.get(&r(), b"a").unwrap(), None);
        assert_eq!(db.get(&r(), b"b").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn survives_flush() {
        let (_env, db) = open_mem();
        for i in 0..100u32 {
            db.put(&w(), format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        assert!(db.level_summary()[0].0 >= 1, "flush should create an L0 file");
        for i in 0..100u32 {
            assert_eq!(
                db.get(&r(), format!("k{i:03}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key k{i:03}"
            );
        }
    }

    #[test]
    fn reads_merge_memtable_over_sst() {
        let (_env, db) = open_mem();
        db.put(&w(), b"k", b"old").unwrap();
        db.flush().unwrap();
        db.put(&w(), b"k", b"new").unwrap();
        assert_eq!(db.get(&r(), b"k").unwrap(), Some(b"new".to_vec()));
        // Deletion in memtable shadows SST value.
        db.delete(&w(), b"k").unwrap();
        assert_eq!(db.get(&r(), b"k").unwrap(), None);
    }

    #[test]
    fn recovery_from_wal() {
        let env = MemEnv::new();
        {
            let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
            db.put(&w(), b"persisted", b"yes").unwrap();
            // Clean drop: WAL flushed.
        }
        let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
        assert_eq!(db.get(&r(), b"persisted").unwrap(), Some(b"yes".to_vec()));
    }

    #[test]
    fn recovery_after_flush_and_more_writes() {
        let env = MemEnv::new();
        {
            let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
            for i in 0..50u32 {
                db.put(&w(), format!("a{i:03}").as_bytes(), b"1").unwrap();
            }
            db.flush().unwrap();
            for i in 0..50u32 {
                db.put(&w(), format!("b{i:03}").as_bytes(), b"2").unwrap();
            }
        }
        let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
        assert_eq!(db.get(&r(), b"a001").unwrap(), Some(b"1".to_vec()));
        assert_eq!(db.get(&r(), b"b049").unwrap(), Some(b"2".to_vec()));
    }

    #[test]
    fn compaction_reduces_l0() {
        let env = MemEnv::new();
        let mut opts = Options::new(Arc::new(env));
        opts.write_buffer_size = 4 << 10; // tiny memtable
        opts.compaction.l0_compaction_trigger = 2;
        opts.compaction.target_file_size = 64 << 10;
        let db = Db::open(opts, "db").unwrap();
        for i in 0..2000u32 {
            db.put(&w(), format!("key{i:06}").as_bytes(), &[b'x'; 64]).unwrap();
        }
        db.compact_all().unwrap();
        let summary = db.level_summary();
        assert!(summary[0].0 <= 2, "L0 should drain, got {summary:?}");
        assert!(summary[1].0 >= 1, "L1 should be populated, got {summary:?}");
        // Everything still readable.
        for i in (0..2000u32).step_by(97) {
            assert!(db.get(&r(), format!("key{i:06}").as_bytes()).unwrap().is_some());
        }
        assert!(db.statistics().snapshot().compactions >= 1);
    }

    #[test]
    fn iterator_basic() {
        let (_env, db) = open_mem();
        for k in ["d", "a", "c", "b"] {
            db.put(&w(), k.as_bytes(), k.as_bytes()).unwrap();
        }
        db.delete(&w(), b"c").unwrap();
        let mut it = db.iter(&r()).unwrap();
        it.seek_to_first();
        let mut keys = Vec::new();
        while it.valid() {
            keys.push(it.key().to_vec());
            it.next();
        }
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn iterator_across_memtable_and_sst() {
        let (_env, db) = open_mem();
        db.put(&w(), b"a", b"sst").unwrap();
        db.put(&w(), b"b", b"sst").unwrap();
        db.flush().unwrap();
        db.put(&w(), b"b", b"mem").unwrap(); // overwrites
        db.put(&w(), b"c", b"mem").unwrap();
        let mut it = db.iter(&r()).unwrap();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), b"sst".to_vec()),
                (b"b".to_vec(), b"mem".to_vec()),
                (b"c".to_vec(), b"mem".to_vec()),
            ]
        );
    }

    #[test]
    fn scan_range() {
        let (_env, db) = open_mem();
        for i in 0..20u32 {
            db.put(&w(), format!("k{i:02}").as_bytes(), b"v").unwrap();
        }
        let got = db.scan(&r(), b"k05", 5).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(got[0].0, b"k05");
        assert_eq!(got[4].0, b"k09");
    }

    #[test]
    fn snapshot_isolation() {
        let (_env, db) = open_mem();
        db.put(&w(), b"k", b"v1").unwrap();
        let snap = db.snapshot();
        db.put(&w(), b"k", b"v2").unwrap();
        db.delete(&w(), b"other").unwrap();
        assert_eq!(db.get(&snap.read_options(), b"k").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(db.get(&r(), b"k").unwrap(), Some(b"v2".to_vec()));
        // Snapshot survives flush.
        db.flush().unwrap();
        assert_eq!(db.get(&snap.read_options(), b"k").unwrap(), Some(b"v1".to_vec()));
    }

    #[test]
    fn concurrent_writers_group_commit() {
        let env = MemEnv::new();
        let db = Arc::new(Db::open(Options::new(Arc::new(env)), "db").unwrap());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let db = db.clone();
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        db.put(&w(), format!("t{t}-{i:04}").as_bytes(), b"v").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = db.statistics().snapshot();
        assert_eq!(stats.writes, 1600);
        // Spot check.
        for t in 0..8 {
            assert!(db.get(&r(), format!("t{t}-0199").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn process_crash_loses_only_unflushed_tail() {
        let env = MemEnv::new();
        {
            let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
            db.put(&w(), b"acked", b"1").unwrap();
            db.simulate_process_crash();
        }
        // Plaintext unbuffered WAL flushes per commit, so the write
        // survives a process crash.
        let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
        assert_eq!(db.get(&r(), b"acked").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn system_crash_respects_sync() {
        let env = MemEnv::new();
        {
            let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
            db.put(&WriteOptions { sync: true }, b"synced", b"1").unwrap();
            db.put(&w(), b"unsynced", b"2").unwrap();
            db.simulate_process_crash();
        }
        env.crash_system();
        let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
        assert_eq!(db.get(&r(), b"synced").unwrap(), Some(b"1".to_vec()));
        // Unsynced write may or may not survive; here the MemEnv dropped it.
        assert_eq!(db.get(&r(), b"unsynced").unwrap(), None);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (_env, db) = open_mem();
        db.write(&w(), WriteBatch::new()).unwrap();
        assert_eq!(db.statistics().snapshot().writes, 0);
    }

    #[test]
    fn reopen_empty_db() {
        let env = MemEnv::new();
        {
            let _ = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
        }
        let db = Db::open(Options::new(Arc::new(env)), "db").unwrap();
        assert_eq!(db.get(&r(), b"x").unwrap(), None);
    }

    #[test]
    fn verify_integrity_clean_and_corrupt() {
        let env = MemEnv::new();
        let db = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
        for i in 0..500u32 {
            db.put(&w(), format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        let report = db.verify_integrity().unwrap();
        assert!(report.files >= 1);
        assert_eq!(report.entries, 500);
        assert!(report.bytes > 0);
        // Corrupt a data block in the SST and verify again.
        let name = env
            .list_dir("db")
            .unwrap()
            .into_iter()
            .find(|n| n.ends_with(".sst"))
            .unwrap();
        let mut raw = env.raw_content(&format!("db/{name}")).unwrap();
        raw[20] ^= 0xff;
        {
            use shield_env::FileKind;
            let mut f = env.new_writable_file(&format!("db/{name}"), FileKind::Sst).unwrap();
            f.append(&raw).unwrap();
            f.sync().unwrap();
        }
        // Evict the cached reader and cached blocks by reopening.
        drop(db);
        let mut opts = Options::new(Arc::new(env));
        opts.block_cache_bytes = 0;
        let db = Db::open(opts, "db").unwrap();
        assert!(matches!(db.verify_integrity(), Err(Error::Corruption(_))));
    }

    #[test]
    fn error_if_exists() {
        let env = MemEnv::new();
        let _ = Db::open(Options::new(Arc::new(env.clone())), "db").unwrap();
        let mut opts = Options::new(Arc::new(env));
        opts.error_if_exists = true;
        assert!(matches!(Db::open(opts, "db"), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn create_if_missing_false() {
        let env = MemEnv::new();
        let mut opts = Options::new(Arc::new(env));
        opts.create_if_missing = false;
        assert!(Db::open(opts, "nope").is_err());
    }
}
