//! Engine-level counters used by the evaluation harness (throughput
//! breakdowns, Table 3 I/O attribution, DEK accounting).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! tickers {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Monotonic engine counters.
        #[derive(Default)]
        pub struct Statistics {
            $($(#[$doc])* pub $name: AtomicU64,)*
        }

        /// A point-in-time copy of [`Statistics`].
        #[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)*
        }

        impl Statistics {
            /// Creates a zeroed, shareable counter set.
            #[must_use]
            pub fn new() -> Arc<Self> {
                Arc::new(Self::default())
            }

            /// Copies all counters.
            #[must_use]
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)*
                }
            }
        }

        impl StatsSnapshot {
            /// Difference `self - earlier` per counter (saturating).
            #[must_use]
            pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.saturating_sub(earlier.$name),)*
                }
            }
        }
    };
}

tickers! {
    /// Write operations applied (entries, not batches).
    writes,
    /// Batches committed through the group-commit leader.
    write_groups,
    /// Bytes appended to the WAL (plaintext size).
    wal_bytes,
    /// WAL sync/flush calls.
    wal_syncs,
    /// Point lookups served.
    gets,
    /// Point lookups that found a value.
    gets_found,
    /// Memtable flushes completed.
    flushes,
    /// Bytes written by flushes.
    flush_bytes,
    /// Compactions completed.
    compactions,
    /// Microseconds spent executing compactions.
    compaction_micros,
    /// Bytes read by compaction inputs.
    compaction_bytes_read,
    /// Bytes written by compaction outputs.
    compaction_bytes_written,
    /// SST files created (flush + compaction).
    sst_files_created,
    /// SST files deleted (obsolete after compaction).
    sst_files_deleted,
    /// Block-cache hits.
    block_cache_hits,
    /// Block-cache misses.
    block_cache_misses,
    /// Bloom-filter negative hits (reads avoided).
    bloom_useful,
    /// Write stalls triggered by L0/immutable backpressure.
    write_stalls,
    /// Microseconds writers spent stalled.
    stall_micros,
    /// Soft background-job failures retried with backoff.
    bg_retries,
    /// Recoverable background errors cleared by [`crate::Db::resume`].
    resumes,
    /// Storage faults injected by a fault-injection env, mirrored from
    /// [`shield_env::Env::fault_stats`] (a gauge, refreshed on snapshot).
    env_faults_injected,
    /// DEK-resolver retry attempts, mirrored from the resolver when
    /// running in SHIELD mode (a gauge).
    resolver_retries,
    /// KDS replica failovers, mirrored from the resolver (a gauge).
    resolver_failovers,
    /// DEK resolutions served from cache while the KDS was unreachable,
    /// mirrored from the resolver (a gauge).
    resolver_degraded_hits,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Statistics::new();
        s.writes.fetch_add(10, Ordering::Relaxed);
        let a = s.snapshot();
        s.writes.fetch_add(5, Ordering::Relaxed);
        s.gets.fetch_add(2, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.writes, 5);
        assert_eq!(d.gets, 2);
        assert_eq!(d.flushes, 0);
    }
}
