//! Engine-level counters used by the evaluation harness (throughput
//! breakdowns, Table 3 I/O attribution, DEK accounting).
//!
//! Tickers come in two kinds and the `tickers!` macro keeps them in
//! distinct sections, because they have different delta semantics:
//!
//! - **counters** are monotonic; the difference of two snapshots
//!   ([`StatsSnapshot::delta_since`]) is the activity in the interval.
//!   Whether a counter is bumped by the engine directly or mirrored
//!   from another subsystem (cache, fault env, DEK resolver) when
//!   [`crate::Db::statistics`] refreshes does not change that
//!   semantics: mirrors of monotonic sources still delta correctly.
//! - **gauges** are point-in-time values that can go *down* (pinned
//!   bytes, in-flight high-water marks); subtracting them is
//!   meaningless, so `delta_since` carries the later snapshot's value
//!   through unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! tickers {
    (
        counters { $($(#[$cdoc:meta])* $cname:ident),* $(,)? }
        gauges { $($(#[$gdoc:meta])* $gname:ident),* $(,)? }
    ) => {
        /// Engine tickers: monotonic counters plus mirrored gauges.
        #[derive(Default)]
        pub struct Statistics {
            $($(#[$cdoc])* pub $cname: AtomicU64,)*
            $($(#[$gdoc])* pub $gname: AtomicU64,)*
        }

        /// A point-in-time copy of [`Statistics`].
        #[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$cdoc])* pub $cname: u64,)*
            $($(#[$gdoc])* pub $gname: u64,)*
        }

        impl Statistics {
            /// Creates a zeroed, shareable ticker set.
            #[must_use]
            pub fn new() -> Arc<Self> {
                Arc::new(Self::default())
            }

            /// Copies all tickers.
            #[must_use]
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($cname: self.$cname.load(Ordering::Relaxed),)*
                    $($gname: self.$gname.load(Ordering::Relaxed),)*
                }
            }
        }

        impl StatsSnapshot {
            /// Interval view: monotonic counters become `self - earlier`
            /// (saturating); gauges keep `self`'s point-in-time value.
            #[must_use]
            pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($cname: self.$cname.saturating_sub(earlier.$cname),)*
                    $($gname: self.$gname,)*
                }
            }

            /// All monotonic counters as `(name, value)` pairs, in
            /// declaration order (the stable JSON key order).
            #[must_use]
            pub fn counters(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($cname), self.$cname),)*]
            }

            /// All gauges as `(name, value)` pairs, in declaration order.
            #[must_use]
            pub fn gauges(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($gname), self.$gname),)*]
            }
        }
    };
}

tickers! {
    counters {
        /// Write operations applied (entries, not batches).
        writes,
        /// Batches committed through the group-commit leader.
        write_groups,
        /// Bytes appended to the WAL (plaintext size).
        wal_bytes,
        /// WAL sync/flush calls.
        wal_syncs,
        /// Point lookups served.
        gets,
        /// Point lookups that found a value.
        gets_found,
        /// Memtable flushes completed.
        flushes,
        /// Bytes written by flushes.
        flush_bytes,
        /// Compactions completed.
        compactions,
        /// Microseconds spent executing compactions.
        compaction_micros,
        /// Subrange merges run by parallel compactions.
        subcompactions,
        /// Microseconds spent in subrange merges (sums across parallel
        /// workers, so it can exceed `compaction_micros` wall time).
        subcompaction_micros,
        /// Bytes read by compaction inputs.
        compaction_bytes_read,
        /// Bytes written by compaction outputs.
        compaction_bytes_written,
        /// SST files created (flush + compaction).
        sst_files_created,
        /// SST files deleted (obsolete after compaction).
        sst_files_deleted,
        /// Bloom-filter negative hits (reads avoided).
        bloom_useful,
        /// Write stalls triggered by L0/immutable backpressure.
        write_stalls,
        /// Microseconds writers spent stalled.
        stall_micros,
        /// Soft background-job failures retried with backoff.
        bg_retries,
        /// Recoverable background errors cleared by [`crate::Db::resume`].
        resumes,
        /// HMAC tag verifications performed on reads (blocks + records).
        integrity_checks,
        /// HMAC tag mismatches — tampering detected.
        integrity_failures,
        /// Multi-key lookups served through [`crate::Db::multi_get`].
        multi_gets,
        /// `read_at_many` batch submissions issued by the block fetcher
        /// (each covers ≥ 1 block read), mirrored from the cache.
        batched_reads,
        /// Individual block reads carried by those batch submissions,
        /// mirrored from the cache.
        batch_read_requests,
        /// Block-cache lifetime hits, mirrored from the cache when
        /// [`crate::Db::statistics`] refreshes. Monotonic despite being
        /// a mirror: snapshot deltas are the interval's hits.
        block_cache_hits,
        /// Block-cache lifetime misses, mirrored from the cache.
        block_cache_misses,
        /// Data-block cache hits, mirrored from the cache.
        block_cache_data_hits,
        /// Data-block cache misses, mirrored from the cache.
        block_cache_data_misses,
        /// Index-block cache hits, mirrored from the cache.
        block_cache_index_hits,
        /// Index-block cache misses, mirrored from the cache.
        block_cache_index_misses,
        /// Filter-block cache hits, mirrored from the cache.
        block_cache_filter_hits,
        /// Filter-block cache misses, mirrored from the cache.
        block_cache_filter_misses,
        /// Misses that waited on another thread's in-flight read instead
        /// of issuing their own (single-flight coalescing).
        block_cache_singleflight_waits,
        /// Inserts larger than a cache shard, served uncached.
        block_cache_oversized_bypass,
        /// Prefetch requests issued by iterator/compaction readahead.
        readahead_issued,
        /// Prefetched blocks that were subsequently hit.
        readahead_useful,
        /// Storage faults injected by a fault-injection env, mirrored from
        /// [`shield_env::Env::fault_stats`].
        env_faults_injected,
        /// DEK-resolver retry attempts, mirrored from the resolver when
        /// running in SHIELD mode.
        resolver_retries,
        /// KDS replica failovers, mirrored from the resolver.
        resolver_failovers,
        /// DEK resolutions served from cache while the KDS was unreachable,
        /// mirrored from the resolver.
        resolver_degraded_hits,
    }
    gauges {
        /// Bytes currently pinned in the cache by in-use handles
        /// (open tables' index/filter blocks, live iterators).
        block_cache_pinned_bytes,
        /// Legacy (pre-HMAC format) files opened while
        /// [`crate::integrity::Integrity::Hmac`] is on: readable but
        /// unverified until compaction rewrites them.
        integrity_unprotected_files,
        /// High-water mark of concurrently in-flight batched reads,
        /// mirrored from [`shield_env::inflight_reads_peak`].
        env_inflight_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Statistics::new();
        s.writes.fetch_add(10, Ordering::Relaxed);
        let a = s.snapshot();
        s.writes.fetch_add(5, Ordering::Relaxed);
        s.gets.fetch_add(2, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.writes, 5);
        assert_eq!(d.gets, 2);
        assert_eq!(d.flushes, 0);
    }

    #[test]
    fn delta_keeps_gauges_at_later_value() {
        let s = Statistics::new();
        // A gauge mirror set high before the first snapshot, lower after
        // (pinned bytes shrink as handles drop): an all-counter delta
        // would saturate to 0 and hide the live value; the gauge section
        // must carry the later reading.
        s.block_cache_pinned_bytes.store(4096, Ordering::Relaxed);
        s.env_inflight_reads.store(100, Ordering::Relaxed);
        let a = s.snapshot();
        s.block_cache_pinned_bytes.store(1024, Ordering::Relaxed);
        s.env_inflight_reads.store(3, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.block_cache_pinned_bytes, 1024, "gauge must not be differenced");
        assert_eq!(d.env_inflight_reads, 3, "gauge must not saturate to 0");
        // Counters still difference.
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn monotonic_mirrors_are_counters() {
        // These mirrors only ever grow, so interval deltas are meaningful
        // — they must live in the ticker section, not with the gauges.
        let s = Statistics::new();
        s.block_cache_hits.store(10, Ordering::Relaxed);
        s.readahead_issued.store(5, Ordering::Relaxed);
        s.env_faults_injected.store(2, Ordering::Relaxed);
        s.resolver_retries.store(1, Ordering::Relaxed);
        let a = s.snapshot();
        s.block_cache_hits.store(25, Ordering::Relaxed);
        s.readahead_issued.store(9, Ordering::Relaxed);
        s.env_faults_injected.store(4, Ordering::Relaxed);
        s.resolver_retries.store(3, Ordering::Relaxed);
        let d = s.snapshot().delta_since(&a);
        assert_eq!(d.block_cache_hits, 15);
        assert_eq!(d.readahead_issued, 4);
        assert_eq!(d.env_faults_injected, 2);
        assert_eq!(d.resolver_retries, 2);
        let counters = s.snapshot().counters();
        for name in
            ["block_cache_hits", "readahead_useful", "env_faults_injected", "resolver_failovers"]
        {
            assert!(counters.iter().any(|&(n, _)| n == name), "{name} must be a ticker");
        }
        let gauges = s.snapshot().gauges();
        for name in ["block_cache_pinned_bytes", "env_inflight_reads"] {
            assert!(gauges.iter().any(|&(n, _)| n == name), "{name} must stay a gauge");
        }
    }

    #[test]
    fn name_value_iteration_matches_fields() {
        let s = Statistics::new();
        s.writes.fetch_add(4, Ordering::Relaxed);
        s.block_cache_pinned_bytes.store(2, Ordering::Relaxed);
        let snap = s.snapshot();
        let counters = snap.counters();
        let gauges = snap.gauges();
        assert!(counters.iter().any(|&(n, v)| n == "writes" && v == 4));
        assert!(gauges.iter().any(|&(n, v)| n == "block_cache_pinned_bytes" && v == 2));
        // No ticker appears in both sections.
        for (n, _) in &counters {
            assert!(!gauges.iter().any(|(g, _)| g == n), "{n} in both sections");
        }
        assert_eq!(counters.len() + gauges.len(), 45);
    }
}
